//! The auditor state machine: continuous, client-side ledger verification.
//!
//! Any PReVer participant — data owner, producer, or external regulator —
//! can run an [`Auditor`]. It stores only the latest digest it has
//! accepted (O(1) state) and refuses to advance unless the data manager
//! supplies a valid consistency proof, which makes history rewrites
//! detectable the moment the manager publishes its next digest.

use crate::journal::{Journal, JournalEntry, LedgerDigest};
use crate::{LedgerError, Result};
use prever_crypto::merkle::{ConsistencyProof, InclusionProof};

/// A client-side ledger auditor.
#[derive(Clone, Debug, Default)]
pub struct Auditor {
    trusted: Option<LedgerDigest>,
    digests_accepted: u64,
    tampers_detected: u64,
}

impl Auditor {
    /// A fresh auditor that has seen nothing yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// The digest the auditor currently trusts.
    pub fn trusted_digest(&self) -> Option<&LedgerDigest> {
        self.trusted.as_ref()
    }

    /// Number of digests accepted so far.
    pub fn digests_accepted(&self) -> u64 {
        self.digests_accepted
    }

    /// Number of verification failures observed.
    pub fn tampers_detected(&self) -> u64 {
        self.tampers_detected
    }

    /// Observes a new digest with its consistency proof from the trusted
    /// digest. The first digest is trusted on first use (TOFU), as with
    /// ledger databases in practice.
    pub fn observe(&mut self, new: LedgerDigest, proof: &ConsistencyProof) -> Result<()> {
        match &self.trusted {
            None => {
                self.trusted = Some(new);
                self.digests_accepted += 1;
                Ok(())
            }
            Some(old) => match Journal::verify_consistency(old, &new, proof) {
                Ok(()) => {
                    self.trusted = Some(new);
                    self.digests_accepted += 1;
                    Ok(())
                }
                Err(e) => {
                    self.tampers_detected += 1;
                    Err(e)
                }
            },
        }
    }

    /// Checks that an entry is included under the trusted digest.
    pub fn check_entry(&mut self, entry: &JournalEntry, proof: &InclusionProof) -> Result<()> {
        let digest = self
            .trusted
            .as_ref()
            .ok_or(LedgerError::OutOfRange("auditor has no trusted digest"))?;
        match Journal::verify_inclusion(entry, proof, digest) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.tampers_detected += 1;
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn journal_of(n: usize) -> Journal {
        let mut j = Journal::new();
        for i in 0..n {
            j.append(i as u64, Bytes::from(format!("u{i}")));
        }
        j
    }

    #[test]
    fn follows_honest_ledger() {
        let mut j = Journal::new();
        let mut auditor = Auditor::new();
        for round in 0..5u64 {
            for i in 0..3 {
                j.append(round * 3 + i, Bytes::from(format!("u{round}-{i}")));
            }
            let new = j.digest();
            let old_size = auditor.trusted_digest().map(|d| d.size).unwrap_or(0);
            let proof = j.prove_consistency(old_size, new.size).unwrap();
            auditor.observe(new, &proof).unwrap();
        }
        assert_eq!(auditor.digests_accepted(), 5);
        assert_eq!(auditor.tampers_detected(), 0);
        assert_eq!(auditor.trusted_digest().unwrap().size, 15);
    }

    #[test]
    fn detects_rewrite_between_digests() {
        let honest = journal_of(6);
        let mut auditor = Auditor::new();
        let d = honest.digest();
        let p = honest.prove_consistency(0, 6).unwrap();
        auditor.observe(d, &p).unwrap();

        // The manager rewrites entry 1 and re-journals.
        let mut evil = Journal::new();
        for i in 0..8 {
            let payload = if i == 1 { "EVIL".to_string() } else { format!("u{i}") };
            evil.append(i as u64, Bytes::from(payload));
        }
        let new = evil.digest();
        let proof = evil.prove_consistency(6, 8).unwrap();
        assert!(auditor.observe(new, &proof).is_err());
        assert_eq!(auditor.tampers_detected(), 1);
        // Trusted digest unchanged.
        assert_eq!(auditor.trusted_digest().unwrap().size, 6);
    }

    #[test]
    fn check_entry_against_trusted_digest() {
        let j = journal_of(10);
        let mut auditor = Auditor::new();
        let d = j.digest();
        auditor.observe(d.clone(), &j.prove_consistency(0, 10).unwrap()).unwrap();
        let proof = j.prove_inclusion(7, d.size).unwrap();
        auditor.check_entry(j.entry(7).unwrap(), &proof).unwrap();
        // Forged entry fails and is counted.
        let mut forged = j.entry(7).unwrap().clone();
        forged.payload = Bytes::from_static(b"FORGED");
        assert!(auditor.check_entry(&forged, &proof).is_err());
        assert_eq!(auditor.tampers_detected(), 1);
    }

    #[test]
    fn check_entry_requires_a_digest() {
        let j = journal_of(3);
        let mut auditor = Auditor::new();
        let proof = j.prove_inclusion(0, 3).unwrap();
        assert!(auditor.check_entry(j.entry(0).unwrap(), &proof).is_err());
    }
}
