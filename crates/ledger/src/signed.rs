//! Signed digests: non-repudiable ledger checkpoints.
//!
//! A Merkle digest proves *what* the ledger contains; a **signed**
//! digest additionally proves *who* vouched for it. Two uses in PReVer:
//!
//! * single-database (RC1/RC4): the outsourced manager signs every
//!   digest it publishes, so a digest that later fails a consistency
//!   proof is non-repudiable evidence of tampering — the accountability
//!   a covert adversary fears;
//! * federated (RC2/RC4): mutually distrustful managers **co-sign** a
//!   shared digest. A [`CoSignedDigest`] carrying `2f + 1` signatures is
//!   a checkpoint certificate in the PBFT sense: at least `f + 1`
//!   honest managers attested the same state.

use crate::journal::LedgerDigest;
use crate::{LedgerError, Result};
use prever_crypto::schnorr::{self, KeyPair, SchnorrGroup, SchnorrSignature};
use prever_crypto::BigUint;
use rand::Rng;

/// Canonical byte encoding of a digest for signing.
fn digest_message(digest: &LedgerDigest) -> Vec<u8> {
    let mut m = Vec::with_capacity(8 + 64 + 20);
    m.extend_from_slice(b"prever-ledger-digest");
    m.extend_from_slice(&digest.size.to_be_bytes());
    m.extend_from_slice(digest.root.as_bytes());
    m.extend_from_slice(digest.head_hash.as_bytes());
    m
}

/// A digest signed by one data manager.
#[derive(Clone, Debug)]
pub struct SignedDigest {
    /// The digest.
    pub digest: LedgerDigest,
    /// The signer's public key.
    pub signer: BigUint,
    /// Schnorr signature over the canonical digest encoding.
    pub signature: SchnorrSignature,
}

impl SignedDigest {
    /// Signs `digest` with the manager's key.
    pub fn sign<R: Rng + ?Sized>(
        group: &SchnorrGroup,
        key: &KeyPair,
        digest: LedgerDigest,
        rng: &mut R,
    ) -> Self {
        let signature = schnorr::sign(group, key, &digest_message(&digest), rng);
        SignedDigest { digest, signer: key.public.clone(), signature }
    }

    /// Verifies signer and signature.
    pub fn verify(&self, group: &SchnorrGroup) -> Result<()> {
        schnorr::verify(group, &self.signer, &digest_message(&self.digest), &self.signature)?;
        Ok(())
    }
}

/// A digest co-signed by multiple federated managers.
#[derive(Clone, Debug, Default)]
pub struct CoSignedDigest {
    /// The digest, once the first signature is attached.
    pub digest: Option<LedgerDigest>,
    /// (signer, signature) pairs; signers must be distinct.
    pub signatures: Vec<(BigUint, SchnorrSignature)>,
}

impl CoSignedDigest {
    /// Starts an empty certificate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a manager's signature. All signatures must cover the same
    /// digest; duplicate signers are rejected.
    pub fn add<R: Rng + ?Sized>(
        &mut self,
        group: &SchnorrGroup,
        key: &KeyPair,
        digest: &LedgerDigest,
        rng: &mut R,
    ) -> Result<()> {
        match &self.digest {
            None => self.digest = Some(digest.clone()),
            Some(existing) if existing == digest => {}
            Some(_) => return Err(LedgerError::TamperDetected("co-signing divergent digests")),
        }
        if self.signatures.iter().any(|(signer, _)| signer == &key.public) {
            return Err(LedgerError::OutOfRange("duplicate co-signer"));
        }
        let sig = schnorr::sign(group, key, &digest_message(digest), rng);
        self.signatures.push((key.public.clone(), sig));
        Ok(())
    }

    /// Verifies the certificate: every signature valid, every signer a
    /// member of `managers`, and at least `threshold` distinct signers.
    pub fn verify(
        &self,
        group: &SchnorrGroup,
        managers: &[BigUint],
        threshold: usize,
    ) -> Result<()> {
        let digest = self
            .digest
            .as_ref()
            .ok_or(LedgerError::OutOfRange("empty certificate"))?;
        if self.signatures.len() < threshold {
            return Err(LedgerError::TamperDetected("below co-signing threshold"));
        }
        let msg = digest_message(digest);
        for (signer, _) in &self.signatures {
            if !managers.contains(signer) {
                return Err(LedgerError::TamperDetected("co-signer not a known manager"));
            }
        }
        // One random-linear-combination check covers the whole
        // certificate; a forged co-signature surfaces as
        // `BatchItemInvalid` naming the offending index.
        let items: Vec<(&BigUint, &[u8], &SchnorrSignature)> = self
            .signatures
            .iter()
            .map(|(signer, sig)| (signer, msg.as_slice(), sig))
            .collect();
        schnorr::batch_verify(group, &items)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Journal;
    use bytes::Bytes;
    use rand::{rngs::StdRng, SeedableRng};

    fn setup(n: usize) -> (SchnorrGroup, Vec<KeyPair>, LedgerDigest, StdRng) {
        let mut rng = StdRng::seed_from_u64(31);
        let group = SchnorrGroup::test_group_256();
        let keys = (0..n).map(|_| KeyPair::generate(&group, &mut rng)).collect();
        let mut journal = Journal::new();
        for i in 0..5u64 {
            journal.append(i, Bytes::from(format!("u{i}")));
        }
        (group, keys, journal.digest(), rng)
    }

    #[test]
    fn signed_digest_roundtrip() {
        let (group, keys, digest, mut rng) = setup(1);
        let signed = SignedDigest::sign(&group, &keys[0], digest, &mut rng);
        signed.verify(&group).unwrap();
    }

    #[test]
    fn tampered_digest_fails_signature() {
        let (group, keys, digest, mut rng) = setup(1);
        let mut signed = SignedDigest::sign(&group, &keys[0], digest, &mut rng);
        signed.digest.size += 1;
        assert!(signed.verify(&group).is_err());
    }

    #[test]
    fn co_signing_reaches_threshold() {
        let (group, keys, digest, mut rng) = setup(4);
        let managers: Vec<BigUint> = keys.iter().map(|k| k.public.clone()).collect();
        let mut cert = CoSignedDigest::new();
        for k in &keys[..3] {
            cert.add(&group, k, &digest, &mut rng).unwrap();
        }
        // 3 of 4 = 2f + 1 for f = 1.
        cert.verify(&group, &managers, 3).unwrap();
        assert!(cert.verify(&group, &managers, 4).is_err(), "threshold 4 unmet");
    }

    #[test]
    fn divergent_digest_rejected_at_signing() {
        let (group, keys, digest, mut rng) = setup(2);
        let mut other = digest.clone();
        other.size += 1;
        let mut cert = CoSignedDigest::new();
        cert.add(&group, &keys[0], &digest, &mut rng).unwrap();
        assert!(matches!(
            cert.add(&group, &keys[1], &other, &mut rng),
            Err(LedgerError::TamperDetected(_))
        ));
    }

    #[test]
    fn duplicate_and_unknown_signers_rejected() {
        let (group, keys, digest, mut rng) = setup(3);
        let managers: Vec<BigUint> = keys[..2].iter().map(|k| k.public.clone()).collect();
        let mut cert = CoSignedDigest::new();
        cert.add(&group, &keys[0], &digest, &mut rng).unwrap();
        assert!(cert.add(&group, &keys[0], &digest, &mut rng).is_err(), "duplicate");
        // keys[2] is not in the manager set.
        cert.add(&group, &keys[2], &digest, &mut rng).unwrap();
        assert!(matches!(
            cert.verify(&group, &managers, 1),
            Err(LedgerError::TamperDetected(_))
        ));
    }

    #[test]
    fn forged_co_signature_pinpointed() {
        let (group, keys, digest, mut rng) = setup(4);
        let managers: Vec<BigUint> = keys.iter().map(|k| k.public.clone()).collect();
        let mut cert = CoSignedDigest::new();
        for k in &keys {
            cert.add(&group, k, &digest, &mut rng).unwrap();
        }
        cert.verify(&group, &managers, 4).unwrap();
        // Cross-wire two co-signatures: each signer now carries the
        // other's signature, so index 2 is the first invalid pair.
        let sig3 = cert.signatures[3].1.clone();
        cert.signatures[3].1 = std::mem::replace(&mut cert.signatures[2].1, sig3);
        let err = cert.verify(&group, &managers, 4).unwrap_err();
        assert!(err.to_string().contains("index 2"), "got: {err}");
    }

    #[test]
    fn empty_certificate_rejected() {
        let (group, _, _, _) = setup(1);
        let cert = CoSignedDigest::new();
        assert!(cert.verify(&group, &[], 0).is_err());
    }
}
