//! # prever-ledger
//!
//! A centralized ledger database in the style of Amazon QLDB and Alibaba
//! LedgerDB — the single-database infrastructure PReVer's Research
//! Challenge 4 calls for:
//!
//! > "data needs to be stored in an immutable and verifiable manner. …
//! > When there is a single database maintained by a single data manager,
//! > the centralized ledger technology can be used as the infrastructure
//! > of PReVer."
//!
//! Three layers:
//!
//! * [`journal`] — the append-only [`Journal`]: every committed change is
//!   an entry in a hash chain *and* a leaf of a Merkle tree. Digests
//!   published from the journal support inclusion proofs ("this update is
//!   in the ledger") and consistency proofs ("this digest extends the one
//!   I saw yesterday — history was not rewritten").
//! * [`kv`] — [`LedgerKv`]: a verifiable key-value state built over the
//!   journal with per-key revision history, the shape of QLDB's
//!   current-state + history views.
//! * [`auditor`] — [`Auditor`]: the client-side verification state machine
//!   any PReVer participant runs to continuously check ledger integrity
//!   (the "enable any participant to verify" half of RC4).
//! * [`signed`] — [`SignedDigest`] / [`CoSignedDigest`]: non-repudiable
//!   (co-)signed checkpoints, the accountability layer for covert
//!   adversaries and federated checkpoint certificates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auditor;
pub mod journal;
pub mod kv;
pub mod persist;
pub mod signed;

pub use auditor::Auditor;
pub use journal::{Journal, JournalEntry, LedgerDigest};
pub use kv::LedgerKv;
pub use persist::{PersistReport, PersistentJournal};
pub use signed::{CoSignedDigest, SignedDigest};

use prever_crypto::CryptoError;
use prever_storage::StorageError;

/// Errors produced by the ledger layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LedgerError {
    /// A proof or digest failed verification — evidence of tampering.
    TamperDetected(&'static str),
    /// A sequence number or size was out of range.
    OutOfRange(&'static str),
    /// An underlying cryptographic failure.
    Crypto(CryptoError),
    /// A key has no revision at the requested number.
    NoSuchRevision {
        /// The key queried.
        key: String,
        /// The revision requested.
        revision: u64,
    },
    /// The durable storage layer failed (medium error, decode failure).
    Storage(StorageError),
}

impl From<StorageError> for LedgerError {
    fn from(e: StorageError) -> Self {
        match e {
            // CRC failures on durable bytes are integrity violations: the
            // same class of evidence as a broken hash chain.
            StorageError::Corruption(w) => LedgerError::TamperDetected(w),
            other => LedgerError::Storage(other),
        }
    }
}

impl From<CryptoError> for LedgerError {
    fn from(e: CryptoError) -> Self {
        match e {
            CryptoError::VerificationFailed(w) => LedgerError::TamperDetected(w),
            other => LedgerError::Crypto(other),
        }
    }
}

impl std::fmt::Display for LedgerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LedgerError::TamperDetected(what) => write!(f, "tamper detected: {what}"),
            LedgerError::OutOfRange(what) => write!(f, "out of range: {what}"),
            LedgerError::Crypto(e) => write!(f, "crypto error: {e}"),
            LedgerError::NoSuchRevision { key, revision } => {
                write!(f, "no revision {revision} for key {key}")
            }
            LedgerError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for LedgerError {}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, LedgerError>;
