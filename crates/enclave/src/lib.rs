//! # prever-enclave
//!
//! A software-simulated trusted execution environment.
//!
//! Research Challenge 1 lists "secure hardware, i.e., hardware protected
//! computation" (Cipherbase, TrustedDB, EnclaveDB, enclave-native
//! storage engines) as the performant alternative to cryptographic
//! constraint checking, while noting its scalability limits. No SGX-class
//! hardware is available here, so this crate simulates the architectural
//! contract (see DESIGN.md's substitution table):
//!
//! * **sealed state** — enclave memory is represented encrypted-at-rest
//!   (HKDF-derived keystream + HMAC authentication), so host code cannot
//!   read or tamper with it undetected;
//! * **measurement & attestation** — the enclave reports
//!   `HMAC(platform_key, measurement ‖ nonce)`, verifiable by a relying
//!   party holding the platform key (the simulation's stand-in for the
//!   attestation service);
//! * **a transition cost model** — every ecall/ocall pays a fixed
//!   virtual-cycle toll, the dominant real-world cost that experiment E2
//!   charges when comparing enclave-based constraint checking against
//!   Paillier and plaintext paths.
//!
//! The enclave's one workload in PReVer is [`Enclave::check_bound`]:
//! maintain per-subject aggregates in sealed state and verify bound
//! regulations on plaintext *inside* the boundary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use prever_crypto::hmac::{hkdf, hmac_sha256};
use prever_crypto::sha256::{sha256, Digest};
use std::collections::BTreeMap;

/// Virtual cycles charged per enclave transition (ecall or ocall).
/// Order-of-magnitude of published SGX transition costs (~8k cycles).
pub const TRANSITION_CYCLES: u64 = 8_000;

/// Errors from the simulated enclave.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnclaveError {
    /// Sealed blob failed authentication (host tampering).
    SealTampered,
    /// Attestation verification failed.
    AttestationInvalid,
}

impl std::fmt::Display for EnclaveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnclaveError::SealTampered => write!(f, "sealed state failed authentication"),
            EnclaveError::AttestationInvalid => write!(f, "attestation report invalid"),
        }
    }
}

impl std::error::Error for EnclaveError {}

/// A sealed (encrypted + authenticated) state blob as the host sees it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SealedBlob {
    ciphertext: Vec<u8>,
    tag: Digest,
}

/// An attestation report binding a measurement to a relying party's
/// nonce.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttestationReport {
    /// The enclave's code measurement.
    pub measurement: Digest,
    /// The relying party's nonce.
    pub nonce: [u8; 32],
    /// `HMAC(platform_key, measurement ‖ nonce)`.
    pub mac: Digest,
}

impl AttestationReport {
    /// Verifies the report under the platform key.
    pub fn verify(&self, platform_key: &[u8]) -> Result<(), EnclaveError> {
        let mut msg = Vec::with_capacity(64);
        msg.extend_from_slice(self.measurement.as_bytes());
        msg.extend_from_slice(&self.nonce);
        if hmac_sha256(platform_key, &msg) == self.mac {
            Ok(())
        } else {
            Err(EnclaveError::AttestationInvalid)
        }
    }
}

/// The simulated enclave: per-subject bound aggregates in sealed state.
pub struct Enclave {
    measurement: Digest,
    seal_key: Vec<u8>,
    platform_key: Vec<u8>,
    /// In-enclave plaintext state: subject → accumulated total.
    state: BTreeMap<String, i64>,
    /// Virtual cycles consumed by transitions.
    pub cycles: u64,
    /// Number of ecalls serviced.
    pub ecalls: u64,
}

impl Enclave {
    /// "Loads" an enclave: the measurement is the hash of the (simulated)
    /// code identity; keys derive from the platform secret.
    pub fn load(code_identity: &[u8], platform_secret: &[u8]) -> Self {
        let measurement = sha256(code_identity);
        let seal_key = hkdf(platform_secret, measurement.as_bytes(), b"seal", 32);
        let platform_key = hkdf(platform_secret, b"", b"attest", 32);
        Enclave {
            measurement,
            seal_key,
            platform_key,
            state: BTreeMap::new(),
            cycles: 0,
            ecalls: 0,
        }
    }

    /// The enclave's measurement.
    pub fn measurement(&self) -> Digest {
        self.measurement
    }

    fn transition(&mut self) {
        self.cycles += TRANSITION_CYCLES;
        self.ecalls += 1;
    }

    /// Produces an attestation report for `nonce`.
    pub fn attest(&mut self, nonce: [u8; 32]) -> AttestationReport {
        self.transition();
        let mut msg = Vec::with_capacity(64);
        msg.extend_from_slice(self.measurement.as_bytes());
        msg.extend_from_slice(&nonce);
        AttestationReport {
            measurement: self.measurement,
            nonce,
            mac: hmac_sha256(&self.platform_key, &msg),
        }
    }

    /// The platform verification key a relying party would obtain from
    /// the attestation service.
    pub fn platform_verification_key(&self) -> &[u8] {
        &self.platform_key
    }

    /// Ecall: add `amount` for `subject` iff the new total stays
    /// ≤ `bound`. Returns whether the update was admitted. This is the
    /// enclave path of private constraint verification: the host never
    /// sees `amount`, `subject` totals, or anything but the verdict.
    pub fn check_bound(&mut self, subject: &str, amount: i64, bound: i64) -> bool {
        self.transition();
        let total = self.state.get(subject).copied().unwrap_or(0);
        if total + amount <= bound {
            self.state.insert(subject.to_string(), total + amount);
            true
        } else {
            false
        }
    }

    /// Seals the current state for host storage.
    pub fn seal(&mut self) -> SealedBlob {
        self.transition();
        let mut plaintext = Vec::new();
        plaintext.extend_from_slice(&(self.state.len() as u64).to_be_bytes());
        for (k, v) in &self.state {
            plaintext.extend_from_slice(&(k.len() as u64).to_be_bytes());
            plaintext.extend_from_slice(k.as_bytes());
            plaintext.extend_from_slice(&v.to_be_bytes());
        }
        let ciphertext = keystream_xor(&self.seal_key, &plaintext);
        let tag = hmac_sha256(&self.seal_key, &ciphertext);
        SealedBlob { ciphertext, tag }
    }

    /// Unseals host-provided state, rejecting tampered blobs.
    pub fn unseal(&mut self, blob: &SealedBlob) -> Result<(), EnclaveError> {
        self.transition();
        if hmac_sha256(&self.seal_key, &blob.ciphertext) != blob.tag {
            return Err(EnclaveError::SealTampered);
        }
        let plaintext = keystream_xor(&self.seal_key, &blob.ciphertext);
        let mut state = BTreeMap::new();
        let mut cur = &plaintext[..];
        let n = read_u64(&mut cur).ok_or(EnclaveError::SealTampered)?;
        for _ in 0..n {
            let klen = read_u64(&mut cur).ok_or(EnclaveError::SealTampered)? as usize;
            if cur.len() < klen + 8 {
                return Err(EnclaveError::SealTampered);
            }
            let key = String::from_utf8(cur[..klen].to_vec())
                .map_err(|_| EnclaveError::SealTampered)?;
            cur = &cur[klen..];
            let mut vb = [0u8; 8];
            vb.copy_from_slice(&cur[..8]);
            cur = &cur[8..];
            state.insert(key, i64::from_be_bytes(vb));
        }
        self.state = state;
        Ok(())
    }

    /// In-enclave total for a subject (test oracle; a real enclave would
    /// not export this).
    #[doc(hidden)]
    pub fn debug_total(&self, subject: &str) -> i64 {
        self.state.get(subject).copied().unwrap_or(0)
    }
}

fn read_u64(cur: &mut &[u8]) -> Option<u64> {
    if cur.len() < 8 {
        return None;
    }
    let mut b = [0u8; 8];
    b.copy_from_slice(&cur[..8]);
    *cur = &cur[8..];
    Some(u64::from_be_bytes(b))
}

/// HKDF-expanded keystream XOR (stream cipher for the simulation).
fn keystream_xor(key: &[u8], data: &[u8]) -> Vec<u8> {
    let stream = hkdf(key, b"keystream", b"enclave-seal", data.len().max(1));
    data.iter().zip(stream).map(|(d, s)| d ^ s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enclave() -> Enclave {
        Enclave::load(b"prever-bound-checker-v1", b"platform-secret")
    }

    #[test]
    fn bound_checking_inside_enclave() {
        let mut e = enclave();
        assert!(e.check_bound("worker-1", 20, 40));
        assert!(e.check_bound("worker-1", 20, 40));
        assert!(!e.check_bound("worker-1", 1, 40), "41st hour rejected");
        assert!(e.check_bound("worker-2", 40, 40), "per-subject state");
        assert_eq!(e.debug_total("worker-1"), 40);
    }

    #[test]
    fn transition_costs_accrue() {
        let mut e = enclave();
        let before = e.cycles;
        e.check_bound("w", 1, 10);
        e.check_bound("w", 1, 10);
        assert_eq!(e.cycles - before, 2 * TRANSITION_CYCLES);
        assert_eq!(e.ecalls, 2);
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let mut e = enclave();
        e.check_bound("w1", 12, 40);
        e.check_bound("w2", 7, 40);
        let blob = e.seal();
        // A fresh enclave with the same identity restores the state.
        let mut e2 = enclave();
        e2.unseal(&blob).unwrap();
        assert_eq!(e2.debug_total("w1"), 12);
        assert_eq!(e2.debug_total("w2"), 7);
    }

    #[test]
    fn sealed_blob_is_ciphertext() {
        let mut e = enclave();
        e.check_bound("super-secret-subject", 12, 40);
        let blob = e.seal();
        let haystack = blob.ciphertext.clone();
        assert!(
            !contains(&haystack, b"super-secret-subject"),
            "subject id leaked in sealed blob"
        );
    }

    #[test]
    fn tampered_blob_rejected() {
        let mut e = enclave();
        e.check_bound("w", 5, 40);
        let mut blob = e.seal();
        blob.ciphertext[0] ^= 1;
        assert_eq!(e.unseal(&blob).unwrap_err(), EnclaveError::SealTampered);
    }

    #[test]
    fn different_enclave_identity_cannot_unseal() {
        let mut e = enclave();
        e.check_bound("w", 5, 40);
        let blob = e.seal();
        let mut other = Enclave::load(b"different-code", b"platform-secret");
        assert_eq!(other.unseal(&blob).unwrap_err(), EnclaveError::SealTampered);
    }

    #[test]
    fn attestation_roundtrip() {
        let mut e = enclave();
        let nonce = [7u8; 32];
        let report = e.attest(nonce);
        report.verify(e.platform_verification_key()).unwrap();
        // Wrong key fails.
        assert_eq!(
            report.verify(b"not-the-platform-key").unwrap_err(),
            EnclaveError::AttestationInvalid
        );
        // Tampered measurement fails.
        let mut bad = report.clone();
        bad.measurement = sha256(b"evil");
        assert!(bad.verify(e.platform_verification_key()).is_err());
    }

    fn contains(haystack: &[u8], needle: &[u8]) -> bool {
        haystack.windows(needle.len()).any(|w| w == needle)
    }
}
