//! The lock-sharded global metrics registry.
//!
//! Three metric kinds, all safe to hammer from many threads:
//!
//! * [`Counter`] — monotonically increasing `u64` (messages sent,
//!   updates accepted, …);
//! * [`Gauge`] — a settable `i64` level (remaining DP budget, queue
//!   depth, …);
//! * [`Histogram`] — log-bucketed latency distribution with
//!   p50/p95/p99/max quantile queries; the recording target of
//!   [`span!`](crate::span!) guards.
//!
//! Metrics are named with dotted paths (`crate.component.phase`, see
//! DESIGN.md §8) and interned on first use: `counter("pbft.msg.sent")`
//! returns the same [`Counter`] from every call site. Name lookups hash
//! into one of [`SHARDS`] independently locked maps so unrelated hot
//! paths never contend on a single registry lock; increments themselves
//! are lock-free atomics on the returned handle.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Number of independently locked name→metric maps.
const SHARDS: usize = 16;

#[cfg(not(feature = "disabled"))]
static ENABLED: AtomicBool = AtomicBool::new(true);
#[cfg(feature = "disabled")]
static ENABLED: AtomicBool = AtomicBool::new(false);

/// True iff recording is active. With the `disabled` cargo feature this
/// is a constant `false`, letting the compiler strip instrumentation;
/// otherwise it is a relaxed atomic load, togglable at runtime.
#[inline]
pub fn enabled() -> bool {
    #[cfg(feature = "disabled")]
    {
        false
    }
    #[cfg(not(feature = "disabled"))]
    {
        ENABLED.load(Ordering::Relaxed)
    }
}

/// Enables or disables recording at runtime (no-op build: stays off).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable level.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        if enabled() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// Adjusts the level by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        if enabled() {
            self.0.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------
// Log-bucketed histogram.
//
// Values 0..16 get exact unit buckets; beyond that each power-of-two
// octave splits into 8 geometric sub-buckets (3 mantissa bits), so any
// recorded value lands in a bucket whose width is at most 1/8 of its
// lower bound — quantile estimates read the bucket midpoint and carry
// at most ~6.25% relative error. 64-bit range ⇒ 496 buckets.
// ---------------------------------------------------------------------

/// Mantissa bits kept per octave.
const SUB_BITS: u32 = 3;
/// Sub-buckets per octave (`2^SUB_BITS`).
const SUBS: u64 = 1 << SUB_BITS;
/// Values below this are their own bucket.
const EXACT_LIMIT: u64 = 2 * SUBS; // 16
/// Total bucket count for the full u64 range.
pub(crate) const NUM_BUCKETS: usize = (64 - SUB_BITS as usize - 1) * SUBS as usize + EXACT_LIMIT as usize;

/// Maps a value to its bucket index.
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    if v < EXACT_LIMIT {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= 4
    let shift = msb - SUB_BITS;
    let sub = ((v >> shift) & (SUBS - 1)) as usize;
    ((msb - SUB_BITS) as usize - 1) * SUBS as usize + EXACT_LIMIT as usize + sub
}

/// The smallest value mapping to bucket `i`.
pub(crate) fn bucket_lower(i: usize) -> u64 {
    if (i as u64) < EXACT_LIMIT {
        return i as u64;
    }
    let off = i - EXACT_LIMIT as usize;
    let exp = off / SUBS as usize + 1;
    let sub = (off % SUBS as usize) as u64;
    (SUBS + sub) << exp
}

/// The representative (midpoint) value reported for bucket `i`.
pub(crate) fn bucket_mid(i: usize) -> u64 {
    if (i as u64) < EXACT_LIMIT {
        return i as u64;
    }
    let lo = bucket_lower(i);
    let hi = if i + 1 < NUM_BUCKETS { bucket_lower(i + 1) - 1 } else { u64::MAX };
    lo + (hi - lo) / 2
}

/// A concurrent log-bucketed histogram (values are typically
/// nanoseconds, but any `u64` works).
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest observation (0 if empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Smallest observation (0 if empty).
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX { 0 } else { m }
    }

    /// Mean observation (0.0 if empty).
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 { 0.0 } else { self.sum() as f64 / c as f64 }
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) from the bucket
    /// midpoints, clamped to the observed min/max. Returns 0 if empty.
    ///
    /// Uses the continuous-rank estimator (linear interpolation between
    /// the order statistics at `floor(h)` and `ceil(h)` for fractional
    /// rank `h = q·(n−1)`), so nearby quantiles stay distinct even at
    /// small sample counts — a pure ceil-rank lookup reported identical
    /// p95/p99 whenever both ranks landed on the same observation (for
    /// n < 20, p95 and p99 *always* shared the top sample). Values
    /// between order statistics are still bucket-midpoint estimates;
    /// resolution is bounded by the bucket width (±1/16 per octave).
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let h = q.clamp(0.0, 1.0) * (count - 1) as f64;
        let lo_rank = h.floor() as u64 + 1; // 1-based order statistic
        let frac = h - h.floor();
        let lo = self.value_at_rank(lo_rank);
        let v = if frac < 1e-9 || lo_rank >= count {
            lo as f64
        } else {
            let hi = self.value_at_rank(lo_rank + 1);
            lo as f64 + (hi as f64 - lo as f64) * frac
        };
        (v.round() as u64).clamp(self.min(), self.max())
    }

    /// The bucket-midpoint estimate of the `rank`-th smallest
    /// observation (1-based). The extreme ranks are exact: the 1st
    /// order statistic is the tracked min, the nth the tracked max.
    fn value_at_rank(&self, rank: u64) -> u64 {
        if rank <= 1 {
            return self.min();
        }
        if rank >= self.count() {
            return self.max();
        }
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                return bucket_mid(i).clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// Freezes the current state into a [`HistogramSnapshot`].
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let buckets: Vec<(u64, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then(|| (bucket_mid(i), c))
            })
            .collect();
        HistogramSnapshot {
            name: name.to_string(),
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            buckets,
        }
    }
}

/// A point-in-time copy of one histogram.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation.
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Mean observation.
    pub mean: f64,
    /// Median estimate.
    pub p50: u64,
    /// 95th-percentile estimate.
    pub p95: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// Non-empty buckets as `(representative value, count)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Standard deviation estimated from the bucket midpoints.
    pub fn stddev(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let mean = self.mean;
        let var = self
            .buckets
            .iter()
            .map(|&(v, c)| {
                let d = v as f64 - mean;
                d * d * c as f64
            })
            .sum::<f64>()
            / self.count as f64;
        var.sqrt()
    }
}

// ---------------------------------------------------------------------
// The sharded registry.
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum MetricEntry {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics, sharded by name hash.
#[derive(Debug)]
pub struct Registry {
    shards: Vec<RwLock<HashMap<String, MetricEntry>>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

/// FNV-1a, for shard selection (stable, dependency-free).
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, name: &str) -> &RwLock<HashMap<String, MetricEntry>> {
        &self.shards[(fnv1a(name) % SHARDS as u64) as usize]
    }

    fn get_or_insert<T, F, G>(&self, name: &str, extract: F, create: G) -> Arc<T>
    where
        F: Fn(&MetricEntry) -> Option<Arc<T>>,
        G: FnOnce() -> MetricEntry,
    {
        let shard = self.shard(name);
        if let Some(entry) = shard.read().expect("obs shard poisoned").get(name) {
            return extract(entry).unwrap_or_else(|| {
                panic!("metric `{name}` already registered with a different kind")
            });
        }
        let mut map = shard.write().expect("obs shard poisoned");
        let entry = map.entry(name.to_string()).or_insert_with(create);
        extract(entry)
            .unwrap_or_else(|| panic!("metric `{name}` already registered with a different kind"))
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.get_or_insert(
            name,
            |e| match e {
                MetricEntry::Counter(c) => Some(c.clone()),
                _ => None,
            },
            || MetricEntry::Counter(Arc::new(Counter::default())),
        )
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.get_or_insert(
            name,
            |e| match e {
                MetricEntry::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            || MetricEntry::Gauge(Arc::new(Gauge::default())),
        )
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.get_or_insert(
            name,
            |e| match e {
                MetricEntry::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            || MetricEntry::Histogram(Arc::new(Histogram::default())),
        )
    }

    /// A point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let mut s = Snapshot::default();
        for shard in &self.shards {
            for (name, entry) in shard.read().expect("obs shard poisoned").iter() {
                match entry {
                    MetricEntry::Counter(c) => s.counters.push((name.clone(), c.get())),
                    MetricEntry::Gauge(g) => s.gauges.push((name.clone(), g.get())),
                    MetricEntry::Histogram(h) => s.histograms.push(h.snapshot(name)),
                }
            }
        }
        s.counters.sort();
        s.gauges.sort();
        s.histograms.sort_by(|a, b| a.name.cmp(&b.name));
        s
    }

    /// Drops every registered metric (start-of-run hygiene for bench
    /// binaries; handles obtained earlier keep working but detach).
    pub fn reset(&self) {
        for shard in &self.shards {
            shard.write().expect("obs shard poisoned").clear();
        }
    }
}

/// A point-in-time copy of the whole registry.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// `(name, value)` counters, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, name-sorted.
    pub gauges: Vec<(String, i64)>,
    /// Histogram snapshots, name-sorted.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// True iff nothing was recorded (all counts/values zero counts as
    /// recorded — emptiness means no metrics registered at all).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// The histogram named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// The counter named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The gauge named `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry all instrumentation records into.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Global shorthand for [`Registry::counter`].
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// Global shorthand for [`Registry::gauge`].
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().gauge(name)
}

/// Global shorthand for [`Registry::histogram`].
pub fn histogram(name: &str) -> Arc<Histogram> {
    global().histogram(name)
}

/// Global shorthand for [`Registry::snapshot`].
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

/// Records `ns` into the global histogram `name` (the exporter treats
/// histogram values as nanoseconds).
pub fn observe_ns(name: &str, ns: u64) {
    if enabled() {
        histogram(name).record(ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_roundtrip_invariants() {
        // Every value maps to a bucket containing it, bucket bounds are
        // monotone, and the relative width stays under 1/8 beyond the
        // exact range.
        let probes: Vec<u64> = (0..200)
            .chain((1..60).map(|e| (1u64 << e) - 1))
            .chain((1..60).map(|e| 1u64 << e))
            .chain((1..60).map(|e| (1u64 << e) + 1))
            .chain([u64::MAX - 1, u64::MAX])
            .collect();
        for &v in &probes {
            let i = bucket_index(v);
            assert!(i < NUM_BUCKETS, "index {i} out of range for {v}");
            let lo = bucket_lower(i);
            let hi = if i + 1 < NUM_BUCKETS { bucket_lower(i + 1) - 1 } else { u64::MAX };
            assert!(lo <= v && v <= hi, "v={v} not in bucket {i} [{lo}, {hi}]");
            if v >= EXACT_LIMIT {
                let width = hi - lo + 1;
                assert!(
                    width <= lo / SUBS + 1,
                    "bucket {i} too wide: [{lo}, {hi}] for {v}"
                );
            }
        }
        for i in 1..NUM_BUCKETS {
            assert!(bucket_lower(i) > bucket_lower(i - 1), "bounds not monotone at {i}");
        }
    }

    #[test]
    fn exact_buckets_below_sixteen() {
        for v in 0..EXACT_LIMIT {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_mid(v as usize), v);
        }
    }

    #[test]
    fn quantiles_match_sorted_vector_reference() {
        // Deterministic pseudo-random sample; compare histogram
        // quantiles against the exact order statistics.
        let h = Histogram::default();
        let mut x: u64 = 0x243f_6a88_85a3_08d3;
        let mut values = Vec::new();
        for _ in 0..10_000 {
            // xorshift64*
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            let v = (x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 40) + 1; // ~24-bit values
            values.push(v);
            h.record(v);
        }
        values.sort_unstable();
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.sum(), values.iter().sum::<u64>());
        assert_eq!(h.max(), *values.last().unwrap());
        assert_eq!(h.min(), values[0]);
        for q in [0.5, 0.95, 0.99] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1] as f64;
            let est = h.quantile(q) as f64;
            let rel = (est - exact).abs() / exact;
            assert!(rel < 0.0725, "q={q}: est {est} vs exact {exact} (rel {rel:.4})");
        }
    }

    #[test]
    fn small_sample_quantiles_are_distinct() {
        // Pins the n < 20 semantics: with the continuous-rank
        // estimator, p95 and p99 interpolate at different fractional
        // ranks between the same pair of top order statistics, so they
        // differ whenever the top two samples differ — the old
        // ceil-rank lookup returned the identical top sample for both.
        let h = Histogram::default();
        for v in [100u64, 200, 300, 400, 500, 600, 700, 800, 900, 10_000] {
            h.record(v);
        }
        let (p50, p95, p99) = (h.quantile(0.50), h.quantile(0.95), h.quantile(0.99));
        // n = 10: h95 = 8.55, h99 = 8.91 — both between ranks 9 and 10,
        // but at different fractions of the 900..10_000 gap.
        assert!(p95 < p99, "p95 {p95} must be < p99 {p99} at n=10");
        assert!(p50 < p95);
        // Interpolated values stay inside the observed range (bucket
        // midpoints are clamped to min/max).
        assert!(p99 <= h.max() && h.min() <= p50);
        // Exact-rank quantiles hit the order statistic's bucket
        // midpoint: p0/p100 are exactly min/max after clamping.
        assert_eq!(h.quantile(0.0), h.min());
        assert_eq!(h.quantile(1.0), h.max());
        // Degenerate n = 1: every quantile is the single sample.
        let one = Histogram::default();
        one.record(42);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(one.quantile(q), 42);
        }
    }

    #[test]
    fn concurrent_counter_increments_from_8_threads() {
        let reg = Registry::new();
        let c = reg.counter("test.concurrent");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
        assert_eq!(reg.snapshot().counter("test.concurrent"), Some(80_000));
    }

    #[test]
    fn concurrent_histogram_records() {
        let reg = Registry::new();
        let h = reg.histogram("test.hist.concurrent");
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1_000 {
                        h.record(t * 1_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 8_000);
    }

    #[test]
    fn kind_conflict_panics() {
        let reg = Registry::new();
        reg.counter("test.kind");
        let err = std::panic::catch_unwind(|| reg.histogram("test.kind"));
        assert!(err.is_err());
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        let reg = Registry::new();
        reg.counter("z.last").add(3);
        reg.counter("a.first").add(1);
        reg.gauge("m.level").set(-4);
        reg.histogram("h.lat").record(100);
        let s = reg.snapshot();
        assert_eq!(s.counters[0].0, "a.first");
        assert_eq!(s.counters[1].0, "z.last");
        assert_eq!(s.gauge("m.level"), Some(-4));
        let h = s.histogram("h.lat").unwrap();
        assert_eq!(h.count, 1);
        assert!(h.p50 >= 96 && h.p50 <= 104, "p50 {} off", h.p50);
        assert!(s.histogram("nope").is_none());
        assert!(!s.is_empty());
        reg.reset();
        assert!(reg.snapshot().is_empty());
    }
}
