//! Env-gated structured logging.
//!
//! The maximum level is read once from `PREVER_LOG` (`error`, `warn`,
//! `info`, `debug`, `trace`; unset or `off` disables logging entirely)
//! and can be overridden programmatically with [`set_max_level`].
//! Records go to stderr as one `key=value`-prefixed line each:
//!
//! ```text
//! PREVERLOG t=+0.004213s level=INFO target=prever_consensus::pbft msg="view change to 2"
//! ```
//!
//! Use the [`log!`](crate::log!) macro (or check [`log_enabled`] first
//! for expensive formats); when the level is filtered out the cost is
//! one relaxed atomic load and no formatting.

use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Log severity, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or protocol-violating conditions.
    Error = 1,
    /// Suspicious but tolerated conditions.
    Warn = 2,
    /// High-level lifecycle events.
    Info = 3,
    /// Per-operation detail.
    Debug = 4,
    /// Everything.
    Trace = 5,
}

impl Level {
    /// The canonical uppercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }

    /// Parses a `PREVER_LOG` value; `None` means logging off.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" | "1" => Some(Level::Error),
            "warn" | "warning" | "2" => Some(Level::Warn),
            "info" | "3" => Some(Level::Info),
            "debug" | "4" => Some(Level::Debug),
            "trace" | "5" => Some(Level::Trace),
            _ => None,
        }
    }
}

/// 0 = off, 1..=5 = max level, `UNINIT` = not yet read from the env.
const UNINIT: u8 = u8::MAX;
static MAX_LEVEL: AtomicU8 = AtomicU8::new(UNINIT);

static START: OnceLock<Instant> = OnceLock::new();

fn start() -> Instant {
    *START.get_or_init(Instant::now)
}

fn level_from_env() -> u8 {
    std::env::var("PREVER_LOG")
        .ok()
        .and_then(|v| Level::parse(&v))
        .map(|l| l as u8)
        .unwrap_or(0)
}

/// The active maximum level (`None` = logging off).
pub fn max_level() -> Option<Level> {
    let raw = MAX_LEVEL.load(Ordering::Relaxed);
    let raw = if raw == UNINIT {
        let from_env = level_from_env();
        // Racing initializers compute the same value; last store wins.
        MAX_LEVEL.store(from_env, Ordering::Relaxed);
        from_env
    } else {
        raw
    };
    match raw {
        1 => Some(Level::Error),
        2 => Some(Level::Warn),
        3 => Some(Level::Info),
        4 => Some(Level::Debug),
        5 => Some(Level::Trace),
        _ => None,
    }
}

/// Overrides the env-derived maximum level (tests, embedding tools).
pub fn set_max_level(level: Option<Level>) {
    MAX_LEVEL.store(level.map(|l| l as u8).unwrap_or(0), Ordering::Relaxed);
}

/// True iff a record at `level` would be emitted.
#[inline]
pub fn log_enabled(level: Level) -> bool {
    max_level().is_some_and(|max| level <= max)
}

/// Writes one record; callers go through the [`log!`](crate::log!)
/// macro, which performs the level check without formatting.
pub fn write_record(level: Level, target: &str, args: std::fmt::Arguments<'_>) {
    let t = start().elapsed().as_secs_f64();
    let msg = args.to_string();
    // Lock stderr once so concurrent records don't interleave.
    let stderr = std::io::stderr();
    let mut out = stderr.lock();
    let _ = writeln!(
        out,
        "PREVERLOG t=+{t:.6}s level={} target={target} msg=\"{}\"",
        level.as_str(),
        msg.replace('\\', "\\\\").replace('"', "\\\""),
    );
}

/// Logs a formatted record at the given level ident (`Error`, `Warn`,
/// `Info`, `Debug`, `Trace`); the target is the calling module path.
///
/// ```
/// prever_obs::log!(Info, "committed {} commands", 42);
/// ```
#[macro_export]
macro_rules! log {
    ($lvl:ident, $($arg:tt)+) => {
        if $crate::logger::log_enabled($crate::logger::Level::$lvl) {
            $crate::logger::write_record(
                $crate::logger::Level::$lvl,
                module_path!(),
                format_args!($($arg)+),
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_level_and_rejects_junk() {
        assert_eq!(Level::parse("error"), Some(Level::Error));
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse(" info "), Some(Level::Info));
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("trace"), Some(Level::Trace));
        assert_eq!(Level::parse("5"), Some(Level::Trace));
        assert_eq!(Level::parse("off"), None);
        assert_eq!(Level::parse(""), None);
        assert_eq!(Level::parse("verbose"), None);
    }

    #[test]
    fn level_filtering_honors_the_configured_max() {
        // `set_max_level` is process-global; this test owns the whole
        // matrix so ordering within it is deterministic.
        set_max_level(Some(Level::Warn));
        assert!(log_enabled(Level::Error));
        assert!(log_enabled(Level::Warn));
        assert!(!log_enabled(Level::Info));
        assert!(!log_enabled(Level::Debug));
        assert!(!log_enabled(Level::Trace));

        set_max_level(Some(Level::Trace));
        assert!(log_enabled(Level::Trace));

        set_max_level(None);
        assert!(!log_enabled(Level::Error));

        set_max_level(Some(Level::Debug));
        assert!(log_enabled(Level::Debug));
        assert!(!log_enabled(Level::Trace));
        // Emitting through the macro at an enabled level must not panic.
        crate::log!(Debug, "logger self-test value={}", 7);
        set_max_level(None);
    }

    #[test]
    fn severity_ordering_matches_filtering_semantics() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
    }
}
