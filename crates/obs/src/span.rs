//! Lightweight span tracing.
//!
//! A span is an RAII guard over a region of code: entering pushes the
//! span name onto a thread-local stack (so nested spans know their
//! parent), dropping records the elapsed wall-clock nanoseconds into
//! the global histogram of the same name. Usage:
//!
//! ```
//! {
//!     let _span = prever_obs::span!("pbft.prepare");
//!     // ... phase work ...
//! } // elapsed ns recorded into histogram "pbft.prepare" here
//! ```
//!
//! Span names follow the `crate.component.phase` convention (DESIGN.md
//! §8). Parent edges are remembered per child name and queryable via
//! [`parent_of`], which is how the exporter can reconstruct e.g. that
//! `ledger.append` time was spent under `pipeline.incorporate`.

use crate::registry;
use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

thread_local! {
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
    /// Parent adopted from a spawning thread (see [`adopt_parent`]):
    /// used as the parent of this thread's *root* spans only.
    static ADOPTED: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Observed parent edges: child span name → most recent parent name.
static PARENTS: OnceLock<Mutex<HashMap<String, String>>> = OnceLock::new();

fn parents() -> &'static Mutex<HashMap<String, String>> {
    PARENTS.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The most recently observed parent of span `name`, if it was ever
/// entered nested inside another span.
pub fn parent_of(name: &str) -> Option<String> {
    parents().lock().expect("span parents poisoned").get(name).cloned()
}

/// The name of the innermost active span on this thread.
pub fn current_span() -> Option<String> {
    STACK.with(|s| s.borrow().last().cloned())
}

/// Carries parent attribution across a thread spawn: spans entered on
/// this thread while its own stack is empty use `parent` as their
/// parent, instead of losing the causal edge to the spawning thread's
/// (inaccessible) stack. Pass the spawner's [`current_span`] into the
/// worker closure:
///
/// ```
/// let parent = prever_obs::current_span();
/// std::thread::spawn(move || {
///     prever_obs::adopt_parent(parent);
///     // root spans here now attribute to the spawner's span
/// });
/// ```
///
/// Opt-in by design: threads that never call this keep the historical
/// behavior (root spans have no parent). Pass `None` to clear.
pub fn adopt_parent(parent: Option<String>) {
    ADOPTED.with(|a| *a.borrow_mut() = parent);
}

/// Creates a span guard; prefer the [`span!`](crate::span!) macro.
#[must_use = "a span records on drop; binding it to `_` drops immediately"]
#[derive(Debug)]
pub struct Span {
    inner: Option<ActiveSpan>,
}

#[derive(Debug)]
struct ActiveSpan {
    name: Cow<'static, str>,
    parent: Option<String>,
    start: Instant,
    depth: usize,
}

impl Span {
    /// Enters a span named `name`. When recording is disabled the guard
    /// is inert and costs one atomic load.
    pub fn enter(name: impl Into<Cow<'static, str>>) -> Span {
        if !registry::enabled() {
            return Span { inner: None };
        }
        let name = name.into();
        let (parent, depth) = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let parent = stack
                .last()
                .cloned()
                .or_else(|| ADOPTED.with(|a| a.borrow().clone()));
            let depth = stack.len();
            stack.push(name.to_string());
            (parent, depth)
        });
        if let Some(p) = &parent {
            let mut map = parents().lock().expect("span parents poisoned");
            if map.get(name.as_ref()).map(String::as_str) != Some(p.as_str()) {
                map.insert(name.to_string(), p.clone());
            }
        }
        Span {
            inner: Some(ActiveSpan { name, parent, start: Instant::now(), depth }),
        }
    }

    /// The parent span active when this one was entered.
    pub fn parent(&self) -> Option<&str> {
        self.inner.as_ref().and_then(|a| a.parent.as_deref())
    }

    /// This span's name (`None` when recording is disabled).
    pub fn name(&self) -> Option<&str> {
        self.inner.as_ref().map(|a| a.name.as_ref())
    }

    /// Elapsed nanoseconds so far (0 when disabled).
    pub fn elapsed_ns(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|a| a.start.elapsed().as_nanos() as u64)
            .unwrap_or(0)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.inner.take() else { return };
        let ns = active.start.elapsed().as_nanos() as u64;
        registry::histogram(active.name.as_ref()).record(ns);
        // Guards drop LIFO under normal control flow; truncating to the
        // entry depth also heals the stack if a guard outlived siblings.
        STACK.with(|s| s.borrow_mut().truncate(active.depth));
    }
}

/// Enters a named span; the returned guard records elapsed nanoseconds
/// into the histogram of the same name when dropped.
///
/// ```
/// let _guard = prever_obs::span!("pir.answer");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::Span::enter($name)
    };
}

/// A started wall-clock timer: *the* timing primitive for code that
/// needs an explicit elapsed value (benches) rather than a scoped span.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing.
    pub fn start() -> Stopwatch {
        Stopwatch { start: Instant::now() }
    }

    /// Elapsed nanoseconds.
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Elapsed seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Stops, recording the elapsed nanoseconds into the global
    /// histogram `name`; returns the elapsed nanoseconds.
    pub fn stop_into(self, name: &str) -> u64 {
        let ns = self.elapsed_ns();
        registry::observe_ns(name, ns);
        ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_span_parent_attribution() {
        let outer = Span::enter("test.span.outer");
        assert_eq!(outer.parent(), None);
        assert_eq!(current_span().as_deref(), Some("test.span.outer"));
        {
            let inner = Span::enter("test.span.inner");
            assert_eq!(inner.parent(), Some("test.span.outer"));
            assert_eq!(current_span().as_deref(), Some("test.span.inner"));
            {
                let leaf = Span::enter("test.span.leaf");
                assert_eq!(leaf.parent(), Some("test.span.inner"));
            }
            assert_eq!(current_span().as_deref(), Some("test.span.inner"));
        }
        drop(outer);
        assert_eq!(current_span(), None);
        // Recorded edges survive the spans.
        assert_eq!(parent_of("test.span.inner").as_deref(), Some("test.span.outer"));
        assert_eq!(parent_of("test.span.leaf").as_deref(), Some("test.span.inner"));
        assert_eq!(parent_of("test.span.outer"), None);
        // Each drop recorded one observation.
        let s = registry::snapshot();
        for name in ["test.span.outer", "test.span.inner", "test.span.leaf"] {
            assert!(s.histogram(name).is_some_and(|h| h.count >= 1), "{name} not recorded");
        }
    }

    #[test]
    fn spans_are_per_thread() {
        let _outer = Span::enter("test.span.main_thread");
        std::thread::spawn(|| {
            // The other thread's stack is empty: no parent leaks across.
            let inner = Span::enter("test.span.other_thread");
            assert_eq!(inner.parent(), None);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn adopted_parent_spans_nest_across_threads() {
        // Regression: ParallelSim shard workers spawn with an empty span
        // stack, so their spans used to lose the parent edge to the
        // spawning thread. adopt_parent carries it across explicitly.
        let _outer = Span::enter("test.span.adopt_outer");
        let parent = current_span();
        std::thread::spawn(move || {
            adopt_parent(parent);
            let root = Span::enter("test.span.adopt_root");
            assert_eq!(root.parent(), Some("test.span.adopt_outer"));
            {
                // Nesting on the worker still tracks the worker's own
                // stack, not the adopted parent.
                let inner = Span::enter("test.span.adopt_inner");
                assert_eq!(inner.parent(), Some("test.span.adopt_root"));
            }
            drop(root);
            // After the root span closes, the stack is empty again and
            // new roots re-adopt the cross-thread parent.
            let again = Span::enter("test.span.adopt_again");
            assert_eq!(again.parent(), Some("test.span.adopt_outer"));
            // Clearing restores the historical orphan behavior.
            adopt_parent(None);
            drop(again);
            let orphan = Span::enter("test.span.adopt_orphan");
            assert_eq!(orphan.parent(), None);
        })
        .join()
        .unwrap();
        assert_eq!(
            parent_of("test.span.adopt_root").as_deref(),
            Some("test.span.adopt_outer")
        );
    }

    #[test]
    fn span_macro_records_elapsed() {
        {
            let guard = crate::span!("test.span.macro");
            assert_eq!(guard.name(), Some("test.span.macro"));
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let h = registry::snapshot();
        let snap = h.histogram("test.span.macro").expect("recorded");
        assert!(snap.max >= 1_000_000, "slept 2ms but max is {}ns", snap.max);
    }

    #[test]
    fn stopwatch_records_into_histogram() {
        let sw = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let ns = sw.stop_into("test.span.stopwatch");
        assert!(ns >= 500_000);
        assert!(registry::snapshot().histogram("test.span.stopwatch").is_some());
    }
}
