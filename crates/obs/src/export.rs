//! Snapshot exporters: an aligned text table for humans and JSON lines
//! compatible with the BENCHJSON trajectory tooling (the vendored
//! Criterion stand-in emits the same `BENCHJSON {...}` shape, so one
//! parser reads both).

use crate::registry::{HistogramSnapshot, Snapshot};
use crate::span;

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn aligned(rows: &[Vec<String>]) -> String {
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for (r, row) in rows.iter().enumerate() {
        out.push('|');
        for (i, cell) in row.iter().enumerate() {
            let pad = widths[i] - cell.chars().count();
            // Left-align the first (name) column, right-align numbers.
            if i == 0 {
                out.push_str(&format!(" {cell}{} |", " ".repeat(pad)));
            } else {
                out.push_str(&format!(" {}{cell} |", " ".repeat(pad)));
            }
        }
        out.push('\n');
        if r == 0 {
            out.push('|');
            for w in &widths {
                out.push_str(&format!("{}|", "-".repeat(w + 2)));
            }
            out.push('\n');
        }
    }
    out
}

/// Renders a snapshot as an aligned text report: one table of latency
/// histograms (annotated with their observed parent span, if any), then
/// counters and gauges.
pub fn render_table(s: &Snapshot) -> String {
    let mut out = String::new();
    if !s.histograms.is_empty() {
        out.push_str("## Latency histograms (wall-clock per span)\n\n");
        let mut rows = vec![vec![
            "span".to_string(),
            "count".to_string(),
            "mean".to_string(),
            "p50".to_string(),
            "p95".to_string(),
            "p99".to_string(),
            "max".to_string(),
            "total".to_string(),
        ]];
        for h in &s.histograms {
            let name = match span::parent_of(&h.name) {
                Some(p) => format!("{} (in {p})", h.name),
                None => h.name.clone(),
            };
            rows.push(vec![
                name,
                h.count.to_string(),
                fmt_ns(h.mean as u64),
                fmt_ns(h.p50),
                fmt_ns(h.p95),
                fmt_ns(h.p99),
                fmt_ns(h.max),
                fmt_ns(h.sum),
            ]);
        }
        out.push_str(&aligned(&rows));
        out.push('\n');
    }
    if !s.counters.is_empty() {
        out.push_str("## Counters\n\n");
        let mut rows = vec![vec!["counter".to_string(), "value".to_string()]];
        for (name, v) in &s.counters {
            rows.push(vec![name.clone(), v.to_string()]);
        }
        out.push_str(&aligned(&rows));
        out.push('\n');
    }
    if !s.gauges.is_empty() {
        out.push_str("## Gauges\n\n");
        let mut rows = vec![vec!["gauge".to_string(), "value".to_string()]];
        for (name, v) in &s.gauges {
            rows.push(vec![name.clone(), v.to_string()]);
        }
        out.push_str(&aligned(&rows));
        out.push('\n');
    }
    if out.is_empty() {
        out.push_str("(no metrics recorded)\n");
    }
    out
}

/// Escapes a string for embedding in a JSON value.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One `BENCHJSON` line for a histogram — the shape the trajectory
/// tooling already parses from the vendored Criterion.
pub fn benchjson_line(h: &HistogramSnapshot) -> String {
    format!(
        "BENCHJSON {{\"id\":\"{}\",\"mean_ns\":{:.1},\"median_ns\":{:.1},\"stddev_ns\":{:.1},\"samples\":{},\"p95_ns\":{},\"p99_ns\":{},\"max_ns\":{},\"sum_ns\":{}}}",
        json_escape(&h.name),
        h.mean,
        h.p50 as f64,
        h.stddev(),
        h.count,
        h.p95,
        h.p99,
        h.max,
        h.sum,
    )
}

/// Renders the whole snapshot as JSON lines: one `BENCHJSON` line per
/// histogram plus one `OBSJSON` line per counter/gauge.
pub fn render_jsonl(s: &Snapshot) -> String {
    let mut out = String::new();
    for h in &s.histograms {
        out.push_str(&benchjson_line(h));
        out.push('\n');
    }
    for (name, v) in &s.counters {
        out.push_str(&format!(
            "OBSJSON {{\"kind\":\"counter\",\"id\":\"{}\",\"value\":{v}}}\n",
            json_escape(name)
        ));
    }
    for (name, v) in &s.gauges {
        out.push_str(&format!(
            "OBSJSON {{\"kind\":\"gauge\",\"id\":\"{}\",\"value\":{v}}}\n",
            json_escape(name)
        ));
    }
    out
}

/// Renders the snapshot as one self-contained JSON document (the
/// `BENCH_obs.json` artifact shape): histograms, counters, and gauges
/// under one object, hand-serialized to stay dependency-free.
pub fn render_json_document(title: &str, extra_fields: &[(&str, String)], s: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"title\": \"{}\",\n", json_escape(title)));
    for (k, raw) in extra_fields {
        out.push_str(&format!("  \"{}\": {raw},\n", json_escape(k)));
    }
    out.push_str("  \"histograms\": [\n");
    for (i, h) in s.histograms.iter().enumerate() {
        let parent = match span::parent_of(&h.name) {
            Some(p) => format!("\"{}\"", json_escape(&p)),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "    {{\"id\":\"{}\",\"parent\":{parent},\"samples\":{},\"mean_ns\":{:.1},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"min_ns\":{},\"max_ns\":{},\"sum_ns\":{}}}{}\n",
            json_escape(&h.name),
            h.count,
            h.mean,
            h.p50,
            h.p95,
            h.p99,
            h.min,
            h.max,
            h.sum,
            if i + 1 < s.histograms.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"counters\": {\n");
    for (i, (name, v)) in s.counters.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {v}{}\n",
            json_escape(name),
            if i + 1 < s.counters.len() { "," } else { "" },
        ));
    }
    out.push_str("  },\n  \"gauges\": {\n");
    for (i, (name, v)) in s.gauges.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {v}{}\n",
            json_escape(name),
            if i + 1 < s.gauges.len() { "," } else { "" },
        ));
    }
    out.push_str("  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample() -> Snapshot {
        let reg = Registry::new();
        reg.counter("export.msgs").add(12);
        reg.gauge("export.level").set(-3);
        let h = reg.histogram("export.lat");
        for v in [100, 200, 300, 4_000, 5_000_000] {
            h.record(v);
        }
        reg.snapshot()
    }

    #[test]
    fn table_contains_every_metric_and_aligns() {
        let s = sample();
        let t = render_table(&s);
        assert!(t.contains("export.lat"));
        assert!(t.contains("export.msgs"));
        assert!(t.contains("export.level"));
        assert!(t.contains("p99"));
        // Header separator present.
        assert!(t.contains("|--"));
        // Empty snapshot says so instead of emitting nothing.
        assert!(render_table(&Snapshot::default()).contains("no metrics"));
    }

    #[test]
    fn jsonl_lines_parse_shape() {
        let s = sample();
        let j = render_jsonl(&s);
        let bench: Vec<&str> = j.lines().filter(|l| l.starts_with("BENCHJSON ")).collect();
        assert_eq!(bench.len(), 1);
        let body = bench[0].strip_prefix("BENCHJSON ").unwrap();
        assert!(body.starts_with('{') && body.ends_with('}'));
        assert!(body.contains("\"id\":\"export.lat\""));
        assert!(body.contains("\"samples\":5"));
        assert!(body.contains("mean_ns"));
        assert!(j.contains("OBSJSON {\"kind\":\"counter\",\"id\":\"export.msgs\",\"value\":12}"));
        assert!(j.contains("OBSJSON {\"kind\":\"gauge\",\"id\":\"export.level\",\"value\":-3}"));
    }

    #[test]
    fn json_document_is_balanced() {
        let s = sample();
        let doc = render_json_document("t", &[("ops", "42".to_string())], &s);
        // Braces/brackets balance — a cheap structural parse.
        let opens = doc.matches('{').count();
        let closes = doc.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
        assert!(doc.contains("\"ops\": 42"));
        assert!(doc.contains("\"export.msgs\": 12"));
        // No trailing commas before closing delimiters.
        assert!(!doc.contains(",\n  ]"));
        assert!(!doc.contains(",\n  }"));
    }

    #[test]
    fn escaping_handles_quotes_and_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
