//! # prever-obs
//!
//! The zero-dependency observability layer: every PReVer subsystem
//! records *where time goes* — PBFT phases, Paillier operations, PIR
//! answer computation, ledger appends — into one process-global
//! registry, so any run can print a per-phase latency breakdown instead
//! of a bare end-to-end wall clock. The paper's evaluation mandate (§6)
//! is comparative throughput/latency analysis; this crate is the
//! permanent instrumentation that analysis runs on.
//!
//! Three layers, all `std`-only (the workspace builds hermetically):
//!
//! * [`registry`] — lock-sharded global metrics: atomic [`Counter`]s,
//!   [`Gauge`]s, and log-bucketed [`Histogram`]s with p50/p95/p99/max
//!   queries;
//! * [`span`] — `span!("pbft.prepare")` RAII guards that time a region
//!   into the histogram of the same name, with thread-local parent
//!   tracking for nested spans;
//! * [`logger`] — a `PREVER_LOG`-gated structured logger with the
//!   [`log!`] macro.
//!
//! [`export`] renders a [`Snapshot`] as an aligned text table or as
//! BENCHJSON-compatible JSON lines.
//!
//! ## Cost when off
//!
//! Recording is guarded by one relaxed atomic load; call
//! [`set_enabled`]`(false)` to make every span/counter a near-no-op at
//! runtime, or build with the `disabled` cargo feature to compile the
//! whole layer out (the guard becomes a constant `false`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod logger;
pub mod registry;
pub mod span;
pub mod trace;

pub use export::{render_json_document, render_jsonl, render_table};
pub use logger::{log_enabled, max_level, set_max_level, Level};
pub use registry::{
    counter, enabled, gauge, global, histogram, observe_ns, set_enabled, snapshot, Counter, Gauge,
    Histogram, HistogramSnapshot, Registry, Snapshot,
};
pub use span::{adopt_parent, current_span, parent_of, Span, Stopwatch};
pub use trace::TraceCtx;
