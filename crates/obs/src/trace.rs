//! Causal distributed tracing and the per-node flight recorder.
//!
//! Every command entering the replicated pipeline carries a [`TraceCtx`]
//! — a trace id plus the span id of the stage that caused it — minted
//! deterministically at submission ([`TraceCtx::for_command`]). Protocol
//! code records [`TraceEvent`]s at named pipeline stages (see
//! [`STAGES`]): `enqueue → admit | shed` for the serving front end,
//! `queue → batch-cut → pre-prepare → prepare-quorum →
//! commit-quorum → exec → wal-flush` for ordering, and `cross-lock →
//! cross-decide → cross-outcome` for the SharPer-style cross-shard
//! path. Events are stamped with **virtual time** from the simulator,
//! never the wall clock, so a trace is a pure function of `(workload,
//! seed)` and replays bit-identically — including under the
//! shard-per-thread parallel runtime, because the export order is a
//! canonical sort over deterministic fields, not arrival order.
//!
//! Two collectors share one recording call:
//!
//! * the **trace collector** (off by default, [`set_trace_enabled`]):
//!   an unbounded event list drained by exporters — Chrome trace-event
//!   JSON via [`export_chrome_trace`] and the critical-path latency
//!   attribution of [`critical_path`];
//! * the **flight recorder** (off by default, [`set_flight_enabled`]):
//!   a bounded ring of the last N events *per node*, cheap enough to
//!   leave on for whole chaos sweeps, dumped as a merged
//!   causally-ordered postmortem ([`flight_dump`]) when an invariant
//!   trips.
//!
//! ## Cost when off
//!
//! [`event`] costs one relaxed atomic load when both collectors are
//! off; the `disabled` cargo feature compiles the whole module to
//! no-ops (the flag read becomes a constant 0).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// Trace-collector flag bit.
const FLAG_TRACE: u8 = 0b01;
/// Flight-recorder flag bit.
const FLAG_FLIGHT: u8 = 0b10;

static FLAGS: AtomicU8 = AtomicU8::new(0);

/// Default per-node flight-recorder ring capacity. 256 events cover
/// several dozen ordering rounds per replica — enough context to read a
/// violation's causal prefix without holding whole-run history.
pub const DEFAULT_FLIGHT_CAP: usize = 256;

/// SplitMix64 finalizer: the deterministic trace-id mint.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Causal trace context: the trace id plus the span that caused this
/// work. Minted once at command submission and carried (by value or by
/// derivation from the command id) through batches, protocol messages,
/// and durability barriers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct TraceCtx {
    /// The trace this work belongs to (0 = untraced).
    pub trace_id: u64,
    /// Span id of the causing stage (0 = root: client submission).
    pub parent_span: u64,
}

impl TraceCtx {
    /// Mints the root context for a client command. Deterministic —
    /// the same command id always yields the same trace id, so any
    /// pipeline stage that knows only the id (e.g. the cross-shard
    /// decision path) re-derives the identical context.
    pub fn for_command(command_id: u64) -> TraceCtx {
        TraceCtx { trace_id: mix64(command_id), parent_span: 0 }
    }

    /// The deterministic span id of `stage` for this trace at `node`.
    pub fn span_id(&self, stage: &str, node: u64) -> u64 {
        let mut h = self.trace_id ^ mix64(node);
        for &b in stage.as_bytes() {
            h = mix64(h ^ b as u64);
        }
        h | 1 // never 0 (0 = root)
    }

    /// A child context whose parent is `stage` at `node`.
    pub fn child(&self, stage: &str, node: u64) -> TraceCtx {
        TraceCtx { trace_id: self.trace_id, parent_span: self.span_id(stage, node) }
    }
}

/// The named pipeline stages in causal order. The exporter uses the
/// position in this list as the canonical stage rank; unknown stage
/// names sort after all known ones (alphabetically).
///
/// The first five are serving-layer stages (DESIGN.md §14–15): a
/// session attaches with `hello` (or re-attaches on a new gateway with
/// `resume` after a failover), then each request is `enqueue`d at the
/// gateway and either `admit`ted into the consensus path or `shed`
/// (overload, deadline, or degradation ladder). Separating them from
/// `queue` (consensus-side request arrival) lets `critical_path`
/// attribute admission queueing delay apart from consensus ordering
/// delay.
pub const STAGES: [&str; 15] = [
    "hello",
    "resume",
    "enqueue",
    "admit",
    "shed",
    "queue",
    "batch-cut",
    "pre-prepare",
    "prepare-quorum",
    "commit-quorum",
    "exec",
    "wal-flush",
    "cross-lock",
    "cross-decide",
    "cross-outcome",
];

/// Rank of `stage` in the canonical pipeline order.
pub fn stage_rank(stage: &str) -> usize {
    STAGES.iter().position(|&s| s == stage).unwrap_or(STAGES.len())
}

/// One recorded protocol event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time (µs) the stage was reached.
    pub at: u64,
    /// Node (replica) that recorded the event.
    pub node: u64,
    /// The trace this event belongs to.
    pub trace_id: u64,
    /// Span id of the causing stage (0 = root).
    pub parent_span: u64,
    /// Stage name (one of [`STAGES`] by convention).
    pub stage: &'static str,
    /// Stage-specific detail (slot / sequence / tx id).
    pub seq: u64,
}

impl TraceEvent {
    /// The canonical sort key: a pure function of deterministic fields,
    /// so the exported order is independent of thread interleaving.
    fn key(&self) -> (u64, u64, usize, u64, u64) {
        (self.at, self.trace_id, stage_rank(self.stage), self.node, self.seq)
    }

    /// One-line rendering for postmortem dumps.
    pub fn render(&self) -> String {
        format!(
            "t={:<10} node={:<3} {:<14} trace={:016x} seq={}",
            self.at, self.node, self.stage, self.trace_id, self.seq
        )
    }
}

#[derive(Default)]
struct Sink {
    /// Unbounded trace collector (when FLAG_TRACE).
    events: Vec<TraceEvent>,
    /// Bounded per-node rings (when FLAG_FLIGHT): node → (ring, seq).
    rings: HashMap<u64, VecDeque<(u64, TraceEvent)>>,
    ring_cap: usize,
    ring_seq: u64,
}

static SINK: OnceLock<Mutex<Sink>> = OnceLock::new();

fn sink() -> &'static Mutex<Sink> {
    SINK.get_or_init(|| {
        Mutex::new(Sink { ring_cap: DEFAULT_FLIGHT_CAP, ..Sink::default() })
    })
}

/// True iff either collector wants events (one relaxed load).
#[cfg(not(feature = "disabled"))]
#[inline]
pub fn active() -> bool {
    FLAGS.load(Ordering::Relaxed) != 0
}

/// Compiled out: never active.
#[cfg(feature = "disabled")]
#[inline]
pub const fn active() -> bool {
    false
}

/// Turns the unbounded trace collector on or off.
pub fn set_trace_enabled(on: bool) {
    if on {
        FLAGS.fetch_or(FLAG_TRACE, Ordering::Relaxed);
    } else {
        FLAGS.fetch_and(!FLAG_TRACE, Ordering::Relaxed);
    }
}

/// True iff the unbounded trace collector is on.
pub fn trace_enabled() -> bool {
    active() && FLAGS.load(Ordering::Relaxed) & FLAG_TRACE != 0
}

/// Turns the per-node flight recorder on or off.
pub fn set_flight_enabled(on: bool) {
    if on {
        FLAGS.fetch_or(FLAG_FLIGHT, Ordering::Relaxed);
    } else {
        FLAGS.fetch_and(!FLAG_FLIGHT, Ordering::Relaxed);
    }
}

/// True iff the flight recorder is on.
pub fn flight_enabled() -> bool {
    active() && FLAGS.load(Ordering::Relaxed) & FLAG_FLIGHT != 0
}

/// Sets the per-node flight-recorder ring capacity (existing rings are
/// trimmed lazily as they record).
pub fn set_flight_capacity(cap: usize) {
    sink().lock().expect("trace sink poisoned").ring_cap = cap.max(1);
}

/// Clears both collectors (between independent runs).
pub fn reset() {
    let mut s = sink().lock().expect("trace sink poisoned");
    s.events.clear();
    s.rings.clear();
    s.ring_seq = 0;
}

/// Records a pipeline stage event. Call sites should guard loops with
/// [`active`]; the call itself re-checks, so an unguarded call is
/// merely a cheap no-op when tracing is off.
#[inline]
pub fn event(node: u64, at: u64, ctx: TraceCtx, stage: &'static str, seq: u64) {
    if !active() {
        return;
    }
    record(TraceEvent {
        at,
        node,
        trace_id: ctx.trace_id,
        parent_span: ctx.parent_span,
        stage,
        seq,
    });
}

fn record(ev: TraceEvent) {
    let flags = FLAGS.load(Ordering::Relaxed);
    let mut s = sink().lock().expect("trace sink poisoned");
    if flags & FLAG_FLIGHT != 0 {
        s.ring_seq += 1;
        let seq = s.ring_seq;
        let cap = s.ring_cap;
        let ring = s.rings.entry(ev.node).or_default();
        while ring.len() >= cap {
            ring.pop_front();
        }
        ring.push_back((seq, ev.clone()));
    }
    if flags & FLAG_TRACE != 0 {
        s.events.push(ev);
    }
}

/// A canonically ordered copy of everything the trace collector holds.
/// The sort key is deterministic (virtual time, trace id, stage rank,
/// node), so the result is bit-identical across replays regardless of
/// thread scheduling.
pub fn events() -> Vec<TraceEvent> {
    let mut out = sink().lock().expect("trace sink poisoned").events.clone();
    out.sort_by_key(|e| e.key());
    out
}

/// The merged flight-recorder postmortem: the last `per_node` buffered
/// events of every node, merged into one causally-ordered timeline
/// (virtual-time order; per-node ring order breaks ties).
pub fn flight_dump(per_node: usize) -> Vec<TraceEvent> {
    let s = sink().lock().expect("trace sink poisoned");
    let mut merged: Vec<(u64, TraceEvent)> = Vec::new();
    let mut nodes: Vec<&u64> = s.rings.keys().collect();
    nodes.sort_unstable();
    for node in nodes {
        let ring = &s.rings[node];
        let skip = ring.len().saturating_sub(per_node);
        merged.extend(ring.iter().skip(skip).cloned());
    }
    merged.sort_by(|(sa, a), (sb, b)| a.key().cmp(&b.key()).then(sa.cmp(sb)));
    merged.into_iter().map(|(_, e)| e).collect()
}

/// [`flight_dump`] rendered as one line per event.
pub fn flight_dump_lines(per_node: usize) -> Vec<String> {
    flight_dump(per_node).iter().map(TraceEvent::render).collect()
}

// ---------------------------------------------------------------------
// Chrome trace-event export (Perfetto-loadable).
// ---------------------------------------------------------------------

/// Exports events as a Chrome trace-event JSON document
/// (`chrome://tracing` / Perfetto's legacy JSON loader).
///
/// Per trace: one async `b`/`e` pair spanning submission → final stage
/// (nested under the trace id, which gives the causal grouping), plus
/// one complete (`X`) slice per stage transition on the timeline of the
/// node that reached the stage. `ts` is virtual µs verbatim —
/// trace-event timestamps are µs, so virtual time maps 1:1.
/// `shard_of` maps a node id to its process-track (`pid`) group.
pub fn export_chrome_trace(events: &[TraceEvent], shard_of: impl Fn(u64) -> u64) -> String {
    use crate::export::json_escape;
    let mut by_trace: BTreeMap<u64, Vec<&TraceEvent>> = BTreeMap::new();
    for e in events {
        by_trace.entry(e.trace_id).or_default().push(e);
    }
    let mut lines: Vec<String> = Vec::new();
    for (trace_id, mut evs) in by_trace {
        evs.sort_by_key(|e| e.key());
        let first = evs.first().expect("non-empty trace");
        let last = evs.last().expect("non-empty trace");
        lines.push(format!(
            "{{\"ph\":\"b\",\"cat\":\"prever\",\"name\":\"trace\",\"id\":\"0x{trace_id:016x}\",\
             \"pid\":{},\"tid\":{},\"ts\":{}}}",
            shard_of(first.node),
            first.node,
            first.at
        ));
        // One slice per stage: from the previous stage's first arrival
        // to this one's, on the reaching node's track. A trace's first
        // event gets a zero-width slice (no predecessor).
        let mut firsts: Vec<&TraceEvent> = Vec::new();
        for e in &evs {
            if !firsts.iter().any(|f| f.stage == e.stage) {
                firsts.push(e);
            }
        }
        let mut prev_at = first.at;
        for e in firsts {
            lines.push(format!(
                "{{\"ph\":\"X\",\"cat\":\"prever\",\"name\":\"{}\",\"pid\":{},\"tid\":{},\
                 \"ts\":{},\"dur\":{},\"args\":{{\"trace\":\"0x{trace_id:016x}\",\
                 \"seq\":{},\"parent_span\":\"0x{:016x}\"}}}}",
                json_escape(e.stage),
                shard_of(e.node),
                e.node,
                prev_at,
                e.at.saturating_sub(prev_at).max(1),
                e.seq,
                e.parent_span,
            ));
            prev_at = e.at;
        }
        lines.push(format!(
            "{{\"ph\":\"e\",\"cat\":\"prever\",\"name\":\"trace\",\"id\":\"0x{trace_id:016x}\",\
             \"pid\":{},\"tid\":{},\"ts\":{}}}",
            shard_of(last.node),
            last.node,
            last.at.max(first.at + 1)
        ));
    }
    let mut out = String::from("{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n");
    for (i, l) in lines.iter().enumerate() {
        out.push_str(l);
        if i + 1 < lines.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n}\n");
    out
}

// ---------------------------------------------------------------------
// Critical-path latency attribution.
// ---------------------------------------------------------------------

/// Per-stage latency statistics across all traces (virtual µs).
#[derive(Clone, Debug)]
pub struct StageStat {
    /// Stage name.
    pub stage: &'static str,
    /// Traces that passed through this stage.
    pub count: u64,
    /// Median stage delta.
    pub p50_us: u64,
    /// 99th-percentile stage delta.
    pub p99_us: u64,
    /// Mean stage delta.
    pub mean_us: f64,
}

/// The critical-path report over a set of traces.
#[derive(Clone, Debug, Default)]
pub struct CriticalPath {
    /// Number of traces analyzed.
    pub traces: u64,
    /// Per-stage delta statistics, pipeline order.
    pub stages: Vec<StageStat>,
    /// p50 end-to-end latency (first event → last event), µs.
    pub p50_total_us: u64,
    /// p99 end-to-end latency, µs.
    pub p99_total_us: u64,
    /// The exact stage decomposition of the trace at the p50 rank:
    /// `(stage, delta µs)`, summing to that trace's total.
    pub p50_decomposition: Vec<(&'static str, u64)>,
    /// The exact stage decomposition of the trace at the p99 rank.
    pub p99_decomposition: Vec<(&'static str, u64)>,
}

fn pick(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Decomposes end-to-end trace latency into per-stage deltas.
///
/// For each trace, the time a stage is credited with is the gap between
/// the *first* arrival at the previous pipeline stage and the first
/// arrival at this one (global virtual time, so cross-node gaps — e.g.
/// quorum wait — are attributed to the stage that was waiting). The
/// per-trace deltas telescope: they sum exactly to that trace's
/// first-to-last latency, which is why the p50/p99 decompositions below
/// sum exactly to the picked trace's total.
pub fn critical_path(events: &[TraceEvent]) -> CriticalPath {
    let mut by_trace: BTreeMap<u64, Vec<&TraceEvent>> = BTreeMap::new();
    for e in events {
        by_trace.entry(e.trace_id).or_default().push(e);
    }
    // Per trace: (total, ordered stage deltas).
    let mut totals: Vec<(u64, Vec<(&'static str, u64)>)> = Vec::new();
    let mut per_stage: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
    for evs in by_trace.values() {
        // First arrival per stage, in pipeline order.
        let mut first_at: BTreeMap<usize, (&'static str, u64)> = BTreeMap::new();
        for e in evs {
            let r = stage_rank(e.stage);
            let slot = first_at.entry(r).or_insert((e.stage, e.at));
            if e.at < slot.1 {
                *slot = (e.stage, e.at);
            }
        }
        if first_at.len() < 2 {
            continue;
        }
        let mut deltas = Vec::with_capacity(first_at.len());
        let mut prev: Option<u64> = None;
        let mut start = 0u64;
        let mut end = 0u64;
        for (rank, (stage, at)) in &first_at {
            match prev {
                None => {
                    start = *at;
                    end = *at;
                }
                Some(p) => {
                    let d = at.saturating_sub(p);
                    deltas.push((*stage, d));
                    per_stage.entry(*rank).or_default().push(d);
                    end = (*at).max(end);
                }
            }
            prev = Some(*at);
        }
        totals.push((end.saturating_sub(start), deltas));
    }
    totals.sort_by_key(|(t, _)| *t);
    let sorted_totals: Vec<u64> = totals.iter().map(|(t, _)| *t).collect();
    let stages = per_stage
        .into_iter()
        .map(|(rank, mut ds)| {
            ds.sort_unstable();
            let count = ds.len() as u64;
            let sum: u64 = ds.iter().sum();
            StageStat {
                stage: STAGES.get(rank).copied().unwrap_or("other"),
                count,
                p50_us: pick(&ds, 0.50),
                p99_us: pick(&ds, 0.99),
                mean_us: sum as f64 / count as f64,
            }
        })
        .collect();
    let decomp_at = |q: f64| -> Vec<(&'static str, u64)> {
        if totals.is_empty() {
            return Vec::new();
        }
        let rank = ((q * totals.len() as f64).ceil() as usize).clamp(1, totals.len());
        totals[rank - 1].1.clone()
    };
    CriticalPath {
        traces: totals.len() as u64,
        stages,
        p50_total_us: pick(&sorted_totals, 0.50),
        p99_total_us: pick(&sorted_totals, 0.99),
        p50_decomposition: decomp_at(0.50),
        p99_decomposition: decomp_at(0.99),
    }
}

impl CriticalPath {
    /// Renders the report as a JSON object (for embedding in
    /// `BENCH_obs.json`-style documents).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("    \"traces\": {},\n", self.traces));
        out.push_str(&format!("    \"p50_total_us\": {},\n", self.p50_total_us));
        out.push_str(&format!("    \"p99_total_us\": {},\n", self.p99_total_us));
        out.push_str("    \"stages\": [\n");
        for (i, s) in self.stages.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"stage\": \"{}\", \"count\": {}, \"p50_us\": {}, \"p99_us\": {}, \
                 \"mean_us\": {:.1}}}{}\n",
                s.stage,
                s.count,
                s.p50_us,
                s.p99_us,
                s.mean_us,
                if i + 1 < self.stages.len() { "," } else { "" }
            ));
        }
        out.push_str("    ],\n");
        for (label, decomp, total) in [
            ("p50_decomposition", &self.p50_decomposition, self.p50_total_us),
            ("p99_decomposition", &self.p99_decomposition, self.p99_total_us),
        ] {
            out.push_str(&format!("    \"{label}\": {{"));
            for (i, (stage, d)) in decomp.iter().enumerate() {
                out.push_str(&format!(
                    "\"{stage}\": {d}{}",
                    if i + 1 < decomp.len() { ", " } else { "" }
                ));
            }
            let _ = total;
            out.push_str("},\n");
        }
        let sum_p99: u64 = self.p99_decomposition.iter().map(|(_, d)| d).sum();
        out.push_str(&format!("    \"p99_decomposition_sum_us\": {sum_p99}\n"));
        out.push_str("  }");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, node: u64, trace: u64, stage: &'static str, seq: u64) -> TraceEvent {
        TraceEvent { at, node, trace_id: trace, parent_span: 0, stage, seq }
    }

    #[test]
    fn trace_ctx_is_deterministic_and_distinct() {
        let a = TraceCtx::for_command(7);
        assert_eq!(a, TraceCtx::for_command(7));
        assert_ne!(a.trace_id, TraceCtx::for_command(8).trace_id);
        assert_ne!(a.trace_id, 0);
        // Span ids are deterministic, nonzero, and stage/node-specific.
        assert_eq!(a.span_id("exec", 1), a.span_id("exec", 1));
        assert_ne!(a.span_id("exec", 1), a.span_id("exec", 2));
        assert_ne!(a.span_id("exec", 1), a.span_id("queue", 1));
        assert_eq!(a.child("exec", 1).parent_span, a.span_id("exec", 1));
    }

    #[test]
    fn collectors_are_independent_and_bounded() {
        // This test owns distinctive trace ids; other tests may record
        // concurrently, so assertions filter by them.
        set_flight_enabled(true);
        set_trace_enabled(true);
        let t = 0xf11e_0000_0000_0001u64;
        for i in 0..10u64 {
            event(900, 100 + i, TraceCtx { trace_id: t, parent_span: 0 }, "exec", i);
        }
        let evs: Vec<TraceEvent> =
            events().into_iter().filter(|e| e.trace_id == t).collect();
        assert_eq!(evs.len(), 10);
        // Canonical order sorts by at.
        assert!(evs.windows(2).all(|w| w[0].at <= w[1].at));
        // Flight ring for node 900 kept them (bounded at the cap).
        let dump = flight_dump(4);
        let mine: Vec<&TraceEvent> =
            dump.iter().filter(|e| e.trace_id == t).collect();
        assert_eq!(mine.len(), 4, "per_node limit caps the dump");
        assert_eq!(mine.last().unwrap().at, 109);
        set_trace_enabled(false);
        set_flight_enabled(false);
        // Off: recording is a no-op.
        event(900, 999, TraceCtx { trace_id: t, parent_span: 0 }, "exec", 99);
        assert_eq!(
            events().into_iter().filter(|e| e.trace_id == t && e.at == 999).count(),
            0
        );
    }

    #[test]
    fn chrome_export_is_valid_shape() {
        let evs = vec![
            ev(10, 0, 0xabc, "queue", 1),
            ev(20, 0, 0xabc, "batch-cut", 1),
            ev(55, 1, 0xabc, "commit-quorum", 1),
            ev(60, 1, 0xabc, "exec", 1),
        ];
        let json = export_chrome_trace(&evs, |n| n / 4);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"b\""));
        assert!(json.contains("\"ph\":\"e\""));
        assert!(json.contains("\"name\":\"commit-quorum\""));
        // One X slice per stage.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 4);
    }

    #[test]
    fn critical_path_decomposition_sums_exactly() {
        // Two traces with known stage times.
        let mut evs = Vec::new();
        for (t, base) in [(1u64, 100u64), (2, 200)] {
            evs.push(ev(base, 0, t, "queue", t));
            evs.push(ev(base + 10, 0, t, "batch-cut", t));
            evs.push(ev(base + 30, 1, t, "commit-quorum", t));
            evs.push(ev(base + 30 + t, 1, t, "exec", t));
        }
        let cp = critical_path(&evs);
        assert_eq!(cp.traces, 2);
        assert_eq!(cp.p99_total_us, 32); // trace 2: 10 + 20 + 2
        let sum: u64 = cp.p99_decomposition.iter().map(|(_, d)| d).sum();
        assert_eq!(sum, cp.p99_total_us, "decomposition telescopes to the total");
        assert_eq!(cp.stages.len(), 3); // batch-cut, commit-quorum, exec deltas
        let json = cp.render_json();
        assert!(json.contains("\"p99_decomposition_sum_us\": 32"));
    }

    #[test]
    fn stage_ranks_follow_pipeline_order() {
        assert!(stage_rank("enqueue") < stage_rank("admit"));
        assert!(stage_rank("admit") < stage_rank("shed"));
        assert!(stage_rank("shed") < stage_rank("queue"));
        assert!(stage_rank("queue") < stage_rank("batch-cut"));
        assert!(stage_rank("prepare-quorum") < stage_rank("commit-quorum"));
        assert!(stage_rank("exec") < stage_rank("wal-flush"));
        assert!(stage_rank("wal-flush") < stage_rank("cross-lock"));
        assert_eq!(stage_rank("nonsense"), STAGES.len());
    }
}
