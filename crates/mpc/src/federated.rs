//! Federated regulation verification: the PReVer-facing MPC API.
//!
//! One call checks a distributed bound regulation across `n` data
//! managers — "the money earned monthly by a crowdworker across multiple
//! crowdworking platforms" (§3.2), "the total work hours of a worker …
//! per week may not exceed 40 hours" (§2.3) — and returns the verdict
//! together with a [`LeakageRecord`] naming exactly what every party
//! learned.

use crate::beaver::Dealer;
use crate::protocol::{self, MpcStats};
use crate::Result;
use prever_crypto::Fp61;
use rand::Rng;

/// What one protocol run disclosed, and to whom.
///
/// The paper: "PReVer thus requires a better understanding of
/// information leakage due to the enforcement of constraints on
/// updates." Every run of the federated check produces one of these.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeakageRecord {
    /// The regulation verdict — always revealed, by design: whether the
    /// update may proceed.
    pub verdict: bool,
    /// The blinded scaled difference all parties observed.
    pub blinded_difference: i64,
    /// Human-readable description of the leakage class.
    pub description: &'static str,
}

/// Verifies `Σ private_inputs + new_contribution ≤ bound` across the
/// parties, leaking only the verdict and a blinded difference.
#[derive(Debug)]
pub struct FederatedBoundCheck {
    dealer: Dealer,
    /// Accumulated protocol statistics across runs.
    pub stats: MpcStats,
}

impl Default for FederatedBoundCheck {
    fn default() -> Self {
        Self::new()
    }
}

impl FederatedBoundCheck {
    /// Creates the checker with its offline-phase dealer.
    pub fn new() -> Self {
        FederatedBoundCheck { dealer: Dealer::new(), stats: MpcStats::default() }
    }

    /// Runs the upper-bound check: may a new contribution of
    /// `new_contribution` be admitted given each party's private total?
    pub fn check_upper_bound<R: Rng + ?Sized>(
        &mut self,
        private_inputs: &[i64],
        new_contribution: i64,
        bound: i64,
        rng: &mut R,
    ) -> Result<LeakageRecord> {
        let n = private_inputs.len();
        let shared = protocol::shared_sum(private_inputs, &mut self.stats, rng)?;
        let with_new = protocol::add_public(&shared, Fp61::from_i64(new_contribution));
        let triple = self.dealer.deal(n, rng);
        let (verdict, blinded_difference) =
            protocol::blinded_le(&with_new, bound, &triple, &mut self.stats, rng)?;
        Ok(LeakageRecord {
            verdict,
            blinded_difference,
            description: "verdict + sign-preserving randomly-scaled difference",
        })
    }

    /// Runs a lower-bound check (`Σ inputs ≥ bound`; Separ's footnote 4
    /// notes lower-bound regulations, e.g. minimum wage per period).
    pub fn check_lower_bound<R: Rng + ?Sized>(
        &mut self,
        private_inputs: &[i64],
        bound: i64,
        rng: &mut R,
    ) -> Result<LeakageRecord> {
        let n = private_inputs.len();
        let shared = protocol::shared_sum(private_inputs, &mut self.stats, rng)?;
        // Σ ≥ bound  ⟺  −Σ ≤ −bound.
        let negated = protocol::neg_shares(&shared);
        let triple = self.dealer.deal(n, rng);
        let (verdict, blinded_difference) =
            protocol::blinded_le(&negated, -bound, &triple, &mut self.stats, rng)?;
        Ok(LeakageRecord {
            verdict,
            blinded_difference,
            description: "verdict + sign-preserving randomly-scaled difference",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn flsa_upper_bound_across_platforms() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut check = FederatedBoundCheck::new();
        // Uber: 20h, Lyft: 15h this week. New 5h task → exactly 40: ok.
        let rec = check.check_upper_bound(&[20, 15], 5, 40, &mut rng).unwrap();
        assert!(rec.verdict);
        // New 6h task → 41 > 40: rejected.
        let rec = check.check_upper_bound(&[20, 15], 6, 40, &mut rng).unwrap();
        assert!(!rec.verdict);
    }

    #[test]
    fn minimum_earnings_lower_bound() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut check = FederatedBoundCheck::new();
        // Earned 600 + 500 across platforms, minimum 1000 → satisfied.
        assert!(check.check_lower_bound(&[600, 500], 1000, &mut rng).unwrap().verdict);
        // Minimum 1200 → violated.
        assert!(!check.check_lower_bound(&[600, 500], 1200, &mut rng).unwrap().verdict);
        // Boundary: exactly the bound satisfies ≥.
        assert!(check.check_lower_bound(&[600, 400], 1000, &mut rng).unwrap().verdict);
    }

    #[test]
    fn leakage_record_is_blinded() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut check = FederatedBoundCheck::new();
        let rec = check.check_upper_bound(&[10, 10], 5, 40, &mut rng).unwrap();
        // True difference is 15; the leaked value must be a positive
        // multiple of it.
        assert!(rec.verdict);
        assert_eq!(rec.blinded_difference % 15, 0);
        assert!(rec.blinded_difference >= 15);
    }

    #[test]
    fn repeated_checks_accumulate_stats() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut check = FederatedBoundCheck::new();
        for _ in 0..5 {
            check.check_upper_bound(&[1, 2, 3], 1, 100, &mut rng).unwrap();
        }
        assert_eq!(check.stats.triples_used, 5);
        assert!(check.stats.rounds >= 5 * 4);
    }
}
