//! Beaver multiplication triples from a trusted dealer.
//!
//! A triple is a random `(a, b, c)` with `c = a·b`, additively shared
//! among the parties before the online protocol starts. One triple is
//! consumed per secure multiplication. The dealer is offline-only: it
//! never sees inputs, only supplies correlated randomness — the same
//! trust shape as Separ's token authority.

use prever_crypto::shamir::{reconstruct_additive, share_additive};
use prever_crypto::Fp61;
use rand::Rng;

/// One party's share of a Beaver triple.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TripleShare {
    /// Share of `a`.
    pub a: Fp61,
    /// Share of `b`.
    pub b: Fp61,
    /// Share of `c = a·b`.
    pub c: Fp61,
}

/// The trusted dealer.
#[derive(Debug, Default)]
pub struct Dealer {
    issued: u64,
}

impl Dealer {
    /// A fresh dealer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of triples issued (offline-phase cost accounting).
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Deals one triple, additively shared among `n` parties.
    pub fn deal<R: Rng + ?Sized>(&mut self, n: usize, rng: &mut R) -> Vec<TripleShare> {
        self.issued += 1;
        let a = Fp61::random(rng);
        let b = Fp61::random(rng);
        let c = a * b;
        let sa = share_additive(a, n, rng);
        let sb = share_additive(b, n, rng);
        let sc = share_additive(c, n, rng);
        sa.into_iter()
            .zip(sb)
            .zip(sc)
            .map(|((a, b), c)| TripleShare { a, b, c })
            .collect()
    }

    /// Deals a batch of triples (offline phase for a whole session).
    pub fn deal_batch<R: Rng + ?Sized>(
        &mut self,
        n: usize,
        count: usize,
        rng: &mut R,
    ) -> Vec<Vec<TripleShare>> {
        (0..count).map(|_| self.deal(n, rng)).collect()
    }
}

/// Verifies a dealt triple reconstructs consistently (dealer self-check
/// and test helper).
pub fn triple_is_valid(shares: &[TripleShare]) -> bool {
    let a = reconstruct_additive(&shares.iter().map(|s| s.a).collect::<Vec<_>>());
    let b = reconstruct_additive(&shares.iter().map(|s| s.b).collect::<Vec<_>>());
    let c = reconstruct_additive(&shares.iter().map(|s| s.c).collect::<Vec<_>>());
    a * b == c
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn triples_reconstruct_to_products() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut dealer = Dealer::new();
        for n in [2usize, 3, 5, 10] {
            let shares = dealer.deal(n, &mut rng);
            assert_eq!(shares.len(), n);
            assert!(triple_is_valid(&shares));
        }
        assert_eq!(dealer.issued(), 4);
    }

    #[test]
    fn batch_dealing() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut dealer = Dealer::new();
        let batch = dealer.deal_batch(4, 16, &mut rng);
        assert_eq!(batch.len(), 16);
        assert!(batch.iter().all(|t| triple_is_valid(t)));
    }

    #[test]
    fn individual_shares_are_not_the_secret() {
        // With n ≥ 2, a single share must differ from the reconstructed
        // value (probability of collision is ~2^-61; the seed avoids it).
        let mut rng = StdRng::seed_from_u64(3);
        let mut dealer = Dealer::new();
        let shares = dealer.deal(3, &mut rng);
        let a = reconstruct_additive(&shares.iter().map(|s| s.a).collect::<Vec<_>>());
        assert!(shares.iter().any(|s| s.a != a));
    }
}
