//! The online MPC protocols: input sharing, secure sum, Beaver
//! multiplication, blinded-sign comparison.
//!
//! Protocols are written as explicit rounds over per-party state so the
//! message and round counts the benches report are the real ones, not
//! estimates. All values live in `Fp61`; "signed" quantities use the
//! `(−p/2, p/2]` interpretation from [`Fp61::to_i64`].

use crate::beaver::TripleShare;
use crate::Result;
use prever_crypto::shamir::{reconstruct_additive, share_additive};
use prever_crypto::Fp61;
use rand::Rng;

/// Errors from the MPC layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpcError {
    /// Too few parties for the protocol.
    TooFewParties(usize),
    /// Input magnitude too large for sign-safe arithmetic.
    InputOutOfRange {
        /// The offending magnitude (bits).
        bits: u32,
        /// Maximum supported bits.
        max_bits: u32,
    },
    /// Parties disagreed on an opened value (corruption outside the
    /// honest-but-curious model).
    OpenMismatch,
}

impl std::fmt::Display for MpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpcError::TooFewParties(n) => write!(f, "need at least 2 parties, got {n}"),
            MpcError::InputOutOfRange { bits, max_bits } => {
                write!(f, "input of {bits} bits exceeds the sign-safe maximum of {max_bits}")
            }
            MpcError::OpenMismatch => write!(f, "opened values disagree"),
        }
    }
}

impl std::error::Error for MpcError {}

/// Inputs up to this many bits keep the blinded comparison sign-safe:
/// `|diff| < 2^MAX_INPUT_BITS` and blind `< 2^BLIND_BITS` give products
/// below `2^59 < p/2`.
pub const MAX_INPUT_BITS: u32 = 38;
/// Bits of the random positive blinding scalar.
pub const BLIND_BITS: u32 = 20;

/// Protocol cost accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MpcStats {
    /// Communication rounds executed.
    pub rounds: u64,
    /// Field elements transmitted (sum over all parties).
    pub elements_sent: u64,
    /// Beaver triples consumed.
    pub triples_used: u64,
}

/// A vector of additive shares, one per party (index = party id).
pub type Shares = Vec<Fp61>;

/// Shares a private input held by one party among all `n` parties.
/// Costs one round of `n − 1` messages.
pub fn share_input<R: Rng + ?Sized>(
    value: Fp61,
    n: usize,
    stats: &mut MpcStats,
    rng: &mut R,
) -> Result<Shares> {
    if n < 2 {
        return Err(MpcError::TooFewParties(n));
    }
    stats.rounds += 1;
    stats.elements_sent += (n - 1) as u64;
    Ok(share_additive(value, n, rng))
}

/// Adds share vectors locally (free: no communication).
pub fn add_shares(a: &Shares, b: &Shares) -> Shares {
    a.iter().zip(b).map(|(&x, &y)| x + y).collect()
}

/// Adds a public constant to a sharing (party 0 absorbs it).
pub fn add_public(a: &Shares, k: Fp61) -> Shares {
    let mut out = a.clone();
    out[0] += k;
    out
}

/// Multiplies a sharing by a public constant (local).
pub fn mul_public(a: &Shares, k: Fp61) -> Shares {
    a.iter().map(|&x| x * k).collect()
}

/// Negates a sharing (local).
pub fn neg_shares(a: &Shares) -> Shares {
    a.iter().map(|&x| -x).collect()
}

/// Opens a sharing: every party broadcasts its share (one round,
/// `n·(n−1)` messages) and sums.
pub fn open(shares: &Shares, stats: &mut MpcStats) -> Fp61 {
    let n = shares.len() as u64;
    stats.rounds += 1;
    stats.elements_sent += n * (n - 1);
    reconstruct_additive(shares)
}

/// Secure multiplication of two sharings using one Beaver triple.
///
/// Online cost: one round opening `d = x − a` and `e = y − b`, then the
/// local combination `c + d·b + e·a + d·e` (the `d·e` term is public).
pub fn mul_shares(
    x: &Shares,
    y: &Shares,
    triple: &[TripleShare],
    stats: &mut MpcStats,
) -> Result<Shares> {
    let n = x.len();
    if n < 2 {
        return Err(MpcError::TooFewParties(n));
    }
    assert_eq!(y.len(), n);
    assert_eq!(triple.len(), n);
    stats.triples_used += 1;
    // Open d and e (one combined round).
    let d_shares: Shares = x.iter().zip(triple).map(|(&xs, t)| xs - t.a).collect();
    let e_shares: Shares = y.iter().zip(triple).map(|(&ys, t)| ys - t.b).collect();
    stats.rounds += 1;
    stats.elements_sent += 2 * (n as u64) * (n as u64 - 1);
    let d = reconstruct_additive(&d_shares);
    let e = reconstruct_additive(&e_shares);
    // z_i = c_i + d·b_i + e·a_i (+ d·e at party 0).
    let mut z: Shares = triple
        .iter()
        .map(|t| t.c + d * t.b + e * t.a)
        .collect();
    z[0] += d * e;
    Ok(z)
}

/// The blinded-sign comparison: decides whether the shared value `x`
/// satisfies `x ≤ bound`, revealing only `sign(s·(bound − x))` together
/// with the blinded magnitude `s·(bound − x)` for a fresh random scalar
/// `s ∈ [1, 2^BLIND_BITS)`.
///
/// Returns `(accepted, opened_blinded_value)` so callers can log the
/// exact leakage.
pub fn blinded_le<R: Rng + ?Sized>(
    x: &Shares,
    bound: i64,
    triple: &[TripleShare],
    stats: &mut MpcStats,
    rng: &mut R,
) -> Result<(bool, i64)> {
    let n = x.len();
    if n < 2 {
        return Err(MpcError::TooFewParties(n));
    }
    // diff = bound − x (shared).
    let diff = add_public(&neg_shares(x), Fp61::from_i64(bound));
    // Jointly sampled positive blind: each party contributes a small
    // random scalar; s = 1 + (Σ s_i mod 2^BLIND_BITS). In this
    // orchestrated model the contributions are sampled here; the round
    // is charged.
    stats.rounds += 1;
    stats.elements_sent += n as u64 * (n as u64 - 1);
    let mask = (1u64 << BLIND_BITS) - 1;
    let s_joint: u64 = (0..n).map(|_| rng.gen::<u64>() & mask).sum::<u64>() & mask;
    let s = Fp61::new(1 + s_joint);
    // Blinded product via one Beaver multiplication. The blind is shared
    // as a public-for-the-protocol scalar here; a fully decentralized
    // version multiplies two sharings, which is exactly what we do so
    // costs are honest.
    let s_shares = share_input(s, n, stats, rng)?;
    let product = mul_shares(&diff, &s_shares, triple, stats)?;
    let opened = open(&product, stats);
    let signed = opened.to_i64();
    // Guard: magnitudes must stay inside the sign-safe window.
    if signed.unsigned_abs() >= 1u64 << (MAX_INPUT_BITS + BLIND_BITS + 1) {
        return Err(MpcError::InputOutOfRange {
            bits: 64 - signed.unsigned_abs().leading_zeros(),
            max_bits: MAX_INPUT_BITS + BLIND_BITS,
        });
    }
    Ok((signed >= 0, signed))
}

/// Secure sum of one private input per party: each party shares its
/// input, shares are added locally, the total is opened.
///
/// Returns the opened total (this protocol *intends* to reveal the sum,
/// e.g. for a published aggregate statistic).
pub fn secure_sum<R: Rng + ?Sized>(
    inputs: &[i64],
    stats: &mut MpcStats,
    rng: &mut R,
) -> Result<i64> {
    let n = inputs.len();
    if n < 2 {
        return Err(MpcError::TooFewParties(n));
    }
    for &v in inputs {
        if v.unsigned_abs() >= 1 << MAX_INPUT_BITS {
            return Err(MpcError::InputOutOfRange {
                bits: 64 - v.unsigned_abs().leading_zeros(),
                max_bits: MAX_INPUT_BITS,
            });
        }
    }
    let mut acc = vec![Fp61::ZERO; n];
    for &v in inputs {
        let shares = share_input(Fp61::from_i64(v), n, stats, rng)?;
        acc = add_shares(&acc, &shares);
    }
    Ok(open(&acc, stats).to_i64())
}

/// Sums each party's private input into a sharing *without* opening it
/// (building block for the bound check).
pub fn shared_sum<R: Rng + ?Sized>(
    inputs: &[i64],
    stats: &mut MpcStats,
    rng: &mut R,
) -> Result<Shares> {
    let n = inputs.len();
    if n < 2 {
        return Err(MpcError::TooFewParties(n));
    }
    let mut acc = vec![Fp61::ZERO; n];
    for &v in inputs {
        if v.unsigned_abs() >= 1 << MAX_INPUT_BITS {
            return Err(MpcError::InputOutOfRange {
                bits: 64 - v.unsigned_abs().leading_zeros(),
                max_bits: MAX_INPUT_BITS,
            });
        }
        let shares = share_input(Fp61::from_i64(v), n, stats, rng)?;
        acc = add_shares(&acc, &shares);
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beaver::Dealer;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn share_open_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut stats = MpcStats::default();
        let shares = share_input(Fp61::new(42), 5, &mut stats, &mut rng).unwrap();
        assert_eq!(open(&shares, &mut stats), Fp61::new(42));
        assert_eq!(stats.rounds, 2);
    }

    #[test]
    fn linear_operations() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut stats = MpcStats::default();
        let a = share_input(Fp61::new(30), 4, &mut stats, &mut rng).unwrap();
        let b = share_input(Fp61::new(12), 4, &mut stats, &mut rng).unwrap();
        assert_eq!(open(&add_shares(&a, &b), &mut stats), Fp61::new(42));
        assert_eq!(open(&add_public(&a, Fp61::new(5)), &mut stats), Fp61::new(35));
        assert_eq!(open(&mul_public(&a, Fp61::new(3)), &mut stats), Fp61::new(90));
        assert_eq!(open(&neg_shares(&a), &mut stats).to_i64(), -30);
    }

    #[test]
    fn beaver_multiplication() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut dealer = Dealer::new();
        let mut stats = MpcStats::default();
        for (x, y) in [(3i64, 4i64), (0, 9), (1000, 1000), (-5, 7)] {
            let n = 3;
            let xs = share_input(Fp61::from_i64(x), n, &mut stats, &mut rng).unwrap();
            let ys = share_input(Fp61::from_i64(y), n, &mut stats, &mut rng).unwrap();
            let triple = dealer.deal(n, &mut rng);
            let zs = mul_shares(&xs, &ys, &triple, &mut stats).unwrap();
            assert_eq!(open(&zs, &mut stats).to_i64(), x * y, "{x} * {y}");
        }
        assert_eq!(stats.triples_used, 4);
    }

    #[test]
    fn secure_sum_matches_plaintext() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut stats = MpcStats::default();
        let inputs = [8i64, 12, 0, 7, -3];
        assert_eq!(secure_sum(&inputs, &mut stats, &mut rng).unwrap(), 24);
        assert!(stats.elements_sent > 0);
    }

    #[test]
    fn secure_sum_rejects_too_few_parties() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut stats = MpcStats::default();
        assert_eq!(
            secure_sum(&[1], &mut stats, &mut rng).unwrap_err(),
            MpcError::TooFewParties(1)
        );
    }

    #[test]
    fn secure_sum_rejects_oversized_inputs() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut stats = MpcStats::default();
        assert!(matches!(
            secure_sum(&[1 << 40, 0], &mut stats, &mut rng),
            Err(MpcError::InputOutOfRange { .. })
        ));
    }

    #[test]
    fn blinded_le_decides_correctly() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut dealer = Dealer::new();
        // (x, bound, expected)
        let cases = [
            (38i64, 40i64, true),
            (40, 40, true),
            (41, 40, false),
            (0, 0, true),
            (1, 0, false),
            (100_000, 99_999, false),
        ];
        for (x, bound, expected) in cases {
            let mut stats = MpcStats::default();
            let n = 4;
            let xs = share_input(Fp61::from_i64(x), n, &mut stats, &mut rng).unwrap();
            let triple = dealer.deal(n, &mut rng);
            let (ok, _leak) = blinded_le(&xs, bound, &triple, &mut stats, &mut rng).unwrap();
            assert_eq!(ok, expected, "x={x} bound={bound}");
        }
    }

    #[test]
    fn blinded_le_leaks_only_scaled_difference() {
        // The opened value must be a multiple relationship of the true
        // difference — never the difference itself unless s = 1.
        let mut rng = StdRng::seed_from_u64(8);
        let mut dealer = Dealer::new();
        let mut stats = MpcStats::default();
        let n = 3;
        let x = 30i64;
        let bound = 40i64;
        let xs = share_input(Fp61::from_i64(x), n, &mut stats, &mut rng).unwrap();
        let triple = dealer.deal(n, &mut rng);
        let (ok, leak) = blinded_le(&xs, bound, &triple, &mut stats, &mut rng).unwrap();
        assert!(ok);
        assert_eq!(leak % (bound - x), 0, "leak must be s·diff");
        let s = leak / (bound - x);
        assert!((1..(1 << (BLIND_BITS + 1))).contains(&s));
    }

    #[test]
    fn flsa_cross_platform_check() {
        // Three platforms hold private per-worker hours; the federation
        // checks hours + new_task ≤ 40 without opening the total.
        let mut rng = StdRng::seed_from_u64(9);
        let mut dealer = Dealer::new();
        let mut stats = MpcStats::default();
        let platform_hours = [15i64, 12, 8]; // total 35
        let shared = shared_sum(&platform_hours, &mut stats, &mut rng).unwrap();
        // Adding a 5-hour task: 40 ≤ 40 → allowed.
        let with_new = add_public(&shared, Fp61::from_i64(5));
        let triple = dealer.deal(3, &mut rng);
        let (ok, _) = blinded_le(&with_new, 40, &triple, &mut stats, &mut rng).unwrap();
        assert!(ok);
        // A 6-hour task: 41 > 40 → rejected.
        let with_big = add_public(&shared, Fp61::from_i64(6));
        let triple = dealer.deal(3, &mut rng);
        let (ok, _) = blinded_le(&with_big, 40, &triple, &mut stats, &mut rng).unwrap();
        assert!(!ok);
    }

    #[test]
    fn stats_scale_with_party_count() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut dealer = Dealer::new();
        let cost = |n: usize, rng: &mut StdRng, dealer: &mut Dealer| {
            let mut stats = MpcStats::default();
            let inputs: Vec<i64> = (0..n as i64).collect();
            let shared = shared_sum(&inputs, &mut stats, rng).unwrap();
            let triple = dealer.deal(n, rng);
            blinded_le(&shared, 100, &triple, &mut stats, rng).unwrap();
            stats.elements_sent
        };
        let c3 = cost(3, &mut rng, &mut dealer);
        let c9 = cost(9, &mut rng, &mut dealer);
        assert!(c9 > c3 * 3, "communication should grow superlinearly: {c3} vs {c9}");
    }
}
