//! # prever-mpc
//!
//! Honest-but-curious secure multi-party computation for federated
//! constraint verification.
//!
//! Research Challenge 2: *"Enable a set of trusted and untrusted
//! federated data managers to verify distributed constraints over
//! distributed private data and to perform updates conditionally."* The
//! paper's decentralized answer is secure multi-party computation; the
//! dominant constraint shape is a bound on a distributed aggregate (the
//! FLSA example: the hours a worker logged across *all* platforms may
//! not exceed 40/week).
//!
//! This crate implements that protocol stack over the 61-bit Mersenne
//! field from `prever-crypto`:
//!
//! * [`beaver`] — multiplication triples from a trusted dealer (the
//!   standard offline/online split; the dealer role maps onto the same
//!   external authority Separ already trusts for token issuance);
//! * [`protocol`] — the party state machines: input sharing, secure sum,
//!   Beaver multiplication, and the **blinded-sign comparison** that
//!   decides `Σ inputs + new ≤ bound` while revealing only the sign of a
//!   randomly scaled difference;
//! * [`federated`] — the PReVer-facing wrapper: one call verifies a
//!   distributed upper/lower-bound regulation across `n` data managers
//!   and reports exactly what leaked ([`LeakageRecord`]).
//!
//! Threat model: honest-but-curious parties, no collusion with the
//! dealer (the model §3.3 of the paper names for exactly this
//! instantiation). What an adversary sees is quantified per protocol
//! run rather than hand-waved — the paper's call for "a better
//! understanding of information leakage" made executable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod beaver;
pub mod federated;
pub mod protocol;

pub use federated::{FederatedBoundCheck, LeakageRecord};
pub use protocol::{MpcError, MpcStats};

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, MpcError>;
