//! Shard-per-thread parallel simulation.
//!
//! The single-threaded [`Simulation`](crate::Simulation) caps every
//! experiment at one core: a 64-shard SharPer-style deployment is 256
//! PBFT replicas time-sliced through one event loop. This module runs
//! each *shard* (a group of nodes that talk to each other constantly)
//! as a self-contained engine on its own OS thread, and lets shards
//! talk to each other only through explicit cross-shard channels merged
//! deterministically by a coordinator.
//!
//! ## Determinism under parallelism
//!
//! Conservative parallel discrete-event simulation with an epoch
//! barrier:
//!
//! * Virtual time is divided into fixed epochs of `epoch` µs. Every
//!   engine runs `[k·E, (k+1)·E)` to completion before any engine
//!   starts epoch `k + 1`.
//! * Cross-shard messages sent during epoch `k` are collected by the
//!   coordinator *after* the barrier, routed in a fixed schedule
//!   (ascending source shard, then send order within the shard — a
//!   lamport-ordered per-edge FIFO), and delivered no earlier than
//!   epoch `k + 1`. Cross-shard latency/jitter is drawn from a
//!   per-edge RNG keyed by `(seed, src, dst)`, so a draw never depends
//!   on which thread finished first.
//! * Each engine owns a private RNG keyed by `(seed, shard)` for
//!   intra-shard jitter.
//!
//! Consequently the interleaving observed by every actor is a pure
//! function of `(actors, config, fault plan, injections, seed)` — the
//! OS scheduler cannot perturb it. The price is lookahead: cross-shard
//! base latency must be ≥ the epoch length, which models shards as
//! LAN clusters joined by a slower inter-shard backbone (the SharPer
//! deployment shape).
//!
//! ## Fault model
//!
//! Faults are scheduled on a [`ParallelFaultPlan`]: shard-granular
//! partitions (a partitioned shard keeps ordering locally but its
//! cross-shard channels drop), per-node crash / recover /
//! restart-with-loss. Cross-shard messages are not pinned to a
//! receiver incarnation: like client retries, they are delivered to
//! whatever process is alive on arrival (they model durable channel
//! buffers between clusters).

use crate::{Actor, Ctx, NetConfig, NodeId, SimStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Shard identifier (dense, 0-based) — the unit of parallelism.
pub type ShardId = usize;

/// Sentinel incarnation for cross-shard and injected deliveries.
const EXTERNAL_INC: u64 = u64::MAX;

/// SplitMix64-style mixer for deriving independent RNG streams.
fn mix(a: u64, b: u64) -> u64 {
    let mut x = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Configuration of a [`ParallelSim`].
#[derive(Clone, Debug)]
pub struct ParallelConfig {
    /// Intra-shard network behavior (latency, jitter, drops, service
    /// time), applied independently inside each shard engine.
    pub net: NetConfig,
    /// Minimum one-way cross-shard latency in µs. Must be ≥ `epoch`
    /// (the conservative lookahead bound); the constructor asserts it.
    pub cross_base: u64,
    /// Maximum extra cross-shard jitter in µs (uniform, per-edge RNG).
    pub cross_jitter: u64,
    /// Epoch (barrier) length in µs.
    pub epoch: u64,
    /// RNG seed; all per-shard and per-edge streams derive from it.
    pub seed: u64,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        // Intra-shard stays the LAN profile of `NetConfig::default`;
        // the inter-shard backbone is 1 ms one-way — a metro-area link
        // between shard clusters — which also sets the lookahead.
        ParallelConfig {
            net: NetConfig::default(),
            cross_base: 1_000,
            cross_jitter: 200,
            epoch: 1_000,
            seed: 1,
        }
    }
}

/// A scheduled fault event on the parallel runtime.
#[derive(Clone, Debug)]
pub enum ParallelFaultEvent {
    /// Install a shard-granular partition: `groups[s]` is shard `s`'s
    /// side; cross-shard messages between different sides are dropped
    /// at the coordinator. Intra-shard traffic is unaffected.
    Partition(Vec<usize>),
    /// Remove any partition.
    Heal,
    /// Crash a node (process dies; queued local deliveries and timers
    /// die with it).
    Crash(NodeId),
    /// Recover a crashed node with state intact (`on_start` re-runs).
    Recover(NodeId),
    /// Restart a node as a fresh actor built by the node factory,
    /// losing all in-memory state.
    RestartWithLoss(NodeId),
}

/// A time-ordered plan of [`ParallelFaultEvent`]s.
#[derive(Clone, Debug, Default)]
pub struct ParallelFaultPlan {
    events: Vec<(u64, ParallelFaultEvent)>,
}

impl ParallelFaultPlan {
    /// Empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a shard-granular partition at `at`.
    pub fn partition_at(mut self, at: u64, groups: Vec<usize>) -> Self {
        self.events.push((at, ParallelFaultEvent::Partition(groups)));
        self
    }

    /// Schedules a heal at `at`.
    pub fn heal_at(mut self, at: u64) -> Self {
        self.events.push((at, ParallelFaultEvent::Heal));
        self
    }

    /// Schedules a crash of `node` at `at`.
    pub fn crash_at(mut self, at: u64, node: NodeId) -> Self {
        self.events.push((at, ParallelFaultEvent::Crash(node)));
        self
    }

    /// Schedules a state-intact recovery of `node` at `at`.
    pub fn recover_at(mut self, at: u64, node: NodeId) -> Self {
        self.events.push((at, ParallelFaultEvent::Recover(node)));
        self
    }

    /// Schedules a restart-with-state-loss of `node` at `at` (requires
    /// [`ParallelSim::set_node_factory`]).
    pub fn restart_with_loss_at(mut self, at: u64, node: NodeId) -> Self {
        self.events.push((at, ParallelFaultEvent::RestartWithLoss(node)));
        self
    }

    fn sorted_events(&self) -> Vec<(u64, ParallelFaultEvent)> {
        let mut ev = self.events.clone();
        ev.sort_by_key(|(t, _)| *t);
        ev
    }
}

/// A cross-shard message en route: scheduled by the coordinator,
/// delivered by the destination engine.
struct CrossArrival<M> {
    at: u64,
    from: NodeId,
    to: NodeId,
    msg: M,
}

/// A fault forwarded into an engine, applied at its virtual time.
enum NodeFault<A> {
    Crash(NodeId),
    Recover(NodeId),
    Restart(NodeId, A),
}

/// Coordinator → worker command.
enum Cmd<A: Actor> {
    Epoch {
        until: u64,
        inbound: Vec<CrossArrival<A::Msg>>,
        faults: Vec<(u64, NodeFault<A>)>,
    },
    Finish,
}

/// Worker → coordinator reply.
enum Reply<A: Actor, P> {
    Epoch(EpochOut<A::Msg, P>),
    Done(Vec<(NodeId, A)>),
}

/// One epoch's outputs from a shard engine.
struct EpochOut<M, P> {
    /// Cross-shard sends in deterministic local order: `(sent_at,
    /// from, to, msg)`.
    outbox: Vec<(u64, NodeId, NodeId, M)>,
    /// Probe values per local node (global ids).
    probes: Vec<(NodeId, P)>,
    /// Cumulative engine statistics.
    stats: SimStats,
}

enum LocalEventKind<M> {
    Deliver { from: NodeId, msg: M },
    Timer { timer: u64 },
}

struct LocalEvent<M> {
    at: u64,
    seq: u64,
    to: NodeId,
    inc: u64,
    kind: LocalEventKind<M>,
}

impl<M> PartialEq for LocalEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for LocalEvent<M> {}
impl<M> PartialOrd for LocalEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for LocalEvent<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// One outbound cross-shard send: `(sent_at, from, to, msg)`.
type CrossSend<M> = (u64, NodeId, NodeId, M);

/// Sends and timers produced by one actor-handler invocation.
type HandlerOut<M> = (Vec<(NodeId, M)>, Vec<(u64, u64)>);

/// A pending cross arrival keyed for deterministic ordering:
/// `(deliver_at, coordinator_seq, arrival)`.
type PendingArrival<M> = (u64, u64, CrossArrival<M>);

/// The per-shard event loop: a restricted [`Simulation`](crate::Simulation)
/// over the shard's nodes whose foreign sends go to an outbox instead
/// of the local queue.
struct Engine<A: Actor, P> {
    node_ids: Vec<NodeId>,
    index: HashMap<NodeId, usize>,
    n_global: usize,
    nodes: Vec<A>,
    crashed: Vec<bool>,
    incarnation: Vec<u64>,
    busy_until: Vec<u64>,
    queue: BinaryHeap<Reverse<LocalEvent<A::Msg>>>,
    rng: StdRng,
    now: u64,
    seq: u64,
    stats: SimStats,
    cfg: NetConfig,
    outbox: Vec<CrossSend<A::Msg>>,
    probe: Arc<dyn Fn(&A) -> P + Send + Sync>,
    started: bool,
}

impl<A: Actor, P> Engine<A, P> {
    fn local(&self, id: NodeId) -> Option<usize> {
        self.index.get(&id).copied()
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for li in 0..self.nodes.len() {
            if !self.crashed[li] {
                self.start_node(li);
            }
        }
    }

    fn start_node(&mut self, li: usize) {
        let (sends, timers) = self.with_ctx(li, |node, ctx| node.on_start(ctx));
        self.schedule_outputs(li, sends, timers);
    }

    fn with_ctx(
        &mut self,
        li: usize,
        f: impl FnOnce(&mut A, &mut Ctx<A::Msg>),
    ) -> HandlerOut<A::Msg> {
        let mut sends = Vec::new();
        let mut timers = Vec::new();
        let mut ctx = Ctx {
            now: self.now,
            self_id: self.node_ids[li],
            n_nodes: self.n_global,
            sends: &mut sends,
            timers: &mut timers,
        };
        f(&mut self.nodes[li], &mut ctx);
        (sends, timers)
    }

    fn schedule_outputs(
        &mut self,
        from_li: usize,
        sends: Vec<(NodeId, A::Msg)>,
        timers: Vec<(u64, u64)>,
    ) {
        let from = self.node_ids[from_li];
        for (to, msg) in sends {
            self.stats.messages_sent += 1;
            if to >= self.n_global {
                self.stats.messages_dropped += 1;
                continue;
            }
            if to == from {
                // Self-sends are reliable and fast (local queue).
                let at = self.now + 1;
                let seq = self.next_seq();
                let inc = self.incarnation[from_li];
                self.queue.push(Reverse(LocalEvent {
                    at,
                    seq,
                    to,
                    inc,
                    kind: LocalEventKind::Deliver { from, msg },
                }));
                continue;
            }
            let Some(to_li) = self.local(to) else {
                // Foreign node: hand to the coordinator after the
                // barrier. Send order is the deterministic per-edge
                // lamport order.
                self.outbox.push((self.now, from, to, msg));
                continue;
            };
            if self.cfg.drop_rate > 0.0 && self.rng.gen::<f64>() < self.cfg.drop_rate {
                self.stats.messages_dropped += 1;
                continue;
            }
            let mut at = self.now
                + self.cfg.base_latency
                + if self.cfg.jitter > 0 { self.rng.gen_range(0..=self.cfg.jitter) } else { 0 };
            if self.cfg.processing > 0 {
                at = at.max(self.busy_until[to_li]);
                self.busy_until[to_li] = at + self.cfg.processing;
            }
            let seq = self.next_seq();
            let inc = self.incarnation[to_li];
            self.queue.push(Reverse(LocalEvent {
                at,
                seq,
                to,
                inc,
                kind: LocalEventKind::Deliver { from, msg },
            }));
        }
        for (delay, timer) in timers {
            let at = self.now + delay.max(1);
            let seq = self.next_seq();
            let inc = self.incarnation[from_li];
            self.queue.push(Reverse(LocalEvent {
                at,
                seq,
                to: from,
                inc,
                kind: LocalEventKind::Timer { timer },
            }));
        }
    }

    fn dispatch(&mut self, ev: LocalEvent<A::Msg>) {
        let li = self.local(ev.to).expect("local event for local node");
        if self.crashed[li] {
            self.stats.messages_dropped += 1;
            return;
        }
        if ev.inc != EXTERNAL_INC && ev.inc != self.incarnation[li] {
            self.stats.messages_dropped += 1;
            return;
        }
        match ev.kind {
            LocalEventKind::Deliver { from, msg } => {
                self.stats.messages_delivered += 1;
                let (sends, timers) =
                    self.with_ctx(li, |node, ctx| node.on_message(from, msg, ctx));
                self.schedule_outputs(li, sends, timers);
            }
            LocalEventKind::Timer { timer } => {
                self.stats.timers_fired += 1;
                let (sends, timers) = self.with_ctx(li, |node, ctx| node.on_timer(timer, ctx));
                self.schedule_outputs(li, sends, timers);
            }
        }
    }

    fn apply_fault(&mut self, fault: NodeFault<A>) {
        match fault {
            NodeFault::Crash(n) => {
                let li = self.local(n).expect("fault for local node");
                if !self.crashed[li] {
                    self.crashed[li] = true;
                    self.incarnation[li] = self.incarnation[li].wrapping_add(1);
                    self.stats.crashes += 1;
                }
            }
            NodeFault::Recover(n) => {
                let li = self.local(n).expect("fault for local node");
                if self.crashed[li] {
                    self.crashed[li] = false;
                    self.busy_until[li] = self.now;
                    self.stats.recoveries += 1;
                    if self.started {
                        self.start_node(li);
                    }
                }
            }
            NodeFault::Restart(n, actor) => {
                let li = self.local(n).expect("fault for local node");
                self.nodes[li] = actor;
                self.crashed[li] = false;
                self.incarnation[li] = self.incarnation[li].wrapping_add(1);
                self.busy_until[li] = self.now;
                self.stats.restarts_with_loss += 1;
                if self.started {
                    self.start_node(li);
                }
            }
        }
    }

    /// Runs the engine through `[now, until)`: enqueues the inbound
    /// cross-shard arrivals, interleaves scheduled faults with local
    /// events in time order, and processes every event with `at <
    /// until`. Returns the epoch outputs.
    fn run_epoch(
        &mut self,
        until: u64,
        inbound: Vec<CrossArrival<A::Msg>>,
        faults: Vec<(u64, NodeFault<A>)>,
    ) -> EpochOut<A::Msg, P> {
        self.ensure_started();
        for arr in inbound {
            // Cross-shard deliveries keep the coordinator's order via
            // fresh local seqs; they are not pinned to an incarnation.
            let mut at = arr.at;
            if let Some(to_li) = self.local(arr.to) {
                if self.cfg.processing > 0 && !self.crashed[to_li] {
                    at = at.max(self.busy_until[to_li]);
                    self.busy_until[to_li] = at + self.cfg.processing;
                }
            }
            let seq = self.next_seq();
            self.queue.push(Reverse(LocalEvent {
                at,
                seq,
                to: arr.to,
                inc: EXTERNAL_INC,
                kind: LocalEventKind::Deliver { from: arr.from, msg: arr.msg },
            }));
        }
        let mut faults: VecDeque<(u64, NodeFault<A>)> = faults.into();
        loop {
            let next_fault = faults.front().map(|(t, _)| *t);
            let next_event = self.queue.peek().map(|Reverse(e)| e.at);
            // Faults win ties, as in the single-threaded simulator.
            match (next_fault, next_event) {
                (Some(tf), te) if tf < until && te.is_none_or(|t| tf <= t) => {
                    let (tf, fault) = faults.pop_front().expect("peeked");
                    self.now = self.now.max(tf);
                    self.apply_fault(fault);
                }
                (_, Some(te)) if te < until => {
                    let Reverse(ev) = self.queue.pop().expect("peeked");
                    self.now = ev.at;
                    self.dispatch(ev);
                }
                _ => break,
            }
        }
        // Any fault scheduled in this epoch but after the last event
        // still applies before the barrier.
        while let Some((tf, fault)) = faults.pop_front() {
            self.now = self.now.max(tf);
            self.apply_fault(fault);
        }
        self.now = until;
        let probe = Arc::clone(&self.probe);
        let probes = self
            .nodes
            .iter()
            .enumerate()
            .map(|(li, node)| (self.node_ids[li], probe(node)))
            .collect();
        EpochOut { outbox: std::mem::take(&mut self.outbox), probes, stats: self.stats }
    }
}

struct Worker<A: Actor, P> {
    tx: Sender<Cmd<A>>,
    rx: Receiver<Reply<A, P>>,
    join: JoinHandle<()>,
}

/// Builds a fresh actor for a node restarted with state loss.
type NodeFactory<A> = Box<dyn FnMut(NodeId) -> A>;

/// The shard-per-thread parallel simulator.
///
/// `P` is the *probe* type: a cheap, `Send` summary of one actor's
/// state (e.g. a completion count) computed by every engine at each
/// epoch barrier. Run-loop predicates observe probes rather than the
/// actors themselves, which live on their shard's thread; the full
/// actors come back via [`ParallelSim::into_nodes`].
pub struct ParallelSim<A: Actor, P> {
    workers: Vec<Worker<A, P>>,
    /// shard id per node (dense).
    shard_of: Vec<ShardId>,
    n_shards: usize,
    cfg: ParallelConfig,
    now: u64,
    /// Coordinator event sequencer (cross arrivals + injections).
    seq: u64,
    /// Undelivered cross-shard arrivals per destination shard.
    pending: Vec<Vec<PendingArrival<A::Msg>>>,
    /// External injections not yet released: `(at, seq, from, to, msg)`.
    injections: Vec<(u64, u64, NodeId, NodeId, A::Msg)>,
    /// Scheduled fault events not yet applied, sorted by time.
    pending_faults: VecDeque<(u64, ParallelFaultEvent)>,
    /// Active shard-granular partition at the head of the timeline,
    /// plus the in-epoch change log used to route by send time.
    partition_timeline: Vec<(u64, Option<Vec<usize>>)>,
    factory: Option<NodeFactory<A>>,
    /// Per-edge RNGs for cross-shard latency draws.
    edge_rng: HashMap<(ShardId, ShardId), StdRng>,
    /// Coordinator-level stats (cross-shard partition drops).
    local_stats: SimStats,
    /// Latest cumulative stats per shard.
    shard_stats: Vec<SimStats>,
    /// Latest probe value per node.
    probes: Vec<P>,
}

impl<A, P> ParallelSim<A, P>
where
    A: Actor + Send + 'static,
    A::Msg: Send + 'static,
    P: Send + Default + Clone + 'static,
{
    /// Creates the parallel simulation: `shard_of[i]` assigns node `i`
    /// to a shard (shard ids must be dense `0..n_shards`), `probe`
    /// summarizes an actor for run-loop predicates. Spawns one worker
    /// thread per shard.
    pub fn new(
        nodes: Vec<A>,
        shard_of: Vec<ShardId>,
        cfg: ParallelConfig,
        probe: impl Fn(&A) -> P + Send + Sync + 'static,
    ) -> Self {
        assert_eq!(nodes.len(), shard_of.len());
        assert!(cfg.epoch > 0, "epoch must be positive");
        assert!(
            cfg.cross_base >= cfg.epoch,
            "cross-shard base latency ({}) must cover the epoch lookahead ({})",
            cfg.cross_base,
            cfg.epoch
        );
        let n_shards = shard_of.iter().copied().max().map_or(0, |m| m + 1);
        let n_global = nodes.len();
        let probe: Arc<dyn Fn(&A) -> P + Send + Sync> = Arc::new(probe);
        let mut per_shard: Vec<Vec<(NodeId, A)>> = (0..n_shards).map(|_| Vec::new()).collect();
        for (id, (node, &s)) in nodes.into_iter().zip(shard_of.iter()).enumerate() {
            per_shard[s].push((id, node));
        }
        let workers = per_shard
            .into_iter()
            .enumerate()
            .map(|(shard, members)| {
                assert!(!members.is_empty(), "shard {shard} has no nodes");
                let node_ids: Vec<NodeId> = members.iter().map(|(id, _)| *id).collect();
                let index = node_ids.iter().enumerate().map(|(li, &id)| (id, li)).collect();
                let n = node_ids.len();
                let mut engine = Engine {
                    node_ids,
                    index,
                    n_global,
                    nodes: members.into_iter().map(|(_, a)| a).collect(),
                    crashed: vec![false; n],
                    incarnation: vec![0; n],
                    busy_until: vec![0; n],
                    queue: BinaryHeap::new(),
                    rng: StdRng::seed_from_u64(mix(cfg.seed, mix(0x5aad, shard as u64))),
                    now: 0,
                    seq: 0,
                    stats: SimStats::default(),
                    cfg: cfg.net.clone(),
                    outbox: Vec::new(),
                    probe: Arc::clone(&probe),
                    started: false,
                };
                let (tx, cmd_rx) = channel::<Cmd<A>>();
                let (reply_tx, rx) = channel::<Reply<A, P>>();
                // Spans opened on the worker would otherwise lose their
                // parent edge to this (spawning) thread's span stack —
                // carry it across explicitly (prever-obs satellite fix).
                let span_parent = prever_obs::current_span();
                let join = std::thread::spawn(move || {
                    prever_obs::adopt_parent(span_parent);
                    while let Ok(cmd) = cmd_rx.recv() {
                        match cmd {
                            Cmd::Epoch { until, inbound, faults } => {
                                let out = engine.run_epoch(until, inbound, faults);
                                if reply_tx.send(Reply::Epoch(out)).is_err() {
                                    return;
                                }
                            }
                            Cmd::Finish => {
                                let nodes = engine
                                    .node_ids
                                    .iter()
                                    .copied()
                                    .zip(std::mem::take(&mut engine.nodes))
                                    .collect();
                                let _ = reply_tx.send(Reply::Done(nodes));
                                return;
                            }
                        }
                    }
                });
                Worker { tx, rx, join }
            })
            .collect();
        ParallelSim {
            workers,
            shard_of,
            n_shards,
            cfg,
            now: 0,
            seq: 0,
            pending: (0..n_shards).map(|_| Vec::new()).collect(),
            injections: Vec::new(),
            pending_faults: VecDeque::new(),
            partition_timeline: vec![(0, None)],
            factory: None,
            edge_rng: HashMap::new(),
            local_stats: SimStats::default(),
            shard_stats: vec![SimStats::default(); n_shards],
            probes: vec![P::default(); n_global],
        }
    }

    /// Current virtual time (advances in whole epochs).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of worker threads (= shards).
    pub fn n_threads(&self) -> usize {
        self.n_shards
    }

    /// Aggregate statistics: sum of the shard engines plus the
    /// coordinator's cross-shard drops.
    pub fn stats(&self) -> SimStats {
        let mut total = self.local_stats;
        for s in &self.shard_stats {
            total.messages_sent += s.messages_sent;
            total.messages_delivered += s.messages_delivered;
            total.messages_dropped += s.messages_dropped;
            total.timers_fired += s.timers_fired;
            total.messages_duplicated += s.messages_duplicated;
            total.messages_corrupted += s.messages_corrupted;
            total.crashes += s.crashes;
            total.recoveries += s.recoveries;
            total.restarts_with_loss += s.restarts_with_loss;
            total.disk_faults += s.disk_faults;
        }
        total
    }

    /// Latest probe value per node (updated at every epoch barrier).
    pub fn probes(&self) -> &[P] {
        &self.probes
    }

    /// Installs the fault plan (replacing any previous one).
    pub fn set_fault_plan(&mut self, plan: ParallelFaultPlan) {
        self.pending_faults = plan.sorted_events().into();
    }

    /// Registers the factory used for
    /// [`ParallelFaultEvent::RestartWithLoss`] events.
    pub fn set_node_factory(&mut self, factory: impl FnMut(NodeId) -> A + 'static) {
        self.factory = Some(Box::new(factory));
    }

    /// Injects an external (client) message to `to`, arriving at
    /// absolute time `at` (≥ now). Delivered to whatever process is
    /// alive at `at`.
    pub fn inject(&mut self, from: NodeId, to: NodeId, msg: A::Msg, at: u64) {
        assert!(at >= self.now, "cannot inject into the past");
        self.seq += 1;
        self.injections.push((at, self.seq, from, to, msg));
    }

    /// The partition state in effect at send time `at`.
    fn partition_at(&self, at: u64) -> Option<&Vec<usize>> {
        self.partition_timeline
            .iter()
            .rev()
            .find(|(t, _)| *t <= at)
            .and_then(|(_, p)| p.as_ref())
    }

    /// Runs one epoch across all shards.
    fn step_epoch(&mut self) {
        let until = self.now + self.cfg.epoch;
        // 1. Collect this epoch's faults: partitions change the
        //    coordinator's routing timeline; node faults are forwarded
        //    to the owning engine.
        let mut shard_faults: Vec<Vec<(u64, NodeFault<A>)>> =
            (0..self.n_shards).map(|_| Vec::new()).collect();
        while self.pending_faults.front().is_some_and(|(t, _)| *t < until) {
            let (t, ev) = self.pending_faults.pop_front().expect("peeked");
            match ev {
                ParallelFaultEvent::Partition(groups) => {
                    assert_eq!(groups.len(), self.n_shards, "partition groups are per shard");
                    self.partition_timeline.push((t, Some(groups)));
                }
                ParallelFaultEvent::Heal => self.partition_timeline.push((t, None)),
                ParallelFaultEvent::Crash(n) => {
                    shard_faults[self.shard_of[n]].push((t, NodeFault::Crash(n)));
                }
                ParallelFaultEvent::Recover(n) => {
                    shard_faults[self.shard_of[n]].push((t, NodeFault::Recover(n)));
                }
                ParallelFaultEvent::RestartWithLoss(n) => {
                    let mut factory = self.factory.take().expect(
                        "ParallelFaultEvent::RestartWithLoss requires set_node_factory",
                    );
                    let fresh = factory(n);
                    self.factory = Some(factory);
                    shard_faults[self.shard_of[n]].push((t, NodeFault::Restart(n, fresh)));
                }
            }
        }
        // 2. Release injections and pending cross arrivals due this
        //    epoch, merged per destination shard in (at, seq) order
        //    (injections carry a coordinator seq from inject time, so
        //    the merge is a stable total order).
        let (due, later): (Vec<_>, Vec<_>) = std::mem::take(&mut self.injections)
            .into_iter()
            .partition(|(at, ..)| *at < until);
        self.injections = later;
        for (at, seq, from, to, msg) in due {
            let shard = self.shard_of[to];
            self.pending[shard].push((at, seq, CrossArrival { at, from, to, msg }));
        }
        let mut inbound: Vec<Vec<CrossArrival<A::Msg>>> =
            (0..self.n_shards).map(|_| Vec::new()).collect();
        for (shard, bucket) in inbound.iter_mut().enumerate() {
            let (mut ready, later): (Vec<_>, Vec<_>) = std::mem::take(&mut self.pending[shard])
                .into_iter()
                .partition(|(at, ..)| *at < until);
            self.pending[shard] = later;
            ready.sort_by_key(|(at, seq, _)| (*at, *seq));
            *bucket = ready.into_iter().map(|(_, _, a)| a).collect();
        }
        // 3. Barrier: run every shard's epoch in parallel.
        for (shard, worker) in self.workers.iter().enumerate() {
            worker
                .tx
                .send(Cmd::Epoch {
                    until,
                    inbound: std::mem::take(&mut inbound[shard]),
                    faults: std::mem::take(&mut shard_faults[shard]),
                })
                .expect("worker alive");
        }
        // 4. Collect results in fixed shard order and route outboxes
        //    deterministically.
        let mut outboxes: Vec<Vec<CrossSend<A::Msg>>> =
            Vec::with_capacity(self.n_shards);
        for (shard, worker) in self.workers.iter().enumerate() {
            match worker.rx.recv().expect("worker alive") {
                Reply::Epoch(out) => {
                    self.shard_stats[shard] = out.stats;
                    for (id, p) in out.probes {
                        self.probes[id] = p;
                    }
                    outboxes.push(out.outbox);
                }
                Reply::Done(_) => unreachable!("Finish not requested"),
            }
        }
        for (src_shard, outbox) in outboxes.into_iter().enumerate() {
            for (sent_at, from, to, msg) in outbox {
                let dst_shard = self.shard_of[to];
                if let Some(groups) = self.partition_at(sent_at) {
                    if groups[src_shard] != groups[dst_shard] {
                        self.local_stats.messages_dropped += 1;
                        continue;
                    }
                }
                let rng = self
                    .edge_rng
                    .entry((src_shard, dst_shard))
                    .or_insert_with(|| {
                        let edge = ((src_shard as u64) << 32) | dst_shard as u64;
                        StdRng::seed_from_u64(mix(self.cfg.seed, mix(0xed6e, edge)))
                    });
                let jitter = if self.cfg.cross_jitter > 0 {
                    rng.gen_range(0..=self.cfg.cross_jitter)
                } else {
                    0
                };
                // Conservative bound: never before the next epoch.
                let at = (sent_at + self.cfg.cross_base + jitter).max(until);
                self.seq += 1;
                self.pending[dst_shard].push((at, self.seq, CrossArrival { at, from, to, msg }));
            }
        }
        self.now = until;
    }

    /// Runs epochs until virtual time reaches `deadline`.
    pub fn run_until(&mut self, deadline: u64) {
        while self.now < deadline {
            self.step_epoch();
        }
    }

    /// Runs epochs until `pred` over the per-node probes holds
    /// (checked at each barrier) or `deadline` virtual µs pass.
    /// Returns true iff the predicate held.
    pub fn run_until_probe(
        &mut self,
        deadline: u64,
        mut pred: impl FnMut(&[P]) -> bool,
    ) -> bool {
        if pred(&self.probes) {
            return true;
        }
        while self.now < deadline {
            self.step_epoch();
            if pred(&self.probes) {
                return true;
            }
        }
        false
    }

    /// Shuts the workers down and returns the actors in global node
    /// order (final-state assertions).
    pub fn into_nodes(self) -> Vec<A> {
        let n = self.shard_of.len();
        let mut slots: Vec<Option<A>> = (0..n).map(|_| None).collect();
        for worker in &self.workers {
            worker.tx.send(Cmd::Finish).expect("worker alive");
        }
        for worker in self.workers {
            match worker.rx.recv().expect("worker alive") {
                Reply::Done(nodes) => {
                    for (id, node) in nodes {
                        slots[id] = Some(node);
                    }
                }
                Reply::Epoch(_) => unreachable!("no epoch in flight"),
            }
            worker.join.join().expect("worker thread panicked");
        }
        slots.into_iter().map(|s| s.expect("every node returned")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Node 0 (shard 0) pings node 1 (shard 1); node 1 echoes.
    #[derive(Clone, Default)]
    struct Pinger {
        pings: u32,
        pongs: u32,
        last_at: u64,
    }

    #[derive(Clone)]
    enum PP {
        Ping,
        Pong,
    }

    impl Actor for Pinger {
        type Msg = PP;
        fn on_start(&mut self, ctx: &mut Ctx<PP>) {
            if ctx.id() == 0 {
                for _ in 0..10 {
                    ctx.send(1, PP::Ping);
                }
            }
        }
        fn on_message(&mut self, from: NodeId, msg: PP, ctx: &mut Ctx<PP>) {
            self.last_at = ctx.now();
            match msg {
                PP::Ping => {
                    self.pings += 1;
                    ctx.send(from, PP::Pong);
                }
                PP::Pong => self.pongs += 1,
            }
        }
    }

    fn cross_sim(seed: u64) -> ParallelSim<Pinger, (u32, u32, u64)> {
        ParallelSim::new(
            vec![Pinger::default(), Pinger::default()],
            vec![0, 1],
            ParallelConfig { seed, ..Default::default() },
            |p| (p.pings, p.pongs, p.last_at),
        )
    }

    #[test]
    fn cross_shard_messages_deliver() {
        let mut sim = cross_sim(3);
        let ok = sim.run_until_probe(1_000_000, |p| p[0].1 >= 10 && p[1].0 >= 10);
        assert!(ok, "pings/pongs did not cross the shard boundary");
        let nodes = sim.into_nodes();
        assert_eq!(nodes[1].pings, 10);
        assert_eq!(nodes[0].pongs, 10);
    }

    #[test]
    fn parallel_runs_are_bit_identical() {
        let run = |seed: u64| {
            let mut sim = cross_sim(seed);
            sim.run_until(50_000);
            let stats = sim.stats();
            let nodes = sim.into_nodes();
            (stats, nodes[0].pongs, nodes[1].pings, nodes[0].last_at, nodes[1].last_at)
        };
        assert_eq!(run(7), run(7), "same seed must replay bit-identically");
        assert_ne!(run(7), run(8), "different seeds should differ (jitter)");
    }

    #[test]
    fn shard_partition_blocks_cross_traffic_by_send_time() {
        let mut sim = cross_sim(5);
        sim.set_fault_plan(ParallelFaultPlan::new().partition_at(0, vec![0, 1]));
        sim.run_until(100_000);
        assert_eq!(sim.probes()[1].0, 0, "partition must drop cross-shard pings");
        assert!(sim.stats().messages_dropped >= 10);
    }

    #[test]
    fn heal_then_inject_delivers() {
        let mut sim = cross_sim(6);
        sim.set_fault_plan(
            ParallelFaultPlan::new().partition_at(0, vec![0, 1]).heal_at(50_000),
        );
        sim.run_until(60_000);
        sim.inject(1, 1, PP::Ping, sim.now() + 10);
        let ok = sim.run_until_probe(1_000_000, |p| p[1].0 >= 1);
        assert!(ok, "post-heal injection must deliver");
    }

    #[test]
    fn crash_and_recover_follow_single_threaded_semantics() {
        let mut sim = cross_sim(9);
        sim.set_fault_plan(
            ParallelFaultPlan::new().crash_at(100, 1).recover_at(400_000, 1),
        );
        // Pings arrive ~1 ms; node 1 is down, so they drop.
        sim.run_until(500_000);
        assert_eq!(sim.probes()[1].0, 0);
        let crashes = sim.stats().crashes;
        assert_eq!(crashes, 1);
        // Recovered: a fresh injection lands.
        sim.inject(1, 1, PP::Ping, sim.now() + 10);
        let ok = sim.run_until_probe(2_000_000, |p| p[1].0 >= 1);
        assert!(ok);
    }

    #[test]
    fn restart_with_loss_uses_factory() {
        let mut sim = cross_sim(11);
        sim.set_node_factory(|_| Pinger::default());
        sim.set_fault_plan(ParallelFaultPlan::new().restart_with_loss_at(50_000, 0));
        sim.run_until(40_000);
        assert_eq!(sim.probes()[0].1, 10, "initial exchange completes");
        // The fresh node 0 re-runs on_start: 10 more pings on the wire.
        let ok = sim.run_until_probe(1_000_000, |p| p[1].0 >= 20);
        assert!(ok, "restarted node must re-send from on_start");
        assert_eq!(sim.stats().restarts_with_loss, 1);
    }
}
