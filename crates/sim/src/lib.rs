//! # prever-sim
//!
//! A deterministic discrete-event network simulator.
//!
//! PReVer's federated deployments run consensus (PBFT, Paxos, sharded
//! PBFT) among mutually distrustful data managers. The paper's §6 asks
//! for throughput/latency comparisons against these protocols; measuring
//! them reproducibly requires a network whose latencies, drops, and
//! partitions are simulated under a seeded PRNG rather than borrowed from
//! the host machine. Every consensus test and bench in the workspace runs
//! on this simulator, so results are bit-for-bit reproducible.
//!
//! The model: a fixed set of [`Actor`] nodes exchanging typed messages
//! through a virtual network with configurable latency, jitter, drop
//! rate, crashed nodes, and partitions. Time is virtual (microseconds);
//! an event loop pops the earliest event, dispatches it, and collects the
//! outputs. Determinism invariant: identical (actors, config, fault plan,
//! seed, injected events) ⇒ identical executions.
//!
//! ## Fault injection
//!
//! Beyond the uniform [`NetConfig`] faults, a seeded [`FaultPlan`] (see
//! [`fault`]) adds per-link asymmetric drop/delay/duplication/reordering/
//! corruption plus *scheduled* crash, recovery, restart-with-state-loss,
//! and partition events replayed at fixed virtual times.
//!
//! ## Crash semantics: `crash`/`recover` vs `restart_with_loss`
//!
//! A crash kills the node's *process*: everything already in flight
//! toward it — queued message deliveries **and pending timers** — dies
//! with the process and is counted in
//! [`SimStats::messages_dropped`]. Nothing queued before the crash is
//! delivered after it.
//!
//! - [`Simulation::crash`] + [`Simulation::recover`] model a fast reboot
//!   with *state intact* (actor memory survives, as if checkpointed to
//!   disk at every step). On recovery the actor's
//!   [`Actor::on_start`] runs again so it can re-arm its timers; messages
//!   sent to the node *during* the outage are delivered if their arrival
//!   time falls after the recovery.
//! - [`Simulation::restart_with_loss`] models a real crash: the node
//!   comes back as a **fresh actor** (supplied directly, or built by the
//!   factory registered with [`Simulation::set_node_factory`] when driven
//!   from a [`FaultPlan`]). All in-memory state is gone; recovering
//!   durable state is the *actor's* job (e.g. consensus state transfer).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod parallel;

pub use fault::{DiskFault, FaultEvent, FaultPlan, LinkFault};
pub use parallel::{ParallelConfig, ParallelFaultEvent, ParallelFaultPlan, ParallelSim};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet, VecDeque};

/// Identifies a node in the simulation (dense, 0-based).
pub type NodeId = usize;

/// Buffered outputs of one actor dispatch: `(to, msg)` sends and
/// `(delay, timer-id)` timer arms.
type DispatchOutputs<M> = (Vec<(NodeId, M)>, Vec<(u64, u64)>);

/// In-flight corruption hook: mutates a message using the supplied
/// deterministic random word.
type Corruptor<M> = Box<dyn FnMut(&mut M, u64)>;

/// Builds a fresh actor for a node restarted with state loss.
type NodeFactory<A> = Box<dyn FnMut(NodeId) -> A>;

/// Applies a [`DiskFault`] to a node's storage media (the harness owns
/// the media; the simulator only schedules the fault).
type DiskHandler = Box<dyn FnMut(NodeId, DiskFault)>;

/// Sentinel incarnation for externally injected events: they are
/// addressed to whatever process is alive at delivery time, not to a
/// specific incarnation.
const EXTERNAL_INC: u64 = u64::MAX;

/// A simulated node.
pub trait Actor {
    /// Message type exchanged between nodes.
    type Msg: Clone;

    /// Called once when the simulation starts, and again whenever the
    /// node is recovered or restarted (so it can re-arm timers).
    fn on_start(&mut self, _ctx: &mut Ctx<Self::Msg>) {}

    /// Called when a message from `from` is delivered.
    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut Ctx<Self::Msg>);

    /// Called when a timer set via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, _timer: u64, _ctx: &mut Ctx<Self::Msg>) {}
}

/// Per-dispatch context: lets an actor read the clock, send messages and
/// arm timers. Outputs are buffered and scheduled by the simulator after
/// the handler returns.
pub struct Ctx<'a, M> {
    now: u64,
    self_id: NodeId,
    n_nodes: usize,
    sends: &'a mut Vec<(NodeId, M)>,
    timers: &'a mut Vec<(u64, u64)>,
}

impl<'a, M> Ctx<'a, M> {
    /// Current virtual time (µs).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.self_id
    }

    /// Number of nodes in the simulation.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Sends `msg` to `to` (subject to network latency/drops).
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.sends.push((to, msg));
    }

    /// Sends `msg` to every node except self.
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        for to in 0..self.n_nodes {
            if to != self.self_id {
                self.sends.push((to, msg.clone()));
            }
        }
    }

    /// Sends `msg` to self through the network (useful for yielding).
    pub fn send_self(&mut self, msg: M) {
        self.sends.push((self.self_id, msg));
    }

    /// Arms a timer that fires after `delay` µs with identifier `timer`.
    pub fn set_timer(&mut self, delay: u64, timer: u64) {
        self.timers.push((delay, timer));
    }
}

/// Network behavior configuration.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Minimum one-way latency in µs.
    pub base_latency: u64,
    /// Maximum extra jitter in µs (uniform).
    pub jitter: u64,
    /// Probability a message is silently dropped (0.0–1.0).
    pub drop_rate: f64,
    /// Per-message processing (service) time at the receiving node, in
    /// µs. With 0 (the default) nodes have infinite parallelism — fine
    /// for protocol-logic tests; throughput experiments set this so
    /// load actually serializes on CPUs (each node is an M/D/1-style
    /// server and messages queue behind each other).
    pub processing: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        // 500 µs one-way ≈ 1 ms RTT: a LAN/metro-area cluster, the
        // deployment the paper's permissioned-blockchain systems target.
        NetConfig { base_latency: 500, jitter: 100, drop_rate: 0.0, processing: 0 }
    }
}

enum EventKind<M> {
    Deliver { from: NodeId, msg: M },
    Timer { timer: u64 },
}

struct Event<M> {
    at: u64,
    seq: u64,
    to: NodeId,
    /// Incarnation of the target node at schedule time. A crash bumps the
    /// node's incarnation, so deliveries and timers addressed to the dead
    /// process are dropped at dispatch even if the node has since
    /// recovered.
    inc: u64,
    kind: EventKind<M>,
}

// Order events by (time, seq): seq breaks ties deterministically.
impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Simulation statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Messages handed to the network.
    pub messages_sent: u64,
    /// Messages delivered to a live node.
    pub messages_delivered: u64,
    /// Messages dropped (random drops, link faults, partitions, crashed
    /// targets, and in-flight messages/timers that died with a crash).
    pub messages_dropped: u64,
    /// Timer firings delivered.
    pub timers_fired: u64,
    /// Extra copies scheduled by link duplication faults (not counted in
    /// `messages_sent`).
    pub messages_duplicated: u64,
    /// Messages corrupted in flight (delivered mutated if a corruption
    /// hook is installed, otherwise dropped as detected).
    pub messages_corrupted: u64,
    /// Node crashes (manual or fault-plan scheduled).
    pub crashes: u64,
    /// State-intact recoveries.
    pub recoveries: u64,
    /// Restarts that lost in-memory state.
    pub restarts_with_loss: u64,
    /// Disk faults applied via [`FaultEvent::Disk`].
    pub disk_faults: u64,
}

/// One recorded network/fault event (see [`Simulation::enable_trace`]).
#[derive(Clone, Debug)]
pub struct TraceEntry {
    /// Virtual time of the event (µs).
    pub at: u64,
    /// Event kind: `deliver`, `timer`, `dup`, `corrupt`, `drop.*`, or
    /// `fault`.
    pub kind: &'static str,
    /// Sending node (or the affected node for fault events).
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Human-readable detail (message label or fault description).
    pub detail: String,
}

struct Tracer<M> {
    label: Box<dyn Fn(&M) -> String>,
    entries: VecDeque<TraceEntry>,
    cap: usize,
}

impl<M> Tracer<M> {
    fn push(&mut self, entry: TraceEntry) {
        if self.entries.len() == self.cap {
            self.entries.pop_front();
        }
        self.entries.push_back(entry);
    }
}

/// The discrete-event simulator.
pub struct Simulation<A: Actor> {
    nodes: Vec<A>,
    crashed: Vec<bool>,
    /// Incarnation counter per node; bumped on crash/restart so events
    /// addressed to a dead process are recognizable at dispatch.
    incarnation: Vec<u64>,
    /// partition\[i\] = group id of node i; messages cross groups only if
    /// no partition is active.
    partition: Option<Vec<usize>>,
    queue: BinaryHeap<Reverse<Event<A::Msg>>>,
    cfg: NetConfig,
    plan: FaultPlan,
    /// Scheduled fault events not yet applied, sorted by time.
    pending_faults: VecDeque<(u64, FaultEvent)>,
    factory: Option<NodeFactory<A>>,
    corruptor: Option<Corruptor<A::Msg>>,
    disk_handler: Option<DiskHandler>,
    tracer: Option<Tracer<A::Msg>>,
    rng: StdRng,
    now: u64,
    seq: u64,
    started: bool,
    stats: SimStats,
    /// Earliest time each node can accept its next message (service
    /// queue model; only advances when `cfg.processing > 0`).
    busy_until: Vec<u64>,
}

impl<A: Actor> Simulation<A> {
    /// Creates a simulation over `nodes` with network `cfg` and RNG `seed`.
    pub fn new(nodes: Vec<A>, cfg: NetConfig, seed: u64) -> Self {
        let n = nodes.len();
        Simulation {
            nodes,
            crashed: vec![false; n],
            incarnation: vec![0; n],
            partition: None,
            queue: BinaryHeap::new(),
            cfg,
            plan: FaultPlan::default(),
            pending_faults: VecDeque::new(),
            factory: None,
            corruptor: None,
            disk_handler: None,
            tracer: None,
            rng: StdRng::seed_from_u64(seed),
            now: 0,
            seq: 0,
            started: false,
            stats: SimStats::default(),
            busy_until: vec![0; n],
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Statistics so far.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Immutable access to a node (assertions, result extraction).
    pub fn node(&self, id: NodeId) -> &A {
        &self.nodes[id]
    }

    /// Mutable access to a node (test setup).
    pub fn node_mut(&mut self, id: NodeId) -> &mut A {
        &mut self.nodes[id]
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Installs a fault plan: per-link faults apply to subsequent sends,
    /// scheduled events fire at their virtual times during the run loops.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.pending_faults = plan.sorted_events().into();
        self.plan = plan;
    }

    /// Registers the factory used to build fresh actors for
    /// [`FaultEvent::RestartWithLoss`] events scheduled in a fault plan.
    pub fn set_node_factory(&mut self, factory: impl FnMut(NodeId) -> A + 'static) {
        self.factory = Some(Box::new(factory));
    }

    /// Installs an in-flight corruption hook. When a link's `corrupt`
    /// fault fires, the hook mutates the message (second argument: a
    /// deterministic random word) and the mutated message is delivered.
    /// Without a hook, corruption is *detected* (MAC/CRC failure) and the
    /// message is dropped.
    pub fn set_corruptor(&mut self, hook: impl FnMut(&mut A::Msg, u64) + 'static) {
        self.corruptor = Some(Box::new(hook));
    }

    /// Registers the handler that applies [`FaultEvent::Disk`] events to
    /// a node's storage media. The harness owns the media (e.g.
    /// `SharedDisk` handles shared with the actors); the simulator only
    /// schedules when each fault lands.
    pub fn set_disk_handler(&mut self, handler: impl FnMut(NodeId, DiskFault) + 'static) {
        self.disk_handler = Some(Box::new(handler));
    }

    /// Enables the bounded event trace: up to `cap` most-recent entries
    /// are kept; `label` renders a message for human consumption.
    pub fn enable_trace(&mut self, label: impl Fn(&A::Msg) -> String + 'static, cap: usize) {
        self.tracer =
            Some(Tracer { label: Box::new(label), entries: VecDeque::with_capacity(cap), cap });
    }

    /// The last `n` trace entries, formatted one per line.
    pub fn trace_tail(&self, n: usize) -> Vec<String> {
        let Some(tr) = &self.tracer else { return Vec::new() };
        let skip = tr.entries.len().saturating_sub(n);
        tr.entries
            .iter()
            .skip(skip)
            .map(|e| {
                format!("[{:>10}µs] {:<14} {}→{} {}", e.at, e.kind, e.from, e.to, e.detail)
            })
            .collect()
    }

    /// Number of trace entries currently buffered.
    pub fn trace_len(&self) -> usize {
        self.tracer.as_ref().map_or(0, |t| t.entries.len())
    }

    /// Crashes a node: the process dies. Queued deliveries and pending
    /// timers addressed to it are dropped (counted in
    /// [`SimStats::messages_dropped`]) — they do not survive into a later
    /// recovery. Idempotent.
    pub fn crash(&mut self, node: NodeId) {
        if self.crashed[node] {
            return;
        }
        self.crashed[node] = true;
        self.incarnation[node] = self.incarnation[node].wrapping_add(1);
        self.stats.crashes += 1;
    }

    /// Recovers a crashed node with state intact (a fast restart with a
    /// fully persisted actor). [`Actor::on_start`] runs again so the node
    /// can re-arm its timers; messages sent during the outage are
    /// delivered if they arrive after this point. No-op if not crashed.
    pub fn recover(&mut self, node: NodeId) {
        if !self.crashed[node] {
            return;
        }
        self.crashed[node] = false;
        self.busy_until[node] = self.now;
        self.stats.recoveries += 1;
        if self.started {
            self.start_node(node);
        }
    }

    /// Restarts a node as `actor`, losing all previous in-memory state.
    /// Everything in flight toward the old process dies; the fresh actor's
    /// [`Actor::on_start`] runs immediately. Works on crashed and live
    /// nodes alike (a live node is implicitly crashed first).
    pub fn restart_with_loss(&mut self, node: NodeId, actor: A) {
        self.nodes[node] = actor;
        self.crashed[node] = false;
        self.incarnation[node] = self.incarnation[node].wrapping_add(1);
        self.busy_until[node] = self.now;
        self.stats.restarts_with_loss += 1;
        if self.started {
            self.start_node(node);
        }
    }

    /// True iff the node is crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed[node]
    }

    /// Installs a partition: `groups[i]` is node `i`'s side. Messages
    /// between different sides are dropped.
    pub fn set_partition(&mut self, groups: Vec<usize>) {
        assert_eq!(groups.len(), self.nodes.len());
        self.partition = Some(groups);
    }

    /// Removes any partition.
    pub fn heal_partition(&mut self) {
        self.partition = None;
    }

    /// Injects an external (client) message to `to`, arriving at absolute
    /// time `at` (must be ≥ current time). `from` is recorded as the
    /// sender id; use an out-of-range id for true externals if the actor
    /// protocol distinguishes clients. Unlike node-to-node sends, the
    /// injection is not pinned to the target's current incarnation: it is
    /// delivered to whatever process is alive at `at` (clients retry).
    pub fn inject(&mut self, from: NodeId, to: NodeId, msg: A::Msg, at: u64) {
        assert!(at >= self.now, "cannot inject into the past");
        let seq = self.next_seq();
        self.queue.push(Reverse(Event {
            at,
            seq,
            to,
            inc: EXTERNAL_INC,
            kind: EventKind::Deliver { from, msg },
        }));
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// True iff the earliest pending fault fires no later than the
    /// earliest queued event (faults win ties so e.g. a crash at `t`
    /// kills deliveries at `t`).
    fn fault_is_next(&self) -> bool {
        match (self.pending_faults.front().map(|(t, _)| *t), self.peek_time()) {
            (Some(tf), Some(te)) => tf <= te,
            (Some(_), None) => true,
            (None, _) => false,
        }
    }

    /// Runs until the queue is empty or `deadline` (virtual µs) passes.
    /// Returns the number of events processed.
    pub fn run_until(&mut self, deadline: u64) -> u64 {
        self.ensure_started();
        let mut processed = 0;
        loop {
            if self.fault_is_next() {
                if self.pending_faults.front().map(|(t, _)| *t).unwrap() > deadline {
                    break;
                }
                self.apply_next_fault();
                continue;
            }
            match self.peek_time() {
                Some(at) if at <= deadline => {
                    let Reverse(ev) = self.queue.pop().expect("peeked");
                    self.now = ev.at;
                    self.dispatch(ev);
                    processed += 1;
                }
                _ => break,
            }
        }
        self.now = self.now.max(deadline.min(self.peek_time().unwrap_or(deadline)));
        processed
    }

    /// Runs until no events remain. Panics after `max_events` as a
    /// runaway guard.
    pub fn run_to_idle(&mut self, max_events: u64) -> u64 {
        self.ensure_started();
        let mut processed = 0;
        loop {
            if self.fault_is_next() {
                self.apply_next_fault();
                continue;
            }
            match self.queue.pop() {
                Some(Reverse(ev)) => {
                    self.now = ev.at;
                    self.dispatch(ev);
                    processed += 1;
                    assert!(processed <= max_events, "simulation exceeded {max_events} events");
                }
                None => break,
            }
        }
        processed
    }

    /// Runs until `pred` over the node slice holds (checked after every
    /// event) or the queue empties / `max_events` passes. Returns true if
    /// the predicate held.
    pub fn run_until_pred(&mut self, max_events: u64, mut pred: impl FnMut(&[A]) -> bool) -> bool {
        self.ensure_started();
        if pred(&self.nodes) {
            return true;
        }
        let mut processed = 0;
        loop {
            if self.fault_is_next() {
                self.apply_next_fault();
                if pred(&self.nodes) {
                    return true;
                }
                continue;
            }
            match self.queue.pop() {
                Some(Reverse(ev)) => {
                    self.now = ev.at;
                    self.dispatch(ev);
                    processed += 1;
                    if pred(&self.nodes) {
                        return true;
                    }
                    if processed >= max_events {
                        return false;
                    }
                }
                None => return false,
            }
        }
    }

    fn peek_time(&self) -> Option<u64> {
        self.queue.peek().map(|Reverse(e)| e.at)
    }

    fn apply_next_fault(&mut self) {
        let (at, ev) = self.pending_faults.pop_front().expect("fault scheduled");
        self.now = self.now.max(at);
        match ev {
            FaultEvent::Crash(n) => {
                self.trace_note("fault", n, n, "crash");
                self.crash(n);
            }
            FaultEvent::Recover(n) => {
                self.trace_note("fault", n, n, "recover");
                self.recover(n);
            }
            FaultEvent::RestartWithLoss(n) => {
                self.trace_note("fault", n, n, "restart_with_loss");
                let mut factory = self.factory.take().expect(
                    "FaultEvent::RestartWithLoss requires Simulation::set_node_factory",
                );
                let fresh = factory(n);
                self.factory = Some(factory);
                self.restart_with_loss(n, fresh);
            }
            FaultEvent::Disk { node, fault } => {
                self.trace_note("fault", node, node, "disk_fault");
                let mut handler = self
                    .disk_handler
                    .take()
                    .expect("FaultEvent::Disk requires Simulation::set_disk_handler");
                handler(node, fault);
                self.disk_handler = Some(handler);
                self.stats.disk_faults += 1;
            }
            FaultEvent::Partition(groups) => {
                self.trace_note("fault", 0, 0, "partition");
                self.set_partition(groups);
            }
            FaultEvent::Heal => {
                self.trace_note("fault", 0, 0, "heal");
                self.heal_partition();
            }
            FaultEvent::ClearLinkFaults => {
                self.trace_note("fault", 0, 0, "clear_link_faults");
                self.plan.clear_links();
            }
        }
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for id in 0..self.nodes.len() {
            if self.crashed[id] {
                continue;
            }
            self.start_node(id);
        }
    }

    fn start_node(&mut self, id: NodeId) {
        let (sends, timers) = self.with_ctx(id, |node, ctx| node.on_start(ctx));
        self.schedule_outputs(id, sends, timers);
    }

    fn trace_note(&mut self, kind: &'static str, from: NodeId, to: NodeId, detail: &str) {
        if let Some(tr) = self.tracer.as_mut() {
            tr.push(TraceEntry { at: self.now, kind, from, to, detail: detail.to_string() });
        }
    }

    fn trace_msg(&mut self, kind: &'static str, from: NodeId, to: NodeId, msg: &A::Msg) {
        if let Some(tr) = self.tracer.as_mut() {
            let detail = (tr.label)(msg);
            tr.push(TraceEntry { at: self.now, kind, from, to, detail });
        }
    }

    fn dispatch(&mut self, ev: Event<A::Msg>) {
        let to = ev.to;
        if self.crashed[to] {
            self.stats.messages_dropped += 1;
            self.trace_note("drop.crashed", to, to, "");
            return;
        }
        if ev.inc != EXTERNAL_INC && ev.inc != self.incarnation[to] {
            // Addressed to a previous incarnation: it was in flight when
            // the node crashed and died with that process.
            self.stats.messages_dropped += 1;
            self.trace_note("drop.dead", to, to, "");
            return;
        }
        match ev.kind {
            EventKind::Deliver { from, msg } => {
                self.stats.messages_delivered += 1;
                self.trace_msg("deliver", from, to, &msg);
                let (sends, timers) =
                    self.with_ctx(to, |node, ctx| node.on_message(from, msg, ctx));
                self.schedule_outputs(to, sends, timers);
            }
            EventKind::Timer { timer } => {
                self.stats.timers_fired += 1;
                let (sends, timers) = self.with_ctx(to, |node, ctx| node.on_timer(timer, ctx));
                self.schedule_outputs(to, sends, timers);
            }
        }
    }

    fn with_ctx(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut A, &mut Ctx<A::Msg>),
    ) -> DispatchOutputs<A::Msg> {
        let mut sends = Vec::new();
        let mut timers = Vec::new();
        let n_nodes = self.nodes.len();
        let mut ctx = Ctx {
            now: self.now,
            self_id: id,
            n_nodes,
            sends: &mut sends,
            timers: &mut timers,
        };
        f(&mut self.nodes[id], &mut ctx);
        (sends, timers)
    }

    /// Draws a delivery time for one network hop to `to`, honoring base
    /// latency, jitter, link delay/reordering, and receiver service time.
    fn draw_delivery_time(&mut self, to: NodeId, link: &LinkFault) -> u64 {
        let mut latency = self.cfg.base_latency
            + if self.cfg.jitter > 0 { self.rng.gen_range(0..=self.cfg.jitter) } else { 0 };
        if link.delay_max > 0 {
            latency += self.rng.gen_range(0..=link.delay_max);
        }
        if link.reorder > 0.0 && self.rng.gen::<f64>() < link.reorder {
            latency += self.rng.gen_range(0..=link.reorder_window);
        }
        let mut at = self.now + latency;
        if self.cfg.processing > 0 {
            // Serialize on the receiver: queue behind its backlog.
            at = at.max(self.busy_until[to]);
            self.busy_until[to] = at + self.cfg.processing;
        }
        at
    }

    fn push_deliver(&mut self, from: NodeId, to: NodeId, msg: A::Msg, at: u64) {
        let seq = self.next_seq();
        let inc = self.incarnation[to];
        self.queue.push(Reverse(Event { at, seq, to, inc, kind: EventKind::Deliver { from, msg } }));
    }

    fn schedule_outputs(
        &mut self,
        from: NodeId,
        sends: Vec<(NodeId, A::Msg)>,
        timers: Vec<(u64, u64)>,
    ) {
        for (to, msg) in sends {
            self.stats.messages_sent += 1;
            if to >= self.nodes.len() {
                // Actor bug guard: a send to a nonexistent node is
                // counted as dropped rather than crashing the run.
                self.stats.messages_dropped += 1;
                continue;
            }
            // Partition check.
            if let Some(groups) = &self.partition {
                if groups[from] != groups[to] {
                    self.stats.messages_dropped += 1;
                    self.trace_msg("drop.partition", from, to, &msg);
                    continue;
                }
            }
            if to == from {
                // Self-sends are reliable and fast: a local queue, not
                // the network — no drops, faults, or service time.
                let at = self.now + 1;
                self.push_deliver(from, to, msg, at);
                continue;
            }
            // Random drop.
            if self.cfg.drop_rate > 0.0 && self.rng.gen::<f64>() < self.cfg.drop_rate {
                self.stats.messages_dropped += 1;
                self.trace_msg("drop.net", from, to, &msg);
                continue;
            }
            let link = self.plan.link_for(from, to);
            if link.drop > 0.0 && self.rng.gen::<f64>() < link.drop {
                self.stats.messages_dropped += 1;
                self.trace_msg("drop.link", from, to, &msg);
                continue;
            }
            let mut msg = msg;
            if link.corrupt > 0.0 && self.rng.gen::<f64>() < link.corrupt {
                self.stats.messages_corrupted += 1;
                let word: u64 = self.rng.gen();
                if self.corruptor.is_some() {
                    if let Some(hook) = self.corruptor.as_mut() {
                        hook(&mut msg, word);
                    }
                    self.trace_msg("corrupt", from, to, &msg);
                } else {
                    // No hook installed: the receiver detects the damage
                    // (MAC/CRC) and discards the message.
                    self.stats.messages_dropped += 1;
                    self.trace_msg("drop.corrupt", from, to, &msg);
                    continue;
                }
            }
            if link.duplicate > 0.0 && self.rng.gen::<f64>() < link.duplicate {
                self.stats.messages_duplicated += 1;
                self.trace_msg("dup", from, to, &msg);
                let at = self.draw_delivery_time(to, &link);
                self.push_deliver(from, to, msg.clone(), at);
            }
            let at = self.draw_delivery_time(to, &link);
            self.push_deliver(from, to, msg, at);
        }
        for (delay, timer) in timers {
            let at = self.now + delay.max(1);
            let seq = self.next_seq();
            let inc = self.incarnation[from];
            self.queue.push(Reverse(Event { at, seq, to: from, inc, kind: EventKind::Timer { timer } }));
        }
    }

    /// Consumes the simulation, returning the nodes (final-state checks).
    pub fn into_nodes(self) -> Vec<A> {
        self.nodes
    }
}

/// Utility: asserts a set of node ids forms a quorum of `n` (majority).
pub fn is_majority(count: usize, n: usize) -> bool {
    count * 2 > n
}

/// Utility: the PBFT quorum size `2f + 1` for `n = 3f + 1` nodes.
pub fn bft_quorum(n: usize) -> usize {
    let f = (n - 1) / 3;
    2 * f + 1
}

/// Utility: maximum tolerated Byzantine faults for `n` nodes.
pub fn bft_max_faults(n: usize) -> usize {
    (n - 1) / 3
}

/// A helper collecting distinct voters (ids) for quorum counting.
#[derive(Clone, Debug, Default)]
pub struct VoteSet {
    voters: HashSet<NodeId>,
}

impl VoteSet {
    /// Empty vote set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a vote; returns true if it was new.
    pub fn add(&mut self, voter: NodeId) -> bool {
        self.voters.insert(voter)
    }

    /// Number of distinct voters.
    pub fn len(&self) -> usize {
        self.voters.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.voters.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A ping-pong actor: node 0 sends `count` pings to 1, which echoes.
    #[derive(Clone)]
    struct PingPong {
        pings_to_send: u32,
        pings_received: u32,
        pongs_received: u32,
        last_delivery: u64,
    }

    #[derive(Clone)]
    enum PP {
        Ping,
        Pong,
    }

    impl Actor for PingPong {
        type Msg = PP;

        fn on_start(&mut self, ctx: &mut Ctx<PP>) {
            if ctx.id() == 0 {
                for _ in 0..self.pings_to_send {
                    ctx.send(1, PP::Ping);
                }
            }
        }

        fn on_message(&mut self, from: NodeId, msg: PP, ctx: &mut Ctx<PP>) {
            self.last_delivery = ctx.now();
            match msg {
                PP::Ping => {
                    self.pings_received += 1;
                    ctx.send(from, PP::Pong);
                }
                PP::Pong => self.pongs_received += 1,
            }
        }
    }

    fn pp(pings: u32) -> Vec<PingPong> {
        vec![
            PingPong { pings_to_send: pings, pings_received: 0, pongs_received: 0, last_delivery: 0 };
            2
        ]
    }

    fn fresh(pings: u32) -> PingPong {
        PingPong { pings_to_send: pings, pings_received: 0, pongs_received: 0, last_delivery: 0 }
    }

    #[test]
    fn ping_pong_delivers_everything() {
        let mut sim = Simulation::new(pp(10), NetConfig::default(), 42);
        sim.run_to_idle(10_000);
        assert_eq!(sim.node(1).pings_received, 10);
        assert_eq!(sim.node(0).pongs_received, 10);
        let s = sim.stats();
        assert_eq!(s.messages_sent, 20);
        assert_eq!(s.messages_delivered, 20);
        assert_eq!(s.messages_dropped, 0);
    }

    #[test]
    fn determinism_same_seed_same_execution() {
        let run = |seed: u64| {
            let mut sim = Simulation::new(pp(50), NetConfig { jitter: 400, ..Default::default() }, seed);
            sim.run_to_idle(100_000);
            (sim.now(), sim.node(0).last_delivery, sim.node(1).last_delivery)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should differ with jitter");
    }

    #[test]
    fn drops_lose_messages() {
        let cfg = NetConfig { drop_rate: 0.5, ..Default::default() };
        let mut sim = Simulation::new(pp(100), cfg, 3);
        sim.run_to_idle(100_000);
        let s = sim.stats();
        assert!(s.messages_dropped > 10, "expected many drops, got {}", s.messages_dropped);
        assert!(sim.node(1).pings_received < 100);
    }

    #[test]
    fn crashed_node_receives_nothing() {
        let mut sim = Simulation::new(pp(5), NetConfig::default(), 1);
        sim.crash(1);
        sim.run_to_idle(10_000);
        assert_eq!(sim.node(1).pings_received, 0);
        assert_eq!(sim.stats().messages_dropped, 5);
    }

    #[test]
    fn in_flight_messages_die_with_a_crash() {
        // Pings are in flight (arrive ≥ 500 µs) when node 1 crashes at
        // 100 µs; recovery at 200 µs must NOT resurrect them.
        let mut sim = Simulation::new(pp(5), NetConfig::default(), 1);
        sim.run_until(100);
        sim.crash(1);
        sim.run_until(200);
        sim.recover(1);
        sim.run_to_idle(10_000);
        assert_eq!(
            sim.node(1).pings_received,
            0,
            "messages queued before a crash must die with the process"
        );
        assert_eq!(sim.stats().messages_dropped, 5);
        assert_eq!(sim.stats().crashes, 1);
        assert_eq!(sim.stats().recoveries, 1);
    }

    #[test]
    fn restart_with_loss_resets_state_and_reruns_on_start() {
        let mut sim = Simulation::new(pp(3), NetConfig::default(), 2);
        sim.run_to_idle(10_000);
        assert_eq!(sim.node(0).pongs_received, 3);
        sim.restart_with_loss(0, fresh(2));
        sim.run_to_idle(10_000);
        // The fresh actor re-ran on_start and sent 2 new pings; its
        // pre-restart counters are gone.
        assert_eq!(sim.node(0).pongs_received, 2);
        assert_eq!(sim.node(1).pings_received, 5);
        assert_eq!(sim.stats().restarts_with_loss, 1);
    }

    #[test]
    fn fault_plan_schedules_crash_and_recovery() {
        // Crash node 1 at 50 µs (before the start-time pings arrive),
        // recover it at 5 ms; only a post-recovery injection lands.
        let plan = FaultPlan::new().crash_at(50, 1).recover_at(5_000, 1);
        let mut sim = Simulation::new(pp(5), NetConfig::default(), 9);
        sim.set_fault_plan(plan);
        sim.inject(0, 1, PP::Ping, 6_000);
        sim.run_to_idle(10_000);
        assert_eq!(sim.node(1).pings_received, 1);
        assert_eq!(sim.stats().crashes, 1);
        assert_eq!(sim.stats().recoveries, 1);
        assert_eq!(sim.stats().messages_dropped, 5);
    }

    #[test]
    fn fault_plan_restart_uses_node_factory() {
        let plan = FaultPlan::new().restart_with_loss_at(5_000, 0);
        let mut sim = Simulation::new(pp(3), NetConfig::default(), 4);
        sim.set_fault_plan(plan);
        sim.set_node_factory(|_| fresh(1));
        sim.run_to_idle(10_000);
        // Initial exchange (3 pings) completes well before 5 ms; the
        // restarted node 0 sends 1 more ping from its fresh on_start.
        assert_eq!(sim.node(1).pings_received, 4);
        assert_eq!(sim.node(0).pongs_received, 1);
        assert_eq!(sim.stats().restarts_with_loss, 1);
    }

    #[test]
    fn link_duplication_delivers_extra_copies() {
        let plan = FaultPlan::new()
            .link(0, 1, LinkFault { duplicate: 1.0, ..Default::default() });
        let mut sim = Simulation::new(pp(10), NetConfig::default(), 5);
        sim.set_fault_plan(plan);
        sim.run_to_idle(10_000);
        assert_eq!(sim.node(1).pings_received, 20, "every ping duplicated");
        assert_eq!(sim.stats().messages_duplicated, 10);
        // Duplicates are not counted as sends: each delivered ping
        // triggers one pong, so sent = 10 pings + 20 pongs.
        assert_eq!(sim.stats().messages_sent, 30);
    }

    #[test]
    fn corruption_without_hook_is_a_detected_drop() {
        let plan = FaultPlan::new()
            .link(0, 1, LinkFault { corrupt: 1.0, ..Default::default() });
        let mut sim = Simulation::new(pp(10), NetConfig::default(), 6);
        sim.set_fault_plan(plan);
        sim.run_to_idle(10_000);
        assert_eq!(sim.node(1).pings_received, 0);
        assert_eq!(sim.stats().messages_corrupted, 10);
        assert_eq!(sim.stats().messages_dropped, 10);
    }

    #[test]
    fn corruption_hook_mutates_in_flight_messages() {
        let plan = FaultPlan::new()
            .link(0, 1, LinkFault { corrupt: 1.0, ..Default::default() });
        let mut sim = Simulation::new(pp(10), NetConfig::default(), 7);
        sim.set_fault_plan(plan);
        sim.set_corruptor(|msg: &mut PP, _| *msg = PP::Pong);
        sim.run_to_idle(10_000);
        // Pings flipped to pongs in flight: delivered, but as the wrong
        // message.
        assert_eq!(sim.node(1).pings_received, 0);
        assert_eq!(sim.node(1).pongs_received, 10);
        assert_eq!(sim.stats().messages_corrupted, 10);
        assert_eq!(sim.stats().messages_dropped, 0);
    }

    #[test]
    fn link_reordering_breaks_fifo_delivery() {
        /// Node 0 sends sequence numbers; node 1 records arrival order.
        struct SeqActor {
            to_send: u32,
            received: Vec<u32>,
        }
        impl Actor for SeqActor {
            type Msg = u32;
            fn on_start(&mut self, ctx: &mut Ctx<u32>) {
                if ctx.id() == 0 {
                    for i in 0..self.to_send {
                        ctx.send(1, i);
                    }
                }
            }
            fn on_message(&mut self, _: NodeId, msg: u32, _: &mut Ctx<u32>) {
                self.received.push(msg);
            }
        }
        let nodes = || {
            vec![SeqActor { to_send: 20, received: vec![] }, SeqActor { to_send: 20, received: vec![] }]
        };
        let cfg = NetConfig { jitter: 0, ..Default::default() };
        // Clean network, no jitter: FIFO.
        let mut clean = Simulation::new(nodes(), cfg.clone(), 8);
        clean.run_to_idle(10_000);
        assert!(clean.node(1).received.windows(2).all(|w| w[0] < w[1]));
        // Reordering link: arrival order differs from send order.
        let plan = FaultPlan::new().link(
            0,
            1,
            LinkFault { reorder: 1.0, reorder_window: 10_000, ..Default::default() },
        );
        let mut sim = Simulation::new(nodes(), cfg, 8);
        sim.set_fault_plan(plan);
        sim.run_to_idle(10_000);
        assert_eq!(sim.node(1).received.len(), 20, "reordering never loses messages");
        assert!(
            !sim.node(1).received.windows(2).all(|w| w[0] < w[1]),
            "expected out-of-order delivery, got {:?}",
            sim.node(1).received
        );
    }

    #[test]
    fn fault_plan_determinism_same_seed_same_stats() {
        let run = |seed: u64| {
            let plan = FaultPlan::new()
                .default_link(LinkFault {
                    drop: 0.1,
                    duplicate: 0.2,
                    delay_max: 2_000,
                    reorder: 0.3,
                    reorder_window: 1_500,
                    corrupt: 0.05,
                })
                .crash_at(700, 1)
                .recover_at(1_500, 1)
                .clear_links_at(3_000);
            let mut sim = Simulation::new(pp(50), NetConfig::default(), seed);
            sim.set_fault_plan(plan);
            sim.inject(0, 1, PP::Ping, 4_000);
            sim.run_to_idle(100_000);
            (sim.stats(), sim.node(0).pongs_received, sim.node(1).pings_received)
        };
        assert_eq!(run(21), run(21), "identical (plan, seed) must replay identically");
        assert_ne!(run(21), run(22));
    }

    #[test]
    fn trace_records_deliveries_and_faults() {
        let plan = FaultPlan::new().crash_at(50, 1).recover_at(5_000, 1);
        let mut sim = Simulation::new(pp(2), NetConfig::default(), 1);
        sim.set_fault_plan(plan);
        sim.enable_trace(
            |m: &PP| match m {
                PP::Ping => "ping".into(),
                PP::Pong => "pong".into(),
            },
            64,
        );
        sim.inject(0, 1, PP::Ping, 6_000);
        sim.run_to_idle(10_000);
        let tail = sim.trace_tail(64);
        assert!(tail.iter().any(|l| l.contains("fault") && l.contains("crash")));
        assert!(tail.iter().any(|l| l.contains("deliver") && l.contains("ping")));
        assert!(tail.iter().any(|l| l.contains("drop.dead") || l.contains("drop.crashed")));
    }

    #[test]
    fn partition_blocks_cross_group_traffic() {
        let mut sim = Simulation::new(pp(5), NetConfig::default(), 1);
        sim.set_partition(vec![0, 1]);
        sim.run_to_idle(10_000);
        assert_eq!(sim.node(1).pings_received, 0);
        // Heal and re-inject.
        sim.heal_partition();
        sim.inject(0, 1, PP::Ping, sim.now() + 10);
        sim.run_to_idle(10_000);
        assert_eq!(sim.node(1).pings_received, 1);
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerActor {
            fired: Vec<u64>,
        }
        impl Actor for TimerActor {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<()>) {
                ctx.set_timer(300, 3);
                ctx.set_timer(100, 1);
                ctx.set_timer(200, 2);
            }
            fn on_message(&mut self, _: NodeId, _: (), _: &mut Ctx<()>) {}
            fn on_timer(&mut self, timer: u64, _: &mut Ctx<()>) {
                self.fired.push(timer);
            }
        }
        let mut sim = Simulation::new(vec![TimerActor { fired: vec![] }], NetConfig::default(), 0);
        sim.run_to_idle(100);
        assert_eq!(sim.node(0).fired, vec![1, 2, 3]);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = Simulation::new(pp(10), NetConfig { base_latency: 1000, jitter: 0, drop_rate: 0.0, processing: 0 }, 0);
        let processed = sim.run_until(500);
        assert_eq!(processed, 0, "nothing arrives before 1000µs");
        sim.run_until(2_000);
        assert_eq!(sim.node(1).pings_received, 10, "pings arrive at 1000µs");
    }

    #[test]
    fn run_until_pred_stops_early() {
        let mut sim = Simulation::new(pp(10), NetConfig::default(), 0);
        let ok = sim.run_until_pred(10_000, |nodes| nodes[1].pings_received >= 3);
        assert!(ok);
        assert!(sim.node(1).pings_received >= 3);
        assert!(sim.node(1).pings_received < 10, "should stop before all deliveries");
    }

    #[test]
    fn processing_time_serializes_a_node() {
        // 10 pings sent simultaneously; with a 100 µs service time the
        // last delivery lands ≥ 900 µs after the first.
        let cfg = NetConfig { base_latency: 500, jitter: 0, drop_rate: 0.0, processing: 100 };
        let mut sim = Simulation::new(pp(10), cfg, 0);
        sim.run_to_idle(10_000);
        assert_eq!(sim.node(1).pings_received, 10);
        // First ping at 500, 10th at ≥ 500 + 9·100.
        assert!(
            sim.node(1).last_delivery >= 500 + 900,
            "last delivery at {}",
            sim.node(1).last_delivery
        );
        // Without processing, all arrive at 500.
        let mut sim0 = Simulation::new(
            pp(10),
            NetConfig { base_latency: 500, jitter: 0, drop_rate: 0.0, processing: 0 },
            0,
        );
        sim0.run_until(600);
        assert_eq!(sim0.node(1).pings_received, 10);
    }

    #[test]
    fn quorum_helpers() {
        assert!(is_majority(3, 5));
        assert!(!is_majority(2, 5));
        assert_eq!(bft_quorum(4), 3);
        assert_eq!(bft_quorum(7), 5);
        assert_eq!(bft_max_faults(4), 1);
        assert_eq!(bft_max_faults(10), 3);
        let mut v = VoteSet::new();
        assert!(v.add(1));
        assert!(!v.add(1));
        assert_eq!(v.len(), 1);
    }
}
