//! # prever-sim
//!
//! A deterministic discrete-event network simulator.
//!
//! PReVer's federated deployments run consensus (PBFT, Paxos, sharded
//! PBFT) among mutually distrustful data managers. The paper's §6 asks
//! for throughput/latency comparisons against these protocols; measuring
//! them reproducibly requires a network whose latencies, drops, and
//! partitions are simulated under a seeded PRNG rather than borrowed from
//! the host machine. Every consensus test and bench in the workspace runs
//! on this simulator, so results are bit-for-bit reproducible.
//!
//! The model: a fixed set of [`Actor`] nodes exchanging typed messages
//! through a virtual network with configurable latency, jitter, drop
//! rate, crashed nodes, and partitions. Time is virtual (microseconds);
//! an event loop pops the earliest event, dispatches it, and collects the
//! outputs. Determinism invariant: identical (actors, config, seed,
//! injected events) ⇒ identical executions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Identifies a node in the simulation (dense, 0-based).
pub type NodeId = usize;

/// Buffered outputs of one actor dispatch: `(to, msg)` sends and
/// `(delay, timer-id)` timer arms.
type DispatchOutputs<M> = (Vec<(NodeId, M)>, Vec<(u64, u64)>);

/// A simulated node.
pub trait Actor {
    /// Message type exchanged between nodes.
    type Msg: Clone;

    /// Called once when the simulation starts.
    fn on_start(&mut self, _ctx: &mut Ctx<Self::Msg>) {}

    /// Called when a message from `from` is delivered.
    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut Ctx<Self::Msg>);

    /// Called when a timer set via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, _timer: u64, _ctx: &mut Ctx<Self::Msg>) {}
}

/// Per-dispatch context: lets an actor read the clock, send messages and
/// arm timers. Outputs are buffered and scheduled by the simulator after
/// the handler returns.
pub struct Ctx<'a, M> {
    now: u64,
    self_id: NodeId,
    n_nodes: usize,
    sends: &'a mut Vec<(NodeId, M)>,
    timers: &'a mut Vec<(u64, u64)>,
}

impl<'a, M> Ctx<'a, M> {
    /// Current virtual time (µs).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.self_id
    }

    /// Number of nodes in the simulation.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Sends `msg` to `to` (subject to network latency/drops).
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.sends.push((to, msg));
    }

    /// Sends `msg` to every node except self.
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        for to in 0..self.n_nodes {
            if to != self.self_id {
                self.sends.push((to, msg.clone()));
            }
        }
    }

    /// Sends `msg` to self through the network (useful for yielding).
    pub fn send_self(&mut self, msg: M) {
        self.sends.push((self.self_id, msg));
    }

    /// Arms a timer that fires after `delay` µs with identifier `timer`.
    pub fn set_timer(&mut self, delay: u64, timer: u64) {
        self.timers.push((delay, timer));
    }
}

/// Network behavior configuration.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Minimum one-way latency in µs.
    pub base_latency: u64,
    /// Maximum extra jitter in µs (uniform).
    pub jitter: u64,
    /// Probability a message is silently dropped (0.0–1.0).
    pub drop_rate: f64,
    /// Per-message processing (service) time at the receiving node, in
    /// µs. With 0 (the default) nodes have infinite parallelism — fine
    /// for protocol-logic tests; throughput experiments set this so
    /// load actually serializes on CPUs (each node is an M/D/1-style
    /// server and messages queue behind each other).
    pub processing: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        // 500 µs one-way ≈ 1 ms RTT: a LAN/metro-area cluster, the
        // deployment the paper's permissioned-blockchain systems target.
        NetConfig { base_latency: 500, jitter: 100, drop_rate: 0.0, processing: 0 }
    }
}

enum EventKind<M> {
    Deliver { from: NodeId, msg: M },
    Timer { timer: u64 },
}

struct Event<M> {
    at: u64,
    seq: u64,
    to: NodeId,
    kind: EventKind<M>,
}

// Order events by (time, seq): seq breaks ties deterministically.
impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Simulation statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Messages handed to the network.
    pub messages_sent: u64,
    /// Messages delivered to a live node.
    pub messages_delivered: u64,
    /// Messages dropped (random drops + partitions + crashed targets).
    pub messages_dropped: u64,
    /// Timer firings delivered.
    pub timers_fired: u64,
}

/// The discrete-event simulator.
pub struct Simulation<A: Actor> {
    nodes: Vec<A>,
    crashed: Vec<bool>,
    /// partition\[i\] = group id of node i; messages cross groups only if
    /// no partition is active.
    partition: Option<Vec<usize>>,
    queue: BinaryHeap<Reverse<Event<A::Msg>>>,
    cfg: NetConfig,
    rng: StdRng,
    now: u64,
    seq: u64,
    started: bool,
    stats: SimStats,
    /// Earliest time each node can accept its next message (service
    /// queue model; only advances when `cfg.processing > 0`).
    busy_until: Vec<u64>,
}

impl<A: Actor> Simulation<A> {
    /// Creates a simulation over `nodes` with network `cfg` and RNG `seed`.
    pub fn new(nodes: Vec<A>, cfg: NetConfig, seed: u64) -> Self {
        let n = nodes.len();
        Simulation {
            nodes,
            crashed: vec![false; n],
            partition: None,
            queue: BinaryHeap::new(),
            cfg,
            rng: StdRng::seed_from_u64(seed),
            now: 0,
            seq: 0,
            started: false,
            stats: SimStats::default(),
            busy_until: vec![0; n],
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Statistics so far.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Immutable access to a node (assertions, result extraction).
    pub fn node(&self, id: NodeId) -> &A {
        &self.nodes[id]
    }

    /// Mutable access to a node (test setup).
    pub fn node_mut(&mut self, id: NodeId) -> &mut A {
        &mut self.nodes[id]
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Crashes a node: it receives no further events.
    pub fn crash(&mut self, node: NodeId) {
        self.crashed[node] = true;
    }

    /// Recovers a crashed node (state intact, as after a fast restart).
    pub fn recover(&mut self, node: NodeId) {
        self.crashed[node] = false;
    }

    /// True iff the node is crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed[node]
    }

    /// Installs a partition: `groups[i]` is node `i`'s side. Messages
    /// between different sides are dropped.
    pub fn set_partition(&mut self, groups: Vec<usize>) {
        assert_eq!(groups.len(), self.nodes.len());
        self.partition = Some(groups);
    }

    /// Removes any partition.
    pub fn heal_partition(&mut self) {
        self.partition = None;
    }

    /// Injects an external (client) message to `to`, arriving at absolute
    /// time `at` (must be ≥ current time). `from` is recorded as the
    /// sender id; use an out-of-range id for true externals if the actor
    /// protocol distinguishes clients.
    pub fn inject(&mut self, from: NodeId, to: NodeId, msg: A::Msg, at: u64) {
        assert!(at >= self.now, "cannot inject into the past");
        let seq = self.next_seq();
        self.queue.push(Reverse(Event { at, seq, to, kind: EventKind::Deliver { from, msg } }));
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Runs until the queue is empty or `deadline` (virtual µs) passes.
    /// Returns the number of events processed.
    pub fn run_until(&mut self, deadline: u64) -> u64 {
        self.ensure_started();
        let mut processed = 0;
        while let Some(Reverse(ev)) = self.queue.peek() {
            if ev.at > deadline {
                break;
            }
            let Reverse(ev) = self.queue.pop().expect("peeked");
            self.now = ev.at;
            self.dispatch(ev);
            processed += 1;
        }
        self.now = self.now.max(deadline.min(self.peek_time().unwrap_or(deadline)));
        processed
    }

    /// Runs until no events remain. Panics after `max_events` as a
    /// runaway guard.
    pub fn run_to_idle(&mut self, max_events: u64) -> u64 {
        self.ensure_started();
        let mut processed = 0;
        while let Some(Reverse(ev)) = self.queue.pop() {
            self.now = ev.at;
            self.dispatch(ev);
            processed += 1;
            assert!(processed <= max_events, "simulation exceeded {max_events} events");
        }
        processed
    }

    /// Runs until `pred` over the node slice holds (checked after every
    /// event) or the queue empties / `max_events` passes. Returns true if
    /// the predicate held.
    pub fn run_until_pred(&mut self, max_events: u64, mut pred: impl FnMut(&[A]) -> bool) -> bool {
        self.ensure_started();
        if pred(&self.nodes) {
            return true;
        }
        let mut processed = 0;
        while let Some(Reverse(ev)) = self.queue.pop() {
            self.now = ev.at;
            self.dispatch(ev);
            processed += 1;
            if pred(&self.nodes) {
                return true;
            }
            if processed >= max_events {
                return false;
            }
        }
        false
    }

    fn peek_time(&self) -> Option<u64> {
        self.queue.peek().map(|Reverse(e)| e.at)
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for id in 0..self.nodes.len() {
            if self.crashed[id] {
                continue;
            }
            let (sends, timers) = self.with_ctx(id, |node, ctx| node.on_start(ctx));
            self.schedule_outputs(id, sends, timers);
        }
    }

    fn dispatch(&mut self, ev: Event<A::Msg>) {
        let to = ev.to;
        if self.crashed[to] {
            self.stats.messages_dropped += 1;
            return;
        }
        match ev.kind {
            EventKind::Deliver { from, msg } => {
                self.stats.messages_delivered += 1;
                let (sends, timers) =
                    self.with_ctx(to, |node, ctx| node.on_message(from, msg, ctx));
                self.schedule_outputs(to, sends, timers);
            }
            EventKind::Timer { timer } => {
                self.stats.timers_fired += 1;
                let (sends, timers) = self.with_ctx(to, |node, ctx| node.on_timer(timer, ctx));
                self.schedule_outputs(to, sends, timers);
            }
        }
    }

    fn with_ctx(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut A, &mut Ctx<A::Msg>),
    ) -> DispatchOutputs<A::Msg> {
        let mut sends = Vec::new();
        let mut timers = Vec::new();
        let n_nodes = self.nodes.len();
        let mut ctx = Ctx {
            now: self.now,
            self_id: id,
            n_nodes,
            sends: &mut sends,
            timers: &mut timers,
        };
        f(&mut self.nodes[id], &mut ctx);
        (sends, timers)
    }

    fn schedule_outputs(
        &mut self,
        from: NodeId,
        sends: Vec<(NodeId, A::Msg)>,
        timers: Vec<(u64, u64)>,
    ) {
        for (to, msg) in sends {
            self.stats.messages_sent += 1;
            if to >= self.nodes.len() {
                // Actor bug guard: a send to a nonexistent node is
                // counted as dropped rather than crashing the run.
                self.stats.messages_dropped += 1;
                continue;
            }
            // Partition check.
            if let Some(groups) = &self.partition {
                if groups[from] != groups[to] {
                    self.stats.messages_dropped += 1;
                    continue;
                }
            }
            // Random drop (self-sends are reliable: local queue).
            if to != from && self.cfg.drop_rate > 0.0 && self.rng.gen::<f64>() < self.cfg.drop_rate
            {
                self.stats.messages_dropped += 1;
                continue;
            }
            let latency = if to == from {
                1
            } else {
                self.cfg.base_latency
                    + if self.cfg.jitter > 0 { self.rng.gen_range(0..=self.cfg.jitter) } else { 0 }
            };
            let mut at = self.now + latency;
            if self.cfg.processing > 0 {
                // Serialize on the receiver: queue behind its backlog.
                at = at.max(self.busy_until[to]);
                self.busy_until[to] = at + self.cfg.processing;
            }
            let seq = self.next_seq();
            self.queue.push(Reverse(Event { at, seq, to, kind: EventKind::Deliver { from, msg } }));
        }
        for (delay, timer) in timers {
            let at = self.now + delay.max(1);
            let seq = self.next_seq();
            self.queue.push(Reverse(Event { at, seq, to: from, kind: EventKind::Timer { timer } }));
        }
    }

    /// Consumes the simulation, returning the nodes (final-state checks).
    pub fn into_nodes(self) -> Vec<A> {
        self.nodes
    }
}

/// Utility: asserts a set of node ids forms a quorum of `n` (majority).
pub fn is_majority(count: usize, n: usize) -> bool {
    count * 2 > n
}

/// Utility: the PBFT quorum size `2f + 1` for `n = 3f + 1` nodes.
pub fn bft_quorum(n: usize) -> usize {
    let f = (n - 1) / 3;
    2 * f + 1
}

/// Utility: maximum tolerated Byzantine faults for `n` nodes.
pub fn bft_max_faults(n: usize) -> usize {
    (n - 1) / 3
}

/// A helper collecting distinct voters (ids) for quorum counting.
#[derive(Clone, Debug, Default)]
pub struct VoteSet {
    voters: HashSet<NodeId>,
}

impl VoteSet {
    /// Empty vote set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a vote; returns true if it was new.
    pub fn add(&mut self, voter: NodeId) -> bool {
        self.voters.insert(voter)
    }

    /// Number of distinct voters.
    pub fn len(&self) -> usize {
        self.voters.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.voters.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A ping-pong actor: node 0 sends `count` pings to 1, which echoes.
    #[derive(Clone)]
    struct PingPong {
        pings_to_send: u32,
        pings_received: u32,
        pongs_received: u32,
        last_delivery: u64,
    }

    #[derive(Clone)]
    enum PP {
        Ping,
        Pong,
    }

    impl Actor for PingPong {
        type Msg = PP;

        fn on_start(&mut self, ctx: &mut Ctx<PP>) {
            if ctx.id() == 0 {
                for _ in 0..self.pings_to_send {
                    ctx.send(1, PP::Ping);
                }
            }
        }

        fn on_message(&mut self, from: NodeId, msg: PP, ctx: &mut Ctx<PP>) {
            self.last_delivery = ctx.now();
            match msg {
                PP::Ping => {
                    self.pings_received += 1;
                    ctx.send(from, PP::Pong);
                }
                PP::Pong => self.pongs_received += 1,
            }
        }
    }

    fn pp(pings: u32) -> Vec<PingPong> {
        vec![
            PingPong { pings_to_send: pings, pings_received: 0, pongs_received: 0, last_delivery: 0 };
            2
        ]
    }

    #[test]
    fn ping_pong_delivers_everything() {
        let mut sim = Simulation::new(pp(10), NetConfig::default(), 42);
        sim.run_to_idle(10_000);
        assert_eq!(sim.node(1).pings_received, 10);
        assert_eq!(sim.node(0).pongs_received, 10);
        let s = sim.stats();
        assert_eq!(s.messages_sent, 20);
        assert_eq!(s.messages_delivered, 20);
        assert_eq!(s.messages_dropped, 0);
    }

    #[test]
    fn determinism_same_seed_same_execution() {
        let run = |seed: u64| {
            let mut sim = Simulation::new(pp(50), NetConfig { jitter: 400, ..Default::default() }, seed);
            sim.run_to_idle(100_000);
            (sim.now(), sim.node(0).last_delivery, sim.node(1).last_delivery)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should differ with jitter");
    }

    #[test]
    fn drops_lose_messages() {
        let cfg = NetConfig { drop_rate: 0.5, ..Default::default() };
        let mut sim = Simulation::new(pp(100), cfg, 3);
        sim.run_to_idle(100_000);
        let s = sim.stats();
        assert!(s.messages_dropped > 10, "expected many drops, got {}", s.messages_dropped);
        assert!(sim.node(1).pings_received < 100);
    }

    #[test]
    fn crashed_node_receives_nothing() {
        let mut sim = Simulation::new(pp(5), NetConfig::default(), 1);
        sim.crash(1);
        sim.run_to_idle(10_000);
        assert_eq!(sim.node(1).pings_received, 0);
        assert_eq!(sim.stats().messages_dropped, 5);
    }

    #[test]
    fn partition_blocks_cross_group_traffic() {
        let mut sim = Simulation::new(pp(5), NetConfig::default(), 1);
        sim.set_partition(vec![0, 1]);
        sim.run_to_idle(10_000);
        assert_eq!(sim.node(1).pings_received, 0);
        // Heal and re-inject.
        sim.heal_partition();
        sim.inject(0, 1, PP::Ping, sim.now() + 10);
        sim.run_to_idle(10_000);
        assert_eq!(sim.node(1).pings_received, 1);
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerActor {
            fired: Vec<u64>,
        }
        impl Actor for TimerActor {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<()>) {
                ctx.set_timer(300, 3);
                ctx.set_timer(100, 1);
                ctx.set_timer(200, 2);
            }
            fn on_message(&mut self, _: NodeId, _: (), _: &mut Ctx<()>) {}
            fn on_timer(&mut self, timer: u64, _: &mut Ctx<()>) {
                self.fired.push(timer);
            }
        }
        let mut sim = Simulation::new(vec![TimerActor { fired: vec![] }], NetConfig::default(), 0);
        sim.run_to_idle(100);
        assert_eq!(sim.node(0).fired, vec![1, 2, 3]);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = Simulation::new(pp(10), NetConfig { base_latency: 1000, jitter: 0, drop_rate: 0.0, processing: 0 }, 0);
        let processed = sim.run_until(500);
        assert_eq!(processed, 0, "nothing arrives before 1000µs");
        sim.run_until(2_000);
        assert_eq!(sim.node(1).pings_received, 10, "pings arrive at 1000µs");
    }

    #[test]
    fn run_until_pred_stops_early() {
        let mut sim = Simulation::new(pp(10), NetConfig::default(), 0);
        let ok = sim.run_until_pred(10_000, |nodes| nodes[1].pings_received >= 3);
        assert!(ok);
        assert!(sim.node(1).pings_received >= 3);
        assert!(sim.node(1).pings_received < 10, "should stop before all deliveries");
    }

    #[test]
    fn processing_time_serializes_a_node() {
        // 10 pings sent simultaneously; with a 100 µs service time the
        // last delivery lands ≥ 900 µs after the first.
        let cfg = NetConfig { base_latency: 500, jitter: 0, drop_rate: 0.0, processing: 100 };
        let mut sim = Simulation::new(pp(10), cfg, 0);
        sim.run_to_idle(10_000);
        assert_eq!(sim.node(1).pings_received, 10);
        // First ping at 500, 10th at ≥ 500 + 9·100.
        assert!(
            sim.node(1).last_delivery >= 500 + 900,
            "last delivery at {}",
            sim.node(1).last_delivery
        );
        // Without processing, all arrive at 500.
        let mut sim0 = Simulation::new(
            pp(10),
            NetConfig { base_latency: 500, jitter: 0, drop_rate: 0.0, processing: 0 },
            0,
        );
        sim0.run_until(600);
        assert_eq!(sim0.node(1).pings_received, 10);
    }

    #[test]
    fn quorum_helpers() {
        assert!(is_majority(3, 5));
        assert!(!is_majority(2, 5));
        assert_eq!(bft_quorum(4), 3);
        assert_eq!(bft_quorum(7), 5);
        assert_eq!(bft_max_faults(4), 1);
        assert_eq!(bft_max_faults(10), 3);
        let mut v = VoteSet::new();
        assert!(v.add(1));
        assert!(!v.add(1));
        assert_eq!(v.len(), 1);
    }
}
