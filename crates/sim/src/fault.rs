//! Seeded fault plans: per-link network faults plus scheduled
//! crash/restart/partition events, all replayed deterministically by the
//! simulator's event loop.
//!
//! A [`FaultPlan`] is pure data. Installing the same plan into two
//! simulations with the same actors, config, and seed yields bit-identical
//! executions — which is what makes a chaos run replayable from nothing
//! but its seed.
//!
//! ## Fault taxonomy
//!
//! Per-link (applied independently to every message crossing the link):
//!
//! - **drop** — the message silently disappears.
//! - **delay** — extra one-way latency, uniform in `0..=delay_max` µs.
//! - **duplicate** — a second, independently delayed copy is scheduled.
//! - **reorder** — with probability `reorder`, an extra uniform delay in
//!   `0..=reorder_window` µs is added, letting later sends overtake this
//!   message (bounded reordering).
//! - **corrupt** — the bytes are damaged in flight. If the simulation has
//!   a corruption hook installed ([`crate::Simulation::set_corruptor`])
//!   the hook mutates the message and it is delivered corrupted;
//!   otherwise corruption is treated as *detected* (a MAC/CRC failure at
//!   the receiver) and the message is dropped. Authenticated protocols
//!   like PBFT should use the detected model — the simulator's base
//!   premise is that messages cannot be forged.
//!
//! Scheduled (applied at absolute virtual times):
//!
//! - **Crash / Recover** — see [`crate::Simulation::crash`] /
//!   [`crate::Simulation::recover`]. Recovery keeps actor state (a fast
//!   reboot with an intact disk and socket backlog).
//! - **RestartWithLoss** — the node comes back as a *fresh* actor built by
//!   the node factory ([`crate::Simulation::set_node_factory`]); all
//!   in-memory state and everything in flight toward the old process is
//!   lost.
//! - **Partition / Heal** — install or remove a node grouping; messages
//!   crossing groups are dropped.
//! - **ClearLinkFaults** — remove all per-link faults, so liveness after
//!   heal can be checked against a clean network.

use crate::NodeId;
use std::collections::HashMap;

/// Fault parameters for one directed link (asymmetric: `(a, b)` and
/// `(b, a)` are configured independently).
///
/// The default is a clean link (no faults).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LinkFault {
    /// Probability a message on this link is silently dropped.
    pub drop: f64,
    /// Maximum extra one-way latency in µs (uniform in `0..=delay_max`).
    pub delay_max: u64,
    /// Probability a message is duplicated (one extra copy, independently
    /// delayed).
    pub duplicate: f64,
    /// Probability a message gets extra reordering delay.
    pub reorder: f64,
    /// Maximum reordering delay in µs (uniform in `0..=reorder_window`).
    pub reorder_window: u64,
    /// Probability a message is corrupted in flight (see module docs for
    /// delivered-vs-detected semantics).
    pub corrupt: f64,
}

impl LinkFault {
    /// True iff this link has no faults configured.
    pub fn is_clean(&self) -> bool {
        self.drop == 0.0
            && self.delay_max == 0
            && self.duplicate == 0.0
            && self.reorder == 0.0
            && self.corrupt == 0.0
    }
}

/// A disk-level fault applied to one node's storage media.
///
/// The simulator does not model disks itself; it dispatches these to a
/// handler installed with [`crate::Simulation::set_disk_handler`], which
/// owns the actual media (e.g. `prever_storage::SharedDisk` handles) and
/// typically pairs the fault with a
/// [`FaultEvent::RestartWithLoss`]-style rebuild.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiskFault {
    /// Crash with torn-write semantics: a seeded prefix of the pending
    /// write-back cache reaches the platter, the rest is lost; the cut
    /// may land mid-frame.
    TornWrite,
    /// Crash dropping the entire write-back cache: only flushed bytes
    /// survive.
    DropCache,
    /// Flip bits in one seeded, already-flushed sector.
    CorruptSector,
}

/// A scheduled fault, applied at an absolute virtual time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// Crash a node (in-flight messages and pending timers die with it).
    Crash(NodeId),
    /// Recover a crashed node with state intact.
    Recover(NodeId),
    /// Replace a node with a fresh actor from the node factory; all
    /// in-memory state is lost. Requires
    /// [`crate::Simulation::set_node_factory`].
    RestartWithLoss(NodeId),
    /// Apply a [`DiskFault`] to `node`'s storage media. Requires
    /// [`crate::Simulation::set_disk_handler`].
    Disk {
        /// The node whose media take the fault.
        node: NodeId,
        /// What happens to the media.
        fault: DiskFault,
    },
    /// Install a partition (`groups[i]` = node `i`'s side).
    Partition(Vec<usize>),
    /// Remove any partition.
    Heal,
    /// Remove all per-link faults (the network turns clean).
    ClearLinkFaults,
}

/// A deterministic schedule of link faults and fault events.
///
/// Built with the fluent methods below, then installed via
/// [`crate::Simulation::set_fault_plan`]. Events run interleaved with the
/// event loop at their scheduled virtual times (before any message
/// carrying the same timestamp).
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    pub(crate) default_link: LinkFault,
    pub(crate) links: HashMap<(NodeId, NodeId), LinkFault>,
    pub(crate) events: Vec<(u64, FaultEvent)>,
}

impl FaultPlan {
    /// An empty plan (clean network, no events).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the fault profile used by links without a specific override.
    pub fn default_link(mut self, fault: LinkFault) -> Self {
        self.default_link = fault;
        self
    }

    /// Sets the fault profile for the directed link `from → to`.
    pub fn link(mut self, from: NodeId, to: NodeId, fault: LinkFault) -> Self {
        self.links.insert((from, to), fault);
        self
    }

    /// Schedules an arbitrary [`FaultEvent`] at virtual time `at`.
    pub fn at(mut self, at: u64, event: FaultEvent) -> Self {
        self.events.push((at, event));
        self
    }

    /// Schedules a crash of `node` at `at`.
    pub fn crash_at(self, at: u64, node: NodeId) -> Self {
        self.at(at, FaultEvent::Crash(node))
    }

    /// Schedules a state-intact recovery of `node` at `at`.
    pub fn recover_at(self, at: u64, node: NodeId) -> Self {
        self.at(at, FaultEvent::Recover(node))
    }

    /// Schedules a restart-with-state-loss of `node` at `at`.
    pub fn restart_with_loss_at(self, at: u64, node: NodeId) -> Self {
        self.at(at, FaultEvent::RestartWithLoss(node))
    }

    /// Schedules a [`DiskFault`] against `node`'s media at `at`.
    pub fn disk_fault_at(self, at: u64, node: NodeId, fault: DiskFault) -> Self {
        self.at(at, FaultEvent::Disk { node, fault })
    }

    /// Schedules a partition at `at`.
    pub fn partition_at(self, at: u64, groups: Vec<usize>) -> Self {
        self.at(at, FaultEvent::Partition(groups))
    }

    /// Schedules a partition heal at `at`.
    pub fn heal_at(self, at: u64) -> Self {
        self.at(at, FaultEvent::Heal)
    }

    /// Schedules removal of all link faults at `at`.
    pub fn clear_links_at(self, at: u64) -> Self {
        self.at(at, FaultEvent::ClearLinkFaults)
    }

    /// Events sorted by time (stable: insertion order breaks ties).
    pub(crate) fn sorted_events(&self) -> Vec<(u64, FaultEvent)> {
        let mut evs = self.events.clone();
        evs.sort_by_key(|(at, _)| *at);
        evs
    }

    /// The fault profile governing `from → to`.
    pub(crate) fn link_for(&self, from: NodeId, to: NodeId) -> LinkFault {
        self.links.get(&(from, to)).copied().unwrap_or(self.default_link)
    }

    /// Removes every link fault (the `ClearLinkFaults` event).
    pub(crate) fn clear_links(&mut self) {
        self.default_link = LinkFault::default();
        self.links.clear();
    }
}
