//! Causal trace propagation tests (DESIGN.md §13).
//!
//! The trace sink is process-global and these tests run concurrently in
//! one binary, so each test owns a disjoint command-id range and filters
//! the sink by the trace ids minted from those ids. Tests enable
//! collection but never disable or reset it (that would race a sibling
//! test mid-run).

use prever_consensus::pbft::{Byzantine, PbftMsg, PbftNode};
use prever_consensus::sharded::{self, Topology};
use prever_consensus::{durable::DurableLog, BatchConfig, Command};
use prever_obs::trace::{self, stage_rank, TraceEvent};
use prever_obs::TraceCtx;
use prever_sim::{NetConfig, ParallelConfig, Simulation};
use std::collections::{HashMap, HashSet};

fn trace_ids_of(ids: impl Iterator<Item = u64>) -> HashSet<u64> {
    ids.map(|id| TraceCtx::for_command(id).trace_id).collect()
}

fn events_for(ids: &HashSet<u64>) -> Vec<TraceEvent> {
    trace::events().into_iter().filter(|e| ids.contains(&e.trace_id)).collect()
}

#[test]
fn pbft_commit_trace_has_one_cut_one_quorum_one_flush_per_command() {
    trace::set_trace_enabled(true);
    let n = 4;
    let cfg = BatchConfig::new(8, 20_000, 4);
    let nodes: Vec<PbftNode> = (0..n)
        .map(|id| {
            PbftNode::with_durable(id, n, Byzantine::Honest, DurableLog::new())
                .with_batching(cfg)
        })
        .collect();
    let mut sim = Simulation::new(nodes, NetConfig::default(), 11);
    const BASE: u64 = 0x6100_0000;
    let cmds = 20u64;
    for i in 0..cmds {
        let id = BASE + i;
        sim.inject(0, 0, PbftMsg::request(Command::new(id, "traced")), i + 1);
    }
    let ok = sim.run_until_pred(3_000_000, |nodes| {
        nodes.iter().all(|nd| nd.executed().len() as u64 >= cmds)
    });
    assert!(ok, "cluster did not commit all commands");

    let mine = trace_ids_of((0..cmds).map(|i| BASE + i));
    let evs = events_for(&mine);
    for i in 0..cmds {
        let t = TraceCtx::for_command(BASE + i).trace_id;
        let per: Vec<&TraceEvent> = evs.iter().filter(|e| e.trace_id == t).collect();
        // Exactly one batch cut cluster-wide: only the view-0 primary
        // proposes in a clean run.
        let cuts = per.iter().filter(|e| e.stage == "batch-cut").count();
        assert_eq!(cuts, 1, "command {i}: {cuts} batch-cut events");
        // Per replica: one quorum commit, one exec, one wal-flush
        // (check a backup — replica 1 — so relays don't confound).
        for stage in ["commit-quorum", "exec", "wal-flush"] {
            let k = per.iter().filter(|e| e.stage == stage && e.node == 1).count();
            assert_eq!(k, 1, "command {i}: {k} {stage} events on replica 1");
        }
        // Lamport-consistent: first arrival per stage is monotone in
        // pipeline order (queue ≤ batch-cut ≤ … ≤ wal-flush).
        let mut first: HashMap<usize, u64> = HashMap::new();
        for e in &per {
            let r = stage_rank(e.stage);
            let at = first.entry(r).or_insert(e.at);
            *at = (*at).min(e.at);
        }
        let mut ranks: Vec<usize> = first.keys().copied().collect();
        ranks.sort_unstable();
        for w in ranks.windows(2) {
            assert!(
                first[&w[0]] <= first[&w[1]],
                "command {i}: stage {} at {} after stage {} at {}",
                w[0],
                first[&w[0]],
                w[1],
                first[&w[1]]
            );
        }
        // The full ordering pipeline is present.
        for stage in ["queue", "batch-cut", "pre-prepare", "prepare-quorum"] {
            assert!(
                per.iter().any(|e| e.stage == stage),
                "command {i}: no {stage} event"
            );
        }
    }
}

#[test]
fn cross_shard_commit_trace_spans_both_shards_in_order() {
    trace::set_trace_enabled(true);
    let t = Topology { n_shards: 2, replicas_per_shard: 4 };
    let mut sim = Simulation::new(sharded::cluster(t), NetConfig::default(), 12);
    const TX: u64 = 0x6200_0001;
    sharded::submit(&mut sim, t, Command::new(TX, "cross"), vec![0, 1], 1);
    let ok = sim.run_until_pred(10_000_000, |nodes| {
        (0..t.n_nodes()).all(|id| nodes[id].completed_count() >= 1)
    });
    assert!(ok, "cross-shard tx did not commit everywhere");

    let mine = trace_ids_of(std::iter::once(TX));
    let evs = events_for(&mine);
    let shard_of = |node: u64| (node as usize) / t.replicas_per_shard;
    // Both shards locked (ordered the tx in their own log).
    let locks: Vec<&TraceEvent> = evs.iter().filter(|e| e.stage == "cross-lock").collect();
    for shard in 0..2 {
        assert!(
            locks.iter().any(|e| shard_of(e.node) == shard),
            "no cross-lock event from shard {shard}"
        );
    }
    // The coordinator (shard 0) decided, every involved shard finalized.
    let decides: Vec<&TraceEvent> = evs.iter().filter(|e| e.stage == "cross-decide").collect();
    assert!(!decides.is_empty(), "no cross-decide event");
    assert!(decides.iter().all(|e| shard_of(e.node) == 0), "decision outside coordinator shard");
    let outcomes: Vec<&TraceEvent> = evs.iter().filter(|e| e.stage == "cross-outcome").collect();
    for shard in 0..2 {
        assert!(
            outcomes.iter().any(|e| shard_of(e.node) == shard),
            "no cross-outcome event on shard {shard}"
        );
    }
    // Lamport-consistent ordering: the decision follows at least one
    // lock on every involved shard (Prepared votes carry the lock), and
    // each shard's outcome follows the first decision.
    let first_decide = decides.iter().map(|e| e.at).min().unwrap();
    for shard in 0..2 {
        let first_lock =
            locks.iter().filter(|e| shard_of(e.node) == shard).map(|e| e.at).min().unwrap();
        assert!(
            first_lock <= first_decide,
            "shard {shard} locked at {first_lock} after the decision at {first_decide}"
        );
    }
    for e in &outcomes {
        assert!(
            e.at >= first_decide,
            "outcome on node {} at {} precedes the decision at {first_decide}",
            e.node,
            e.at
        );
    }
}

#[test]
fn parallel_sim_traces_are_bit_identical() {
    trace::set_trace_enabled(true);
    let t = Topology { n_shards: 2, replicas_per_shard: 4 };
    const BASE: u64 = 0x6300_0000;
    let cmds = 12u64;
    let run = || {
        let cfg = ParallelConfig { seed: 77, ..ParallelConfig::default() };
        let mut sim =
            sharded::parallel_cluster(t, Some(BatchConfig::new(4, 10_000, 4)), cfg);
        for i in 0..cmds {
            let id = BASE + i;
            let involved = if i % 3 == 0 { vec![0, 1] } else { vec![(i % 2) as usize] };
            sharded::submit_parallel(&mut sim, t, Command::new(id, "par"), involved, i + 1);
        }
        let done = sim.run_until_probe(30_000_000, |probes| {
            probes.iter().map(|p| p.completed).sum::<usize>() >= (cmds as usize * 4)
        });
        assert!(done, "parallel run did not complete the workload");
        sim.into_nodes(); // join the shard threads before reading the sink
    };

    let mine = trace_ids_of((0..cmds).map(|i| BASE + i));
    let key = |e: &TraceEvent| (e.at, e.trace_id, e.stage, e.node, e.seq, e.parent_span);
    let multiset = |evs: &[TraceEvent]| {
        let mut m: HashMap<_, usize> = HashMap::new();
        for e in evs {
            *m.entry(key(e)).or_default() += 1;
        }
        m
    };
    run();
    let first = multiset(&events_for(&mine));
    assert!(!first.is_empty(), "first run recorded no trace events");
    run();
    let second = multiset(&events_for(&mine));
    // The sink accumulates across runs: a bit-identical replay doubles
    // every event count exactly — any scheduling-dependent timestamp,
    // node, or stage would show up as a key with an odd count.
    assert_eq!(second.len(), first.len(), "replay produced new distinct events");
    for (k, v) in &first {
        assert_eq!(
            second.get(k),
            Some(&(v * 2)),
            "event {k:?} not exactly doubled by the replay"
        );
    }
}
