//! Allocation audit for the sharded broadcast/completion path.
//!
//! `Batch` payloads have been Arc-shared since the batching PR, and the
//! sharded request fan-out shares one `Arc<Command>` across every
//! destination. This test pins that property down: running a mixed
//! intra/cross-shard workload with a large (64 KiB) payload must not
//! allocate payload-sized buffers per replica or per message. A
//! regression to by-value fan-out (8 replicas × N messages, each deep-
//! copying the payload) trips the bound immediately.
//!
//! The counting allocator lives in this dedicated integration-test
//! binary so the instrumentation cannot leak into the library (which is
//! `forbid(unsafe_code)`) or other tests.

use prever_consensus::pbft::Byzantine;
use prever_consensus::sharded::{self, ShardedNode, Topology};
use prever_consensus::Command;
use prever_sim::{NetConfig, Simulation};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Payload size well above every protocol-message overhead.
const PAYLOAD: usize = 64 * 1024;
/// Allocations at or above this size count as "payload-sized".
const BIG: usize = PAYLOAD / 2;

static BIG_ALLOCS: AtomicU64 = AtomicU64::new(0);
static ENABLED: AtomicBool = AtomicBool::new(false);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if layout.size() >= BIG && ENABLED.load(Ordering::Relaxed) {
            BIG_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if new_size >= BIG && ENABLED.load(Ordering::Relaxed) {
            BIG_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn sharded_happy_path_does_not_deep_copy_payloads() {
    let topo = Topology { n_shards: 2, replicas_per_shard: 4 };
    let nodes: Vec<ShardedNode> =
        (0..topo.n_nodes()).map(|id| ShardedNode::new(id, topo, Byzantine::Honest)).collect();
    let mut sim = Simulation::new(nodes, NetConfig::default(), 99);

    // Build the large payloads BEFORE enabling the counter: the one
    // legitimate payload-sized allocation per command is its creation.
    let payload = vec![0xabu8; PAYLOAD];
    let intra = Command::new(1, payload.clone());
    let cross = Command::new(2, payload);

    BIG_ALLOCS.store(0, Ordering::SeqCst);
    ENABLED.store(true, Ordering::SeqCst);

    sharded::submit(&mut sim, topo, intra, vec![0], 1);
    sharded::submit(&mut sim, topo, cross, vec![0, 1], 2);
    let done = sim.run_until_pred(10_000_000, |nodes: &[ShardedNode]| {
        nodes.iter().enumerate().all(|(id, n)| {
            let want = if topo.shard_of(id) == 0 { 2 } else { 1 };
            n.completed_count() >= want
        })
    });

    ENABLED.store(false, Ordering::SeqCst);
    let big = BIG_ALLOCS.load(Ordering::SeqCst);
    assert!(done, "happy-path workload did not complete");

    // Per command: one Bytes copy when `Command::new` takes ownership
    // of the payload inside `submit` is already done pre-counting; the
    // fan-out (8 replicas), the per-replica PBFT submission, batch
    // assembly, ordering messages, and completion records must all
    // share it. A by-value regression costs ≥ 8 payload copies per tx;
    // the bound catches it with headroom for allocator noise.
    assert!(
        big <= 4,
        "sharded happy path made {big} payload-sized allocations \
         (expected ≤ 4: fan-out and completion must share the Arc'd payload)"
    );
}
