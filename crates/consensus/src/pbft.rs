//! Practical Byzantine Fault Tolerance (Castro & Liskov, OSDI '99).
//!
//! The Byzantine-fault-tolerant substrate for PReVer's federated
//! deployments, where data managers are *mutually distrustful* (paper
//! §1, RC4): the permissioned-blockchain systems the paper builds on
//! (Hyperledger Fabric's ordering service, SharPer, Qanaat) all reduce
//! to PBFT-family consensus. Implemented:
//!
//! * the three-phase normal path (pre-prepare → prepare → commit) with
//!   `2f + 1` quorums over `n = 3f + 1` replicas;
//! * view changes carrying prepared certificates, so a faulty primary is
//!   replaced without losing prepared requests;
//! * in-order execution with per-command decision timestamps;
//! * pluggable [`Byzantine`] behaviors (silent replica, equivocating
//!   primary) for fault-injection tests.
//!
//! Implemented in full: the three-phase normal path, view changes, and
//! **stable checkpoints** (2f + 1 matching state-digest votes every
//! [`CHECKPOINT_INTERVAL`] executions truncate the in-memory log).
//! Remaining simplifications, chosen because they do not affect the
//! throughput/latency *shape* E3 measures: no MAC/signature
//! authentication (the simulator delivers messages unforged; the crypto
//! exists in `prever-crypto` and is charged in the E2 bench), and
//! new-view messages are trusted structurally rather than re-verified.
//!
//! The protocol state machine lives in [`PbftCore`], which is sans-IO
//! (inputs in, `(destination, message)` pairs out) so the sharded
//! deployment can embed per-shard instances; [`PbftNode`] adapts it to
//! the simulator.

use crate::{Command, Decided};
use prever_crypto::Digest;
use prever_sim::{Actor, Ctx, NodeId, VoteSet};
use std::collections::{BTreeMap, HashSet, VecDeque};

/// PBFT protocol messages.
#[derive(Clone, Debug)]
pub enum PbftMsg {
    /// Client request (injected or forwarded to the primary).
    Request(Command),
    /// Phase 1: the primary assigns `seq` to `command` in `view`.
    PrePrepare {
        /// View.
        view: u64,
        /// Sequence number.
        seq: u64,
        /// Proposed command.
        command: Command,
    },
    /// Phase 2 vote.
    Prepare {
        /// View.
        view: u64,
        /// Sequence number.
        seq: u64,
        /// Digest of the pre-prepared command.
        digest: Digest,
    },
    /// Phase 3 vote.
    Commit {
        /// View.
        view: u64,
        /// Sequence number.
        seq: u64,
        /// Digest.
        digest: Digest,
    },
    /// View-change vote with prepared certificates.
    ViewChange {
        /// Proposed new view.
        new_view: u64,
        /// Prepared (seq, view, command) triples above the last execution.
        prepared: Vec<(u64, u64, Command)>,
    },
    /// New primary's installation message.
    NewView {
        /// The installed view.
        new_view: u64,
        /// Re-proposed (seq, command) pairs.
        proposals: Vec<(u64, Command)>,
    },
    /// Periodic checkpoint vote: "my state after executing `seq`
    /// commands has this digest". `2f + 1` matching votes make the
    /// checkpoint *stable* and let replicas truncate their logs.
    Checkpoint {
        /// Executed sequence number the digest covers.
        seq: u64,
        /// Chained digest of the execution history up to `seq`.
        state_digest: Digest,
    },
}

/// Executed-command count between checkpoint votes.
pub const CHECKPOINT_INTERVAL: u64 = 16;

/// Number of distinct [`PbftMsg`] kinds (stats array arity).
const N_KINDS: usize = 7;

/// Message-kind suffixes, indexed by [`PbftMsg::kind_idx`]; also the
/// tail of the registry counter names (`pbft.msg.sent.<kind>`).
const KIND_NAMES: [&str; N_KINDS] =
    ["request", "pre_prepare", "prepare", "commit", "view_change", "new_view", "checkpoint"];

/// Span names per message kind (histograms of wall-clock handling time).
const SPAN_NAMES: [&str; N_KINDS] = [
    "pbft.request",
    "pbft.pre_prepare",
    "pbft.prepare",
    "pbft.commit",
    "pbft.view_change",
    "pbft.new_view",
    "pbft.checkpoint",
];

/// Registry counters for messages sent, by kind.
const SENT_COUNTERS: [&str; N_KINDS] = [
    "pbft.msg.sent.request",
    "pbft.msg.sent.pre_prepare",
    "pbft.msg.sent.prepare",
    "pbft.msg.sent.commit",
    "pbft.msg.sent.view_change",
    "pbft.msg.sent.new_view",
    "pbft.msg.sent.checkpoint",
];

/// Registry counters for messages received, by kind.
const RECV_COUNTERS: [&str; N_KINDS] = [
    "pbft.msg.recv.request",
    "pbft.msg.recv.pre_prepare",
    "pbft.msg.recv.prepare",
    "pbft.msg.recv.commit",
    "pbft.msg.recv.view_change",
    "pbft.msg.recv.new_view",
    "pbft.msg.recv.checkpoint",
];

impl PbftMsg {
    /// Compact kind index into the per-type stats arrays.
    fn kind_idx(&self) -> usize {
        match self {
            PbftMsg::Request(_) => 0,
            PbftMsg::PrePrepare { .. } => 1,
            PbftMsg::Prepare { .. } => 2,
            PbftMsg::Commit { .. } => 3,
            PbftMsg::ViewChange { .. } => 4,
            PbftMsg::NewView { .. } => 5,
            PbftMsg::Checkpoint { .. } => 6,
        }
    }

    /// The message-kind name (`"pre_prepare"`, `"commit"`, …).
    pub fn kind(&self) -> &'static str {
        KIND_NAMES[self.kind_idx()]
    }
}

/// Per-replica message counts by type: a deterministic, test-friendly
/// mirror of the global `pbft.msg.{sent,recv}.*` registry counters
/// (the registry aggregates across every replica in the process; this
/// struct is per [`PbftCore`], so tests can assert exact counts).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MsgStats {
    sent: [u64; N_KINDS],
    recv: [u64; N_KINDS],
}

impl MsgStats {
    fn idx(kind: &str) -> usize {
        KIND_NAMES
            .iter()
            .position(|k| *k == kind)
            .unwrap_or_else(|| panic!("unknown PBFT message kind `{kind}`"))
    }

    /// Messages of `kind` sent by this replica.
    pub fn sent(&self, kind: &str) -> u64 {
        self.sent[Self::idx(kind)]
    }

    /// Messages of `kind` received by this replica (client injections,
    /// which arrive with `from == self`, are not counted).
    pub fn recv(&self, kind: &str) -> u64 {
        self.recv[Self::idx(kind)]
    }

    /// Total messages sent.
    pub fn total_sent(&self) -> u64 {
        self.sent.iter().sum()
    }

    /// Total messages received.
    pub fn total_recv(&self) -> u64 {
        self.recv.iter().sum()
    }
}

/// Byzantine behavior injection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Byzantine {
    /// Honest replica.
    #[default]
    Honest,
    /// Crashes silently: emits no messages (but the process looks alive).
    Silent,
    /// As primary, sends conflicting pre-prepares to different halves of
    /// the replica set.
    EquivocatingPrimary,
}

/// The command used to fill view-change gaps.
pub const NOOP_ID: u64 = u64::MAX;

/// A prepared certificate carried in view-change messages:
/// `(sequence, view, command)`.
pub type PreparedCert = (u64, u64, Command);

fn noop() -> Command {
    Command::new(NOOP_ID, Vec::new())
}

#[derive(Clone, Debug, Default)]
struct Slot {
    view: u64,
    digest: Option<Digest>,
    command: Option<Command>,
    prepares: VoteSet,
    commits: VoteSet,
    sent_commit: bool,
    committed: bool,
    executed: bool,
}

/// The sans-IO PBFT state machine for one replica within a member set.
#[derive(Clone, Debug)]
pub struct PbftCore {
    id: NodeId,
    /// Sorted member ids; `members[view % m]` is the view's primary.
    members: Vec<NodeId>,
    view: u64,
    /// Next sequence number to assign (primary only).
    next_seq: u64,
    /// Highest executed sequence number (0 = nothing; seqs start at 1).
    last_exec: u64,
    log: BTreeMap<u64, Slot>,
    executed: Vec<Decided>,
    executed_ids: HashSet<u64>,
    /// Requests awaiting execution (liveness tracking at backups).
    pending: VecDeque<(Command, u64)>,
    /// View-change votes: new_view → voters and their prepared sets.
    vc_votes: BTreeMap<u64, BTreeMap<NodeId, Vec<PreparedCert>>>,
    /// Set while this replica has abandoned `view` and waits for NewView.
    view_changing: bool,
    /// Chained digest over the executed history (the checkpoint state).
    running_state: Digest,
    /// Checkpoint votes: (seq, digest) → distinct voters.
    checkpoint_votes: BTreeMap<(u64, Digest), VoteSet>,
    /// Highest stable (2f+1-certified) checkpoint.
    stable_seq: u64,
    /// Per-type message send/receive counts.
    stats: MsgStats,
    byz: Byzantine,
}

/// `(destination, message)` pairs a core step wants sent.
pub type Outbox = Vec<(NodeId, PbftMsg)>;

impl PbftCore {
    /// Creates the core for `id` within `members`.
    pub fn new(id: NodeId, mut members: Vec<NodeId>, byz: Byzantine) -> Self {
        members.sort_unstable();
        assert!(members.contains(&id), "replica must be a member");
        PbftCore {
            id,
            members,
            view: 0,
            next_seq: 0,
            last_exec: 0,
            log: BTreeMap::new(),
            executed: Vec::new(),
            executed_ids: HashSet::new(),
            pending: VecDeque::new(),
            vc_votes: BTreeMap::new(),
            view_changing: false,
            running_state: Digest::ZERO,
            checkpoint_votes: BTreeMap::new(),
            stable_seq: 0,
            stats: MsgStats::default(),
            byz,
        }
    }

    /// The current view.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// Member count.
    pub fn m(&self) -> usize {
        self.members.len()
    }

    fn f(&self) -> usize {
        (self.m() - 1) / 3
    }

    fn quorum(&self) -> usize {
        2 * self.f() + 1
    }

    /// The primary of the current view.
    pub fn primary(&self) -> NodeId {
        self.members[(self.view as usize) % self.m()]
    }

    /// True iff this replica is the current primary.
    pub fn is_primary(&self) -> bool {
        self.primary() == self.id
    }

    /// Executed commands in order.
    pub fn executed(&self) -> &[Decided] {
        &self.executed
    }

    /// Highest stable checkpoint sequence (0 before the first).
    pub fn stable_seq(&self) -> u64 {
        self.stable_seq
    }

    /// Current in-memory log size (bounded by checkpoint truncation).
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Number of non-noop commands executed.
    pub fn executed_commands(&self) -> usize {
        self.executed.iter().filter(|d| d.command.id != NOOP_ID).count()
    }

    /// Per-type message send/receive counts for this replica.
    pub fn msg_stats(&self) -> &MsgStats {
        &self.stats
    }

    /// True iff a request is pending past `deadline`-aged entries.
    pub fn has_stale_pending(&self, now: u64, timeout: u64) -> bool {
        self.pending
            .front()
            .is_some_and(|(_, since)| now.saturating_sub(*since) > timeout)
    }

    /// Records `n` sends of message kind `kind` (per-core stats plus
    /// the process-global registry counter).
    fn note_sent(&mut self, kind: usize, n: u64) {
        if n == 0 {
            return;
        }
        self.stats.sent[kind] += n;
        prever_obs::counter(SENT_COUNTERS[kind]).add(n);
    }

    fn broadcast(&mut self, out: &mut Outbox, msg: PbftMsg) {
        if self.byz == Byzantine::Silent {
            return;
        }
        let kind = msg.kind_idx();
        for &m in &self.members {
            if m != self.id {
                out.push((m, msg.clone()));
            }
        }
        self.note_sent(kind, self.m() as u64 - 1);
    }

    fn send(&mut self, out: &mut Outbox, to: NodeId, msg: PbftMsg) {
        if self.byz == Byzantine::Silent {
            return;
        }
        self.note_sent(msg.kind_idx(), 1);
        out.push((to, msg));
    }

    /// Handles a client request arriving at this replica (client entry
    /// point). The request is relayed to every replica so that all of
    /// them track it as pending — the standard PBFT liveness rule that
    /// lets backups accumulate view-change quorums when the primary is
    /// faulty.
    pub fn on_request(&mut self, command: Command, now: u64) -> Outbox {
        let mut out = Outbox::new();
        if self.executed_ids.contains(&command.id) {
            return out;
        }
        let newly_pending = !self.pending.iter().any(|(c, _)| c.id == command.id);
        if newly_pending {
            self.pending.push_back((command.clone(), now));
            self.broadcast(&mut out, PbftMsg::Request(command.clone()));
        }
        if self.is_primary() && !self.view_changing {
            self.propose(command, &mut out);
        }
        out
    }

    /// Handles a request relayed by a peer replica: track it as pending
    /// (for the view-change timeout) and propose it if we lead.
    fn on_relayed_request(&mut self, command: Command, now: u64) -> Outbox {
        let mut out = Outbox::new();
        if self.executed_ids.contains(&command.id) {
            return out;
        }
        if !self.pending.iter().any(|(c, _)| c.id == command.id) {
            self.pending.push_back((command.clone(), now));
        }
        if self.is_primary() && !self.view_changing {
            self.propose(command, &mut out);
        }
        out
    }

    fn propose(&mut self, command: Command, out: &mut Outbox) {
        // Skip if already in-flight or executed.
        if self.executed_ids.contains(&command.id)
            || self
                .log
                .values()
                .any(|s| s.command.as_ref().is_some_and(|c| c.id == command.id) && !s.executed)
        {
            return;
        }
        self.next_seq = self.next_seq.max(self.last_exec) + 1;
        let seq = self.next_seq;
        let digest = command.digest();

        if self.byz == Byzantine::EquivocatingPrimary {
            // Send command A to the first half, a conflicting command to
            // the rest. Both claim the same (view, seq).
            let mut evil = command.clone();
            evil.payload.extend_from_slice(b"-equivocated");
            let others: Vec<NodeId> =
                self.members.iter().copied().filter(|&m| m != self.id).collect();
            for (i, &m) in others.iter().enumerate() {
                let c = if i < others.len() / 2 { command.clone() } else { evil.clone() };
                out.push((m, PbftMsg::PrePrepare { view: self.view, seq, command: c }));
            }
            self.note_sent(1, others.len() as u64); // kind 1 = pre_prepare
        } else {
            self.broadcast(out, PbftMsg::PrePrepare { view: self.view, seq, command: command.clone() });
        }

        // The primary's pre-prepare doubles as its prepare vote.
        let slot = self.log.entry(seq).or_default();
        slot.view = self.view;
        slot.digest = Some(digest);
        slot.command = Some(command);
        slot.prepares.add(self.id);
    }

    /// Handles a protocol message. `now` is virtual time for execution
    /// timestamps.
    pub fn on_message(&mut self, from: NodeId, msg: PbftMsg, now: u64) -> Outbox {
        let mut out = Outbox::new();
        if !self.members.contains(&from) {
            return out;
        }
        let kind = msg.kind_idx();
        // Client injections arrive with `from == self` by convention and
        // are not network receives; everything else is counted. NewView
        // re-proposals are processed by recursing into this method and
        // therefore count as received pre-prepares, which matches the
        // protocol reading (a NewView is a batch of pre-prepares).
        if from != self.id {
            self.stats.recv[kind] += 1;
            prever_obs::counter(RECV_COUNTERS[kind]).add(1);
        }
        let _span = prever_obs::span!(SPAN_NAMES[kind]);
        match msg {
            PbftMsg::Request(command) => {
                // By convention the simulator injects client requests with
                // `from == self`; peer relays carry the peer's id.
                if from == self.id {
                    return self.on_request(command, now);
                }
                return self.on_relayed_request(command, now);
            }
            PbftMsg::PrePrepare { view, seq, command } => {
                if view != self.view || self.view_changing || from != self.primary() {
                    return out;
                }
                if seq <= self.last_exec {
                    return out;
                }
                let digest = command.digest();
                let slot = self.log.entry(seq).or_default();
                if let Some(existing) = slot.digest {
                    if existing != digest {
                        // Equivocation observed: refuse the second one.
                        return out;
                    }
                } else {
                    slot.view = view;
                    slot.digest = Some(digest);
                    slot.command = Some(command.clone());
                }
                // Track the request for liveness if not already pending.
                if !self.executed_ids.contains(&command.id)
                    && !self.pending.iter().any(|(c, _)| c.id == command.id)
                {
                    self.pending.push_back((command, now));
                }
                // Pre-prepare counts as the primary's prepare vote; add
                // ours and broadcast it.
                slot.prepares.add(from);
                slot.prepares.add(self.id);
                self.broadcast(&mut out, PbftMsg::Prepare { view, seq, digest });
                self.try_advance(seq, now, &mut out);
            }
            PbftMsg::Prepare { view, seq, digest } => {
                if view != self.view || self.view_changing || seq <= self.last_exec {
                    return out;
                }
                let slot = self.log.entry(seq).or_default();
                if slot.digest.is_some_and(|d| d != digest) {
                    return out;
                }
                slot.prepares.add(from);
                self.try_advance(seq, now, &mut out);
            }
            PbftMsg::Commit { view, seq, digest } => {
                if view != self.view || self.view_changing || seq <= self.last_exec {
                    return out;
                }
                let slot = self.log.entry(seq).or_default();
                if slot.digest.is_some_and(|d| d != digest) {
                    return out;
                }
                slot.commits.add(from);
                self.try_advance(seq, now, &mut out);
            }
            PbftMsg::ViewChange { new_view, prepared } => {
                if new_view <= self.view && !(new_view == self.view && self.view_changing) {
                    return out;
                }
                let votes = self.vc_votes.entry(new_view).or_default();
                votes.insert(from, prepared);
                let votes_len = votes.len();
                // Join the view change once f + 1 replicas demand it.
                if votes_len > self.f() && !(self.view_changing && self.view >= new_view) {
                    self.start_view_change(new_view, &mut out);
                }
                self.maybe_install_view(new_view, now, &mut out);
            }
            PbftMsg::Checkpoint { seq, state_digest } => {
                self.record_checkpoint_vote(from, seq, state_digest);
            }
            PbftMsg::NewView { new_view, proposals } => {
                if new_view < self.view {
                    return out;
                }
                let expected_primary = self.members[(new_view as usize) % self.m()];
                if from != expected_primary {
                    return out;
                }
                self.adopt_view(new_view);
                // Process the re-proposals exactly like pre-prepares.
                for (seq, command) in proposals {
                    let o = self.on_message(
                        expected_primary,
                        PbftMsg::PrePrepare { view: new_view, seq, command },
                        now,
                    );
                    out.extend(o);
                }
                // Re-submit pending requests to the new primary.
                let pending: Vec<Command> =
                    self.pending.iter().map(|(c, _)| c.clone()).collect();
                for c in pending {
                    let primary = self.primary();
                    if primary != self.id {
                        self.send(&mut out, primary, PbftMsg::Request(c));
                    }
                }
            }
        }
        out
    }

    fn try_advance(&mut self, seq: u64, now: u64, out: &mut Outbox) {
        let quorum = self.quorum();
        let view = self.view;
        let Some(slot) = self.log.get_mut(&seq) else { return };
        let Some(digest) = slot.digest else { return };
        // Prepared: 2f + 1 matching prepares (incl. primary's implicit
        // and our own).
        if slot.prepares.len() >= quorum && !slot.sent_commit {
            slot.sent_commit = true;
            slot.commits.add(self.id);
            let msg = PbftMsg::Commit { view, seq, digest };
            self.broadcast(out, msg);
        }
        let Some(slot) = self.log.get_mut(&seq) else { return };
        if slot.commits.len() >= quorum && !slot.committed {
            slot.committed = true;
        }
        self.execute_ready(now, out);
    }

    fn execute_ready(&mut self, now: u64, out: &mut Outbox) {
        loop {
            let next = self.last_exec + 1;
            let Some(slot) = self.log.get_mut(&next) else { break };
            if !slot.committed || slot.executed {
                break;
            }
            slot.executed = true;
            let command = slot.command.clone().expect("committed slot has a command");
            self.last_exec = next;
            self.executed_ids.insert(command.id);
            self.pending.retain(|(c, _)| c.id != command.id);
            // Chain the state digest (deterministic across replicas).
            self.running_state = prever_crypto::sha256::sha256_concat(&[
                self.running_state.as_bytes(),
                command.digest().as_bytes(),
            ]);
            self.executed.push(Decided { slot: next, command, at: now });
            prever_obs::counter("pbft.executed").inc();
            if self.last_exec.is_multiple_of(CHECKPOINT_INTERVAL) {
                let msg = PbftMsg::Checkpoint {
                    seq: self.last_exec,
                    state_digest: self.running_state,
                };
                self.broadcast(out, msg);
                self.record_checkpoint_vote(self.id, self.last_exec, self.running_state);
            }
        }
    }

    fn record_checkpoint_vote(&mut self, from: NodeId, seq: u64, state_digest: Digest) {
        if seq <= self.stable_seq {
            return;
        }
        let votes = self.checkpoint_votes.entry((seq, state_digest)).or_default();
        votes.add(from);
        if votes.len() >= self.quorum() {
            // Stable: truncate everything at or below it.
            prever_obs::log!(Debug, "replica {} stable checkpoint at seq {seq}", self.id);
            self.stable_seq = seq;
            self.log.retain(|s, slot| *s > seq || !slot.executed);
            self.checkpoint_votes.retain(|(s, _), _| *s > seq);
        }
    }

    /// Initiates (or joins) a view change towards `new_view`.
    pub fn start_view_change(&mut self, new_view: u64, out: &mut Outbox) {
        if new_view <= self.view && self.view_changing {
            return;
        }
        prever_obs::log!(Warn, "replica {} abandons view {} for view {new_view}", self.id, self.view);
        prever_obs::counter("pbft.view_changes.started").inc();
        self.view = new_view;
        self.view_changing = true;
        // Prepared certificates above last_exec.
        let prepared: Vec<(u64, u64, Command)> = self
            .log
            .iter()
            .filter(|(seq, s)| {
                **seq > self.last_exec && s.prepares.len() >= self.quorum() && !s.executed
            })
            .filter_map(|(seq, s)| s.command.clone().map(|c| (*seq, s.view, c)))
            .collect();
        let msg = PbftMsg::ViewChange { new_view, prepared: prepared.clone() };
        self.broadcast(out, msg);
        // Record our own vote.
        self.vc_votes.entry(new_view).or_default().insert(self.id, prepared);
    }

    fn maybe_install_view(&mut self, new_view: u64, now: u64, out: &mut Outbox) {
        let expected_primary = self.members[(new_view as usize) % self.m()];
        if expected_primary != self.id {
            return;
        }
        let Some(votes) = self.vc_votes.get(&new_view) else { return };
        if votes.len() < self.quorum() {
            return;
        }
        if !self.view_changing && self.view == new_view {
            return; // already installed
        }
        // Merge prepared certificates: per seq keep the highest view.
        let mut merged: BTreeMap<u64, (u64, Command)> = BTreeMap::new();
        for prepared in votes.values() {
            for (seq, view, command) in prepared {
                if *seq <= self.last_exec {
                    continue;
                }
                let replace = merged.get(seq).is_none_or(|(v, _)| v < view);
                if replace {
                    merged.insert(*seq, (*view, command.clone()));
                }
            }
        }
        // Fill gaps with no-ops up to the max re-proposed seq.
        let max_seq = merged.keys().next_back().copied().unwrap_or(self.last_exec);
        let proposals: Vec<(u64, Command)> = (self.last_exec + 1..=max_seq)
            .map(|seq| {
                let cmd = merged.get(&seq).map(|(_, c)| c.clone()).unwrap_or_else(noop);
                (seq, cmd)
            })
            .collect();
        prever_obs::log!(
            Info,
            "replica {} installs view {new_view} with {} re-proposals",
            self.id,
            proposals.len()
        );
        self.adopt_view(new_view);
        self.next_seq = max_seq.max(self.last_exec);
        let msg = PbftMsg::NewView { new_view, proposals: proposals.clone() };
        self.broadcast(out, msg);
        // Apply the proposals locally as pre-prepares.
        for (seq, command) in proposals {
            let digest = command.digest();
            let slot = self.log.entry(seq).or_default();
            slot.view = new_view;
            slot.digest = Some(digest);
            slot.command = Some(command);
            slot.prepares.add(self.id);
        }
        // Propose any pending requests afresh.
        let pending: Vec<Command> = self.pending.iter().map(|(c, _)| c.clone()).collect();
        for c in pending {
            self.propose(c, out);
        }
        let _ = now;
    }

    fn adopt_view(&mut self, new_view: u64) {
        self.view = new_view;
        self.view_changing = false;
        // Drop un-prepared slot state from older views; prepared entries
        // are re-established via the NewView proposals.
        let last_exec = self.last_exec;
        self.log.retain(|seq, s| *seq <= last_exec || s.executed || s.committed);
        for s in self.log.values_mut() {
            if !s.executed && !s.committed {
                s.prepares = VoteSet::new();
                s.commits = VoteSet::new();
                s.sent_commit = false;
            }
        }
        self.vc_votes.retain(|v, _| *v > new_view);
    }

    /// Liveness tick: returns view-change messages if a pending request
    /// has been stuck longer than `timeout`.
    pub fn on_tick(&mut self, now: u64, timeout: u64) -> Outbox {
        let mut out = Outbox::new();
        if self.byz == Byzantine::Silent {
            return out;
        }
        if self.has_stale_pending(now, timeout) {
            // Refresh pending timestamps so we escalate one view per
            // timeout period rather than every tick.
            for p in self.pending.iter_mut() {
                p.1 = now;
            }
            let next = self.view + 1;
            self.start_view_change(next, &mut out);
        }
        out
    }
}

const TIMER_TICK: u64 = 1;
const TICK_EVERY: u64 = 25_000; // 25 ms
/// Request-staleness threshold before a replica votes for a view change.
pub const VIEW_TIMEOUT: u64 = 150_000; // 150 ms

/// Simulator adapter around [`PbftCore`] for a full-membership cluster.
#[derive(Clone, Debug)]
pub struct PbftNode {
    /// The protocol core (public for test inspection).
    pub core: PbftCore,
}

impl PbftNode {
    /// Creates replica `id` of an `n`-replica cluster.
    pub fn new(id: NodeId, n: usize, byz: Byzantine) -> Self {
        PbftNode { core: PbftCore::new(id, (0..n).collect(), byz) }
    }

    /// Executed commands (excluding no-ops).
    pub fn executed(&self) -> Vec<&Decided> {
        self.core.executed().iter().filter(|d| d.command.id != NOOP_ID).collect()
    }
}

impl Actor for PbftNode {
    type Msg = PbftMsg;

    fn on_start(&mut self, ctx: &mut Ctx<PbftMsg>) {
        ctx.set_timer(TICK_EVERY, TIMER_TICK);
    }

    fn on_message(&mut self, from: NodeId, msg: PbftMsg, ctx: &mut Ctx<PbftMsg>) {
        // Client injections use `from == self` by convention; map them to
        // the request path.
        let out = self.core.on_message(from, msg, ctx.now());
        for (to, m) in out {
            ctx.send(to, m);
        }
    }

    fn on_timer(&mut self, timer: u64, ctx: &mut Ctx<PbftMsg>) {
        if timer == TIMER_TICK {
            let out = self.core.on_tick(ctx.now(), VIEW_TIMEOUT);
            for (to, m) in out {
                ctx.send(to, m);
            }
            ctx.set_timer(TICK_EVERY, TIMER_TICK);
        }
    }
}

/// Builds an honest `n`-replica PBFT cluster.
pub fn cluster(n: usize) -> Vec<PbftNode> {
    (0..n).map(|id| PbftNode::new(id, n, Byzantine::Honest)).collect()
}

/// Builds a cluster with per-replica behaviors.
pub fn cluster_with(behaviors: &[Byzantine]) -> Vec<PbftNode> {
    let n = behaviors.len();
    behaviors
        .iter()
        .enumerate()
        .map(|(id, &b)| PbftNode::new(id, n, b))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prever_sim::{NetConfig, Simulation};

    fn submit(sim: &mut Simulation<PbftNode>, to: NodeId, id: u64) {
        sim.inject(to, to, PbftMsg::Request(Command::new(id, format!("cmd-{id}"))), sim.now() + 1);
    }

    fn ids_of(node: &PbftNode) -> Vec<u64> {
        node.executed().iter().map(|d| d.command.id).collect()
    }

    #[test]
    fn commits_on_clean_run() {
        let n = 4;
        let mut sim = Simulation::new(cluster(n), NetConfig::default(), 1);
        for i in 0..20 {
            submit(&mut sim, 0, i);
        }
        let ok = sim.run_until_pred(1_000_000, |nodes| {
            nodes.iter().all(|nd| nd.core.executed_commands() >= 20)
        });
        assert!(ok, "not all replicas executed all commands");
        let reference = ids_of(sim.node(0));
        assert_eq!(reference.len(), 20);
        for i in 1..n {
            assert_eq!(ids_of(sim.node(i)), reference, "replica {i} diverged");
        }
    }

    #[test]
    fn happy_path_message_counts() {
        // A clean 4-replica run has a fully predictable message budget;
        // any retransmit, duplicate, or silent loss shifts these counts.
        let n = 4;
        let cmds = 5u64; // below CHECKPOINT_INTERVAL: no checkpoint traffic
        let mut sim = Simulation::new(cluster(n), NetConfig::default(), 77);
        for i in 0..cmds {
            submit(&mut sim, 0, i);
        }
        let ok = sim.run_until_pred(1_000_000, |nodes| {
            nodes.iter().all(|nd| nd.core.executed_commands() as u64 >= cmds)
        });
        assert!(ok, "run did not complete");
        // Drain in-flight traffic so every sent message is received.
        let deadline = sim.now() + 200_000;
        sim.run_until(deadline);
        for i in 0..n {
            assert_eq!(sim.node(i).core.view(), 0, "no view change expected");
        }
        // Primary: relays each request to the 3 backups, pre-prepares
        // each command once, and commits; its pre-prepare doubles as its
        // prepare vote, so it sends no explicit prepares.
        let s0 = sim.node(0).core.msg_stats();
        assert_eq!(s0.sent("request"), 3 * cmds);
        assert_eq!(s0.sent("pre_prepare"), 3 * cmds);
        assert_eq!(s0.sent("prepare"), 0);
        assert_eq!(s0.sent("commit"), 3 * cmds);
        assert_eq!(s0.recv("prepare"), 3 * cmds, "one prepare per backup per command");
        assert_eq!(s0.recv("commit"), 3 * cmds);
        // Backups: one pre-prepare in, one prepare broadcast (3 peers),
        // one commit broadcast per command; no pre-prepares out.
        for i in 1..n {
            let s = sim.node(i).core.msg_stats();
            assert_eq!(s.recv("request"), cmds, "backup {i} relayed-request count");
            assert_eq!(s.recv("pre_prepare"), cmds, "backup {i}");
            assert_eq!(s.sent("pre_prepare"), 0, "backup {i}");
            assert_eq!(s.sent("prepare"), 3 * cmds, "backup {i}");
            assert_eq!(s.sent("commit"), 3 * cmds, "backup {i}");
            assert_eq!(s.recv("prepare"), 2 * cmds, "backup {i} hears the other two backups");
            assert_eq!(s.recv("commit"), 3 * cmds, "backup {i}");
        }
        // Conservation: with no drops and no crashes, every message sent
        // is received exactly once (client injections are not receives).
        let total_sent: u64 = (0..n).map(|i| sim.node(i).core.msg_stats().total_sent()).sum();
        let total_recv: u64 = (0..n).map(|i| sim.node(i).core.msg_stats().total_recv()).sum();
        assert_eq!(total_sent, total_recv, "messages were lost or duplicated");
    }

    #[test]
    fn requests_to_backups_are_forwarded() {
        let n = 4;
        let mut sim = Simulation::new(cluster(n), NetConfig::default(), 2);
        for i in 0..8 {
            submit(&mut sim, (i % n as u64) as usize, i);
        }
        let ok = sim.run_until_pred(1_000_000, |nodes| {
            nodes.iter().all(|nd| nd.core.executed_commands() >= 8)
        });
        assert!(ok);
    }

    #[test]
    fn tolerates_f_silent_replicas() {
        // n = 7, f = 2: two silent replicas must not block progress.
        let behaviors = [
            Byzantine::Honest,
            Byzantine::Honest,
            Byzantine::Silent,
            Byzantine::Honest,
            Byzantine::Silent,
            Byzantine::Honest,
            Byzantine::Honest,
        ];
        let mut sim = Simulation::new(cluster_with(&behaviors), NetConfig::default(), 3);
        for i in 0..10 {
            submit(&mut sim, 0, i);
        }
        let ok = sim.run_until_pred(3_000_000, |nodes| {
            nodes
                .iter()
                .enumerate()
                .filter(|(i, _)| behaviors[*i] == Byzantine::Honest)
                .all(|(_, nd)| nd.core.executed_commands() >= 10)
        });
        assert!(ok, "honest replicas failed to execute with f silent nodes");
    }

    #[test]
    fn view_change_replaces_crashed_primary() {
        let n = 4;
        let mut sim = Simulation::new(cluster(n), NetConfig::default(), 4);
        // Commit a first batch under primary 0.
        for i in 0..3 {
            submit(&mut sim, 0, i);
        }
        assert!(sim.run_until_pred(1_000_000, |nodes| nodes[1].core.executed_commands() >= 3));
        // Crash the primary; submit to a backup.
        sim.crash(0);
        for i in 3..6 {
            submit(&mut sim, 1, i);
        }
        let ok = sim.run_until_pred(20_000_000, |nodes| {
            (1..4).all(|i| nodes[i].core.executed_commands() >= 6)
        });
        assert!(ok, "view change failed to restore progress");
        // All survivors in the same, higher view with identical logs.
        let v = sim.node(1).core.view();
        assert!(v >= 1, "view should have advanced");
        let reference = ids_of(sim.node(1));
        for i in 2..4 {
            assert_eq!(ids_of(sim.node(i)), reference);
        }
    }

    #[test]
    fn safety_under_equivocating_primary() {
        // Primary 0 equivocates. Safety: no two honest replicas execute
        // different commands at the same slot. Liveness: a view change
        // eventually replaces the primary and the request commits.
        let behaviors = [
            Byzantine::EquivocatingPrimary,
            Byzantine::Honest,
            Byzantine::Honest,
            Byzantine::Honest,
        ];
        let mut sim = Simulation::new(cluster_with(&behaviors), NetConfig::default(), 5);
        for i in 0..4 {
            submit(&mut sim, 1, i);
        }
        sim.run_until(30_000_000);
        // Safety check across honest replicas.
        for slot in 1..=10u64 {
            let mut seen: Option<u64> = None;
            for i in 1..4 {
                if let Some(d) = sim
                    .node(i)
                    .core
                    .executed()
                    .iter()
                    .find(|d| d.slot == slot)
                {
                    if let Some(prev) = seen {
                        assert_eq!(
                            prev, d.command.id,
                            "replicas diverged at slot {slot}"
                        );
                    }
                    seen = Some(d.command.id);
                }
            }
        }
        // Liveness: all four commands execute at the honest replicas.
        for i in 1..4 {
            assert!(
                sim.node(i).core.executed_commands() >= 4,
                "replica {i} executed only {} commands",
                sim.node(i).core.executed_commands()
            );
        }
        assert!(sim.node(1).core.view() >= 1, "equivocation should force a view change");
    }

    #[test]
    fn no_duplicate_execution_of_reinjected_requests() {
        let n = 4;
        let mut sim = Simulation::new(cluster(n), NetConfig::default(), 6);
        // The same command id submitted to several replicas.
        for target in 0..n {
            sim.inject(target, target, PbftMsg::Request(Command::new(42, "dup")), sim.now() + 1);
        }
        sim.run_until(2_000_000);
        for i in 0..n {
            let count = sim
                .node(i)
                .core
                .executed()
                .iter()
                .filter(|d| d.command.id == 42)
                .count();
            assert_eq!(count, 1, "replica {i} executed the command {count} times");
        }
    }

    #[test]
    fn checkpoints_truncate_the_log() {
        let n = 4;
        let mut sim = Simulation::new(cluster(n), NetConfig::default(), 31);
        let total = 5 * CHECKPOINT_INTERVAL; // 80 commands
        for i in 0..total {
            submit(&mut sim, 0, i);
        }
        let ok = sim.run_until_pred(20_000_000, |nodes| {
            nodes.iter().all(|nd| nd.core.executed_commands() as u64 >= total)
        });
        assert!(ok);
        // Drain in-flight checkpoint votes.
        let deadline = sim.now() + 100_000;
        sim.run_until(deadline);
        for r in 0..n {
            let core = &sim.node(r).core;
            assert!(
                core.stable_seq() >= total - CHECKPOINT_INTERVAL,
                "replica {r}: stable at {}",
                core.stable_seq()
            );
            assert!(
                core.log_len() as u64 <= 2 * CHECKPOINT_INTERVAL,
                "replica {r}: log holds {} entries after {total} commands",
                core.log_len()
            );
            // Execution record intact.
            assert_eq!(core.executed_commands() as u64, total);
        }
    }

    #[test]
    fn checkpoint_digests_agree_across_replicas() {
        // The chained state digest is deterministic: replicas reach the
        // same stable checkpoint, proving identical execution order.
        let mut sim = Simulation::new(cluster(4), NetConfig::default(), 32);
        for i in 0..CHECKPOINT_INTERVAL {
            submit(&mut sim, (i % 4) as usize, i);
        }
        assert!(sim.run_until_pred(10_000_000, |nodes| {
            nodes.iter().all(|nd| nd.core.stable_seq() >= CHECKPOINT_INTERVAL)
        }));
    }

    #[test]
    fn deterministic_across_runs() {
        let run = |seed| {
            let mut sim = Simulation::new(cluster(4), NetConfig::default(), seed);
            for i in 0..10 {
                submit(&mut sim, 0, i);
            }
            sim.run_until(2_000_000);
            sim.node(2)
                .core
                .executed()
                .iter()
                .map(|d| (d.slot, d.command.id, d.at))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
    }
}
