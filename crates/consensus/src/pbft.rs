//! Practical Byzantine Fault Tolerance (Castro & Liskov, OSDI '99).
//!
//! The Byzantine-fault-tolerant substrate for PReVer's federated
//! deployments, where data managers are *mutually distrustful* (paper
//! §1, RC4): the permissioned-blockchain systems the paper builds on
//! (Hyperledger Fabric's ordering service, SharPer, Qanaat) all reduce
//! to PBFT-family consensus. Implemented:
//!
//! * the three-phase normal path (pre-prepare → prepare → commit) with
//!   `2f + 1` quorums over `n = 3f + 1` replicas;
//! * view changes carrying prepared certificates, so a faulty primary is
//!   replaced without losing prepared requests;
//! * in-order execution with per-command decision timestamps;
//! * pluggable [`Byzantine`] behaviors (silent replica, equivocating
//!   primary, stale-message replayer) for fault-injection tests;
//! * a **state-transfer protocol** ([`PbftMsg::StateRequest`] /
//!   [`PbftMsg::StateResponse`]): a restarted or lagging replica fetches
//!   the executed suffix from its peers, applies whatever `f + 1`
//!   responders agree on, and rejoins at the quorum's view;
//! * **durable recovery** through the ledger journal
//!   ([`crate::durable::DurableLog`]): executed commands and prepare-vote
//!   bindings are persisted, so a replica rebuilt after a
//!   crash-with-state-loss neither forgets its history nor accidentally
//!   equivocates on votes it cast before dying.
//!
//! Implemented in full: the three-phase normal path, view changes, and
//! **stable checkpoints** (2f + 1 matching state-digest votes every
//! [`CHECKPOINT_INTERVAL`] executions truncate the in-memory log).
//! Remaining simplifications, chosen because they do not affect the
//! throughput/latency *shape* E3 measures: no MAC/signature
//! authentication (the simulator delivers messages unforged; the crypto
//! exists in `prever-crypto` and is charged in the E2 bench), and
//! new-view messages are trusted structurally rather than re-verified.
//!
//! The protocol state machine lives in [`PbftCore`], which is sans-IO
//! (inputs in, `(destination, message)` pairs out) so the sharded
//! deployment can embed per-shard instances; [`PbftNode`] adapts it to
//! the simulator.

use crate::durable::DurableLog;
use crate::{Batch, BatchConfig, Command, Decided};
use prever_crypto::Digest;
use prever_sim::{Actor, Ctx, NodeId, VoteSet};
use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};

/// PBFT protocol messages.
///
/// Since DESIGN.md §11 the unit of agreement is a [`Batch`]: requests,
/// pre-prepares, view-change certificates, and state transfer all carry
/// whole batches (cheap `Arc` clones), while prepare/commit votes carry
/// only the constant-size Merkle batch digest.
#[derive(Clone, Debug)]
pub enum PbftMsg {
    /// Client request batch (injected or relayed between replicas).
    Request(Batch),
    /// Phase 1: the primary assigns `seq` to `batch` in `view`.
    PrePrepare {
        /// View.
        view: u64,
        /// Sequence number.
        seq: u64,
        /// Proposed batch.
        batch: Batch,
    },
    /// Phase 2 vote.
    Prepare {
        /// View.
        view: u64,
        /// Sequence number.
        seq: u64,
        /// Digest of the pre-prepared command.
        digest: Digest,
    },
    /// Phase 3 vote.
    Commit {
        /// View.
        view: u64,
        /// Sequence number.
        seq: u64,
        /// Digest.
        digest: Digest,
    },
    /// View-change vote with prepared certificates.
    ViewChange {
        /// Proposed new view.
        new_view: u64,
        /// Prepared (seq, view, batch) triples above the last execution.
        /// Carrying full batch payloads (not just digests) is what lets
        /// a NewView replay a mid-flight batch intact.
        prepared: Vec<(u64, u64, Batch)>,
    },
    /// New primary's installation message.
    NewView {
        /// The installed view.
        new_view: u64,
        /// Re-proposed (seq, batch) pairs.
        proposals: Vec<(u64, Batch)>,
    },
    /// Periodic checkpoint vote: "my state after executing `seq`
    /// commands has this digest". `2f + 1` matching votes make the
    /// checkpoint *stable* and let replicas truncate their logs.
    Checkpoint {
        /// Executed sequence number the digest covers.
        seq: u64,
        /// Chained digest of the execution history up to `seq`.
        state_digest: Digest,
    },
    /// State-transfer request from a lagging or restarted replica:
    /// "I have executed through `have`; send me what comes after."
    StateRequest {
        /// Highest sequence number the requester has executed.
        have: u64,
    },
    /// State-transfer response: the responder's executed suffix.
    ///
    /// The requester applies a command once `f + 1` responders agree on
    /// it, so no single faulty responder can feed it a fake history.
    StateResponse {
        /// The responder's current view.
        view: u64,
        /// The responder's highest stable checkpoint.
        stable_seq: u64,
        /// The responder's chained state digest after its whole suffix.
        state_digest: Digest,
        /// Executed `(seq, batch)` pairs above the requester's `have`
        /// (batch sequence numbers).
        entries: Vec<(u64, Batch)>,
    },
}

/// Executed-command count between checkpoint votes.
pub const CHECKPOINT_INTERVAL: u64 = 16;

/// Re-request an unanswered state transfer after this long (µs).
const SYNC_RETRY: u64 = 200_000;
/// Sentinel "view" a replica attaches to already-executed entries in
/// its view-change vote: a committed slot must outrank any conflicting
/// prepared certificate when the new primary merges votes.
const COMMITTED_VIEW: u64 = u64::MAX;

/// Cap on the [`Byzantine::StaleReplayer`] replay stash.
const REPLAY_STASH_CAP: usize = 12;

/// Number of distinct [`PbftMsg`] kinds (stats array arity).
const N_KINDS: usize = 9;

/// Message-kind suffixes, indexed by [`PbftMsg::kind_idx`]; also the
/// tail of the registry counter names (`pbft.msg.sent.<kind>`).
const KIND_NAMES: [&str; N_KINDS] = [
    "request",
    "pre_prepare",
    "prepare",
    "commit",
    "view_change",
    "new_view",
    "checkpoint",
    "state_request",
    "state_response",
];

/// Span names per message kind (histograms of wall-clock handling time).
const SPAN_NAMES: [&str; N_KINDS] = [
    "pbft.request",
    "pbft.pre_prepare",
    "pbft.prepare",
    "pbft.commit",
    "pbft.view_change",
    "pbft.new_view",
    "pbft.checkpoint",
    "pbft.state_request",
    "pbft.state_response",
];

/// Registry counters for messages sent, by kind.
const SENT_COUNTERS: [&str; N_KINDS] = [
    "pbft.msg.sent.request",
    "pbft.msg.sent.pre_prepare",
    "pbft.msg.sent.prepare",
    "pbft.msg.sent.commit",
    "pbft.msg.sent.view_change",
    "pbft.msg.sent.new_view",
    "pbft.msg.sent.checkpoint",
    "pbft.msg.sent.state_request",
    "pbft.msg.sent.state_response",
];

/// Registry counters for messages received, by kind.
const RECV_COUNTERS: [&str; N_KINDS] = [
    "pbft.msg.recv.request",
    "pbft.msg.recv.pre_prepare",
    "pbft.msg.recv.prepare",
    "pbft.msg.recv.commit",
    "pbft.msg.recv.view_change",
    "pbft.msg.recv.new_view",
    "pbft.msg.recv.checkpoint",
    "pbft.msg.recv.state_request",
    "pbft.msg.recv.state_response",
];

impl PbftMsg {
    /// Wraps one client command as a request message (the form test
    /// drivers, benches, and the simulator inject).
    pub fn request(command: Command) -> PbftMsg {
        PbftMsg::Request(Batch::single(command))
    }

    /// Compact kind index into the per-type stats arrays.
    fn kind_idx(&self) -> usize {
        match self {
            PbftMsg::Request(_) => 0,
            PbftMsg::PrePrepare { .. } => 1,
            PbftMsg::Prepare { .. } => 2,
            PbftMsg::Commit { .. } => 3,
            PbftMsg::ViewChange { .. } => 4,
            PbftMsg::NewView { .. } => 5,
            PbftMsg::Checkpoint { .. } => 6,
            PbftMsg::StateRequest { .. } => 7,
            PbftMsg::StateResponse { .. } => 8,
        }
    }

    /// The message-kind name (`"pre_prepare"`, `"commit"`, …).
    pub fn kind(&self) -> &'static str {
        KIND_NAMES[self.kind_idx()]
    }
}

/// Per-replica message counts by type: a deterministic, test-friendly
/// mirror of the global `pbft.msg.{sent,recv}.*` registry counters
/// (the registry aggregates across every replica in the process; this
/// struct is per [`PbftCore`], so tests can assert exact counts).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MsgStats {
    sent: [u64; N_KINDS],
    recv: [u64; N_KINDS],
}

impl MsgStats {
    fn idx(kind: &str) -> usize {
        KIND_NAMES
            .iter()
            .position(|k| *k == kind)
            .unwrap_or_else(|| panic!("unknown PBFT message kind `{kind}`"))
    }

    /// Messages of `kind` sent by this replica.
    pub fn sent(&self, kind: &str) -> u64 {
        self.sent[Self::idx(kind)]
    }

    /// Messages of `kind` received by this replica (client injections,
    /// which arrive with `from == self`, are not counted).
    pub fn recv(&self, kind: &str) -> u64 {
        self.recv[Self::idx(kind)]
    }

    /// Total messages sent.
    pub fn total_sent(&self) -> u64 {
        self.sent.iter().sum()
    }

    /// Total messages received.
    pub fn total_recv(&self) -> u64 {
        self.recv.iter().sum()
    }
}

/// Byzantine behavior injection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Byzantine {
    /// Honest replica.
    #[default]
    Honest,
    /// Crashes silently: emits no messages (but the process looks alive).
    Silent,
    /// As primary, sends conflicting pre-prepares to different halves of
    /// the replica set.
    EquivocatingPrimary,
    /// Stashes copies of its own outgoing protocol messages and replays
    /// the stale batch on every tick — old-view votes, duplicate
    /// prepares, and long-executed pre-prepares keep arriving forever.
    StaleReplayer,
}

/// The command used to fill view-change gaps.
pub const NOOP_ID: u64 = u64::MAX;

/// A prepared certificate carried in view-change messages:
/// `(sequence, view, batch)`.
pub type PreparedCert = (u64, u64, Batch);

fn noop() -> Batch {
    Batch::single(Command::new(NOOP_ID, Vec::new()))
}

/// Extends a chained execution-history digest by one command.
///
/// This is *the* state digest PBFT checkpoints, state transfer, and the
/// chaos harness all agree on: `D_i = H(D_{i-1} ‖ D(cmd_i))` starting
/// from [`Digest::ZERO`].
pub fn chain_digest(prev: Digest, command: &Command) -> Digest {
    prever_crypto::sha256::sha256_concat(&[prev.as_bytes(), command.digest().as_bytes()])
}

#[derive(Clone, Debug, Default)]
struct Slot {
    view: u64,
    digest: Option<Digest>,
    batch: Option<Batch>,
    prepares: VoteSet,
    commits: VoteSet,
    /// Votes that arrived before the pre-prepare fixed this slot's
    /// digest, held with the digest they voted for. Counting them
    /// blindly would let an equivocating primary's conflicting votes
    /// inflate the tally for whichever command arrives here later;
    /// only matching votes are drained in once the digest is known.
    early_prepares: Vec<(NodeId, Digest)>,
    early_commits: Vec<(NodeId, Digest)>,
    sent_commit: bool,
    committed: bool,
    executed: bool,
}

impl Slot {
    /// Fixes the slot's digest and counts buffered votes that match it.
    fn fix_digest(&mut self, view: u64, digest: Digest, batch: Batch) {
        if self.digest.is_some_and(|d| d != digest) {
            // The slot is being re-resolved to a different batch (a
            // view-change merge). Every recorded vote and flag refers
            // to the OLD digest — carrying them over would let the new
            // batch execute on the strength of a quorum it never had.
            self.prepares = VoteSet::new();
            self.commits = VoteSet::new();
            self.sent_commit = false;
            self.committed = false;
        }
        self.view = view;
        self.digest = Some(digest);
        self.batch = Some(batch);
        for (voter, d) in std::mem::take(&mut self.early_prepares) {
            if d == digest {
                self.prepares.add(voter);
            }
        }
        for (voter, d) in std::mem::take(&mut self.early_commits) {
            if d == digest {
                self.commits.add(voter);
            }
        }
    }
}

/// The sans-IO PBFT state machine for one replica within a member set.
#[derive(Clone, Debug)]
pub struct PbftCore {
    id: NodeId,
    /// Sorted member ids; `members[view % m]` is the view's primary.
    members: Vec<NodeId>,
    view: u64,
    /// Next sequence number to assign (primary only).
    next_seq: u64,
    /// Highest executed sequence number (0 = nothing; seqs start at 1).
    last_exec: u64,
    log: BTreeMap<u64, Slot>,
    /// Per-command execution history (`slot` is the dense global command
    /// index, 1-based — what benches and the chaos harness compare).
    executed: Vec<Decided>,
    /// Per-batch execution history, keyed by batch sequence number
    /// (dense from 1): the unit of durable exec records, state
    /// transfer, and view-change committed entries.
    executed_batches: Vec<(u64, Batch, u64)>,
    executed_ids: HashSet<u64>,
    /// Requests awaiting execution (liveness tracking at backups).
    pending: VecDeque<(Command, u64)>,
    /// Batching/pipelining knobs (default = unbatched).
    cfg: BatchConfig,
    /// Primary-side proposal accumulator: commands waiting to be cut
    /// into the next batch, with arrival times.
    accum: VecDeque<(Command, u64)>,
    /// Relay accumulator: newly pending client commands waiting to be
    /// re-broadcast to the other replicas (the PBFT liveness relay),
    /// batched under the same fill policy as proposals.
    relay_accum: VecDeque<(Command, u64)>,
    /// Set by [`Self::on_urgent_request`]: suspends the fill-delay gate
    /// so partial batches cut immediately, until both accumulators
    /// drain. Latency-critical commands must not wait out `max_delay`.
    urgent: bool,
    /// View-change votes: new_view → voters and their prepared sets.
    vc_votes: BTreeMap<u64, BTreeMap<NodeId, Vec<PreparedCert>>>,
    /// Last time we re-sent an old-view vote to a laggard, keyed by
    /// (view, peer). The help reply is itself a ViewChange frame, so
    /// two replicas both past that view would answer each other's
    /// answers forever — and duplicating links turn that ping-pong
    /// into an exponential storm. One reply per timeout window is
    /// enough: a genuinely stuck laggard re-broadcasts its demand on
    /// every view-change retransmit tick.
    vc_helped: BTreeMap<(u64, NodeId), u64>,
    /// Set while this replica has abandoned `view` and waits for NewView.
    view_changing: bool,
    /// Chained digest over the executed history (the checkpoint state).
    running_state: Digest,
    /// Checkpoint votes: (seq, digest) → distinct voters.
    checkpoint_votes: BTreeMap<(u64, Digest), VoteSet>,
    /// Highest stable (2f+1-certified) checkpoint.
    stable_seq: u64,
    /// Per-type message send/receive counts.
    stats: MsgStats,
    byz: Byzantine,
    /// Highest sequence number seen in any peer message — evidence of
    /// how far the cluster has advanced past us.
    max_seen_seq: u64,
    /// Virtual time of the last local execution or sync progress.
    last_progress_at: u64,
    /// Set while a state transfer is in flight.
    syncing: bool,
    /// When the in-flight state transfer was requested (for retries).
    last_sync_at: u64,
    /// State-transfer responses: responder → (view, batch seq → batch).
    sync_responses: BTreeMap<NodeId, (u64, BTreeMap<u64, Batch>)>,
    /// Durable vote bindings recovered from (or destined for) the disk
    /// log: seq → (view, digest) of the prepare vote we cast.
    durable_bindings: BTreeMap<u64, (u64, Digest)>,
    /// Bindings created since the last [`Self::take_bindings`] drain.
    new_bindings: Vec<(u64, u64, Digest)>,
    /// Prepared certificates reached since the last
    /// [`Self::take_prepared`] drain.
    new_prepared: Vec<PreparedCert>,
    /// Every prepared certificate this replica holds (highest view per
    /// seq), retained across view changes — `adopt_view` resets live
    /// prepare tallies, but the *fact* that a slot once prepared must
    /// survive until the slot executes, or a later view change could
    /// no-op-fill a slot that committed at another replica on the
    /// strength of our commit vote. Re-seeded from disk on recovery.
    certs: BTreeMap<u64, (u64, Batch)>,
    /// Whether to record bindings at all (off unless the owner persists).
    record_bindings: bool,
    /// Commands applied via state transfer rather than the commit path.
    synced: u64,
    /// [`Byzantine::StaleReplayer`] stash of past outgoing messages.
    replay_stash: Vec<PbftMsg>,
    /// True while re-broadcasting the stash (suppresses re-stashing).
    replaying: bool,
    /// Protocol messages that arrived for a view this replica has not
    /// adopted yet (either a future view, or the current view while
    /// still awaiting its NewView). Links are not FIFO, so a peer's
    /// prepares routinely overtake the NewView that makes them
    /// countable; dropping them wedges any slot with a bare-quorum
    /// voter set. Replayed by [`Self::drain_view_stash`] on adoption.
    view_stash: Vec<(NodeId, PbftMsg)>,
    /// True while re-delivering the view stash (suppresses recv stats,
    /// which were already counted on first arrival).
    stash_replay: bool,
    /// Consecutive view changes without local execution progress —
    /// drives the exponential view-timeout backoff so a stuck cluster
    /// grants each successive view a longer window to make progress.
    vc_streak: u32,
    /// Virtual time of the last anti-entropy checkpoint broadcast.
    last_hb_at: u64,
}

/// `(destination, message)` pairs a core step wants sent.
pub type Outbox = Vec<(NodeId, PbftMsg)>;

impl PbftCore {
    /// Creates the core for `id` within `members`.
    pub fn new(id: NodeId, mut members: Vec<NodeId>, byz: Byzantine) -> Self {
        members.sort_unstable();
        assert!(members.contains(&id), "replica must be a member");
        PbftCore {
            id,
            members,
            view: 0,
            next_seq: 0,
            last_exec: 0,
            log: BTreeMap::new(),
            executed: Vec::new(),
            executed_batches: Vec::new(),
            executed_ids: HashSet::new(),
            pending: VecDeque::new(),
            cfg: BatchConfig::default(),
            accum: VecDeque::new(),
            relay_accum: VecDeque::new(),
            urgent: false,
            vc_votes: BTreeMap::new(),
            vc_helped: BTreeMap::new(),
            view_changing: false,
            running_state: Digest::ZERO,
            checkpoint_votes: BTreeMap::new(),
            stable_seq: 0,
            stats: MsgStats::default(),
            byz,
            max_seen_seq: 0,
            last_progress_at: 0,
            syncing: false,
            last_sync_at: 0,
            sync_responses: BTreeMap::new(),
            durable_bindings: BTreeMap::new(),
            new_bindings: Vec::new(),
            new_prepared: Vec::new(),
            certs: BTreeMap::new(),
            record_bindings: false,
            synced: 0,
            replay_stash: Vec::new(),
            replaying: false,
            view_stash: Vec::new(),
            stash_replay: false,
            vc_streak: 0,
            last_hb_at: 0,
        }
    }

    /// This replica's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The current view.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// Member count.
    pub fn m(&self) -> usize {
        self.members.len()
    }

    fn f(&self) -> usize {
        (self.m() - 1) / 3
    }

    fn quorum(&self) -> usize {
        2 * self.f() + 1
    }

    /// The primary of the current view.
    pub fn primary(&self) -> NodeId {
        self.members[(self.view as usize) % self.m()]
    }

    /// True iff this replica is the current primary.
    pub fn is_primary(&self) -> bool {
        self.primary() == self.id
    }

    /// Executed commands in order.
    pub fn executed(&self) -> &[Decided] {
        &self.executed
    }

    /// Executed batches in order: `(batch seq, batch, decided at)`,
    /// dense from sequence 1.
    pub fn executed_batches(&self) -> &[(u64, Batch, u64)] {
        &self.executed_batches
    }

    /// True iff a command with `id` has been executed (O(1); the
    /// sharded completion path calls this per vote, so a linear scan
    /// of the log would be quadratic in workload size).
    pub fn has_executed(&self, id: u64) -> bool {
        self.executed_ids.contains(&id)
    }

    /// Sets the batching/pipelining configuration (normally before the
    /// simulation starts; changing it mid-run only affects future cuts).
    pub fn set_batch_config(&mut self, cfg: BatchConfig) {
        self.cfg = cfg;
    }

    /// The active batching configuration.
    pub fn batch_config(&self) -> BatchConfig {
        self.cfg
    }

    /// Unexecuted batch slots currently in flight (pipelining depth).
    fn in_flight(&self) -> usize {
        self.next_seq.saturating_sub(self.last_exec) as usize
    }

    /// Consensus-side backlog visible to callers: unexecuted batch slots
    /// in flight. The serving front end uses this to size its
    /// `retry_after` hint under load.
    pub fn backlog(&self) -> usize {
        self.in_flight()
    }

    /// Highest stable checkpoint sequence (0 before the first).
    pub fn stable_seq(&self) -> u64 {
        self.stable_seq
    }

    /// The executed-slot count covered by the highest stable
    /// checkpoint *that this replica has locally executed*: the number
    /// of commands in executed batches with sequence ≤
    /// [`Self::stable_seq`]. Serving-layer caches keyed by slot (the
    /// gateway committed-map) may evict entries below this floor — a
    /// client still retrying a command that old has fallen behind the
    /// whole cluster's checkpoint horizon.
    pub fn stable_slot_floor(&self) -> u64 {
        let mut slots = 0u64;
        for (seq, batch, _) in &self.executed_batches {
            if *seq > self.stable_seq {
                break;
            }
            slots += batch.commands().len() as u64;
        }
        slots
    }

    /// The executed slot of command `id`, if this replica has executed
    /// it. Linear scan from the tail (recent ids are the common case);
    /// only used on the rare resubmission of an id old enough to have
    /// been evicted from the gateway committed-map.
    pub fn slot_of(&self, id: u64) -> Option<u64> {
        self.executed.iter().rev().find(|d| d.command.id == id).map(|d| d.slot)
    }

    /// Current in-memory log size (bounded by checkpoint truncation).
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Number of non-noop commands executed.
    pub fn executed_commands(&self) -> usize {
        self.executed.iter().filter(|d| d.command.id != NOOP_ID).count()
    }

    /// Number of *distinct* non-noop command ids executed. A Byzantine
    /// primary can get the same command committed at two different
    /// slots (PBFT dedups duplicate requests at the client, not the
    /// consensus layer), so the raw entry count can overstate workload
    /// progress.
    pub fn distinct_executed_commands(&self) -> usize {
        self.executed
            .iter()
            .map(|d| d.command.id)
            .filter(|&id| id != NOOP_ID)
            .collect::<HashSet<_>>()
            .len()
    }

    /// Per-type message send/receive counts for this replica.
    pub fn msg_stats(&self) -> &MsgStats {
        &self.stats
    }

    /// Highest executed sequence number (0 = nothing executed yet).
    pub fn last_exec(&self) -> u64 {
        self.last_exec
    }

    /// The chained digest over the executed history (see
    /// [`chain_digest`]).
    pub fn state_digest(&self) -> Digest {
        self.running_state
    }

    /// Number of commands applied via state transfer (vs. the normal
    /// commit path).
    pub fn synced(&self) -> u64 {
        self.synced
    }

    /// One-line internal state summary for chaos-harness debugging.
    pub fn debug_probe(&self) -> String {
        let votes: Vec<String> = self
            .vc_votes
            .iter()
            .map(|(v, m)| {
                let who: Vec<String> = m.keys().map(|k| k.to_string()).collect();
                format!("{v}:[{}]", who.join(","))
            })
            .collect();
        format!(
            "view_changing={} vc_streak={} pending={} max_seen={} vc_votes={{{}}}",
            self.view_changing,
            self.vc_streak,
            self.pending.len(),
            self.max_seen_seq,
            votes.join(" ")
        )
    }

    /// Enables durable vote-binding recording (see
    /// [`Self::take_bindings`]). Off by default so embeddings without a
    /// disk log don't accumulate bindings forever.
    pub fn set_record_bindings(&mut self, on: bool) {
        self.record_bindings = on;
    }

    /// Drains the vote bindings created since the last drain, so the
    /// owner can persist them before this step's votes hit the network.
    pub fn take_bindings(&mut self) -> Vec<(u64, u64, Digest)> {
        std::mem::take(&mut self.new_bindings)
    }

    /// Drains the prepared certificates reached since the last call
    /// (the owner writes them to disk before commit votes leave).
    pub fn take_prepared(&mut self) -> Vec<PreparedCert> {
        std::mem::take(&mut self.new_prepared)
    }

    /// Prepared certificates above `last_exec`: every slot for which
    /// this replica ever observed a `2f + 1` prepare quorum (in any
    /// view) and that has not executed yet — including certificates
    /// replayed from disk after a restart. These are what a view-change
    /// vote carries.
    pub fn prepared_certificates(&self) -> Vec<PreparedCert> {
        self.certs
            .iter()
            .filter(|(seq, _)| **seq > self.last_exec)
            .map(|(seq, (view, batch))| (*seq, *view, batch.clone()))
            .collect()
    }

    /// Remembers that `seq` prepared with `batch` in `view`; queues
    /// the certificate for persistence when recording is on.
    fn remember_cert(&mut self, seq: u64, view: u64, batch: Batch) {
        let keep = self.certs.get(&seq).is_none_or(|(v, _)| *v <= view);
        if keep {
            if self.record_bindings {
                self.new_prepared.push((seq, view, batch.clone()));
            }
            self.certs.insert(seq, (view, batch));
        }
    }

    /// Records the vote binding for `seq` (no-op unless recording is
    /// on). Keeps the highest-view binding per sequence.
    fn bind(&mut self, seq: u64, view: u64, digest: Digest) {
        if !self.record_bindings {
            return;
        }
        let keep = self.durable_bindings.get(&seq).is_none_or(|(v, _)| *v <= view);
        if keep {
            self.durable_bindings.insert(seq, (view, digest));
            self.new_bindings.push((seq, view, digest));
        }
    }

    /// Installs a recovered execution history into a *fresh* core.
    ///
    /// `entries` are `(batch seq, batch, decided_at)` from the durable
    /// log, dense from 1; `bindings` are recovered `(seq, view, digest)`
    /// vote bindings (only those above the replayed history still
    /// matter).
    pub fn install_history(
        &mut self,
        entries: Vec<(u64, Batch, u64)>,
        bindings: Vec<(u64, u64, Digest)>,
        prepared: Vec<PreparedCert>,
    ) {
        assert!(
            self.last_exec == 0 && self.executed.is_empty(),
            "install_history requires a fresh core"
        );
        for (seq, batch, at) in entries {
            assert_eq!(seq, self.last_exec + 1, "durable history must be dense");
            self.last_exec = seq;
            for command in batch.commands() {
                self.executed_ids.insert(command.id);
                self.running_state = chain_digest(self.running_state, command);
                let slot = self.executed.len() as u64 + 1;
                self.executed.push(Decided { slot, command: command.clone(), at });
            }
            self.executed_batches.push((seq, batch, at));
        }
        self.next_seq = self.last_exec;
        for (seq, view, digest) in bindings {
            if seq <= self.last_exec {
                continue;
            }
            let keep = self.durable_bindings.get(&seq).is_none_or(|(v, _)| *v <= view);
            if keep {
                self.durable_bindings.insert(seq, (view, digest));
            }
        }
        // Re-assert the prepared certificates we claimed (via commit
        // votes) before the restart; per seq keep the highest view.
        // Bypass remember_cert: these are already on disk.
        for (seq, view, command) in prepared {
            if seq <= self.last_exec {
                continue;
            }
            let keep = self.certs.get(&seq).is_none_or(|(v, _)| *v <= view);
            if keep {
                self.certs.insert(seq, (view, command));
            }
        }
    }

    /// Starts a state transfer: asks every peer for the executed suffix
    /// above our `last_exec`.
    pub fn request_sync(&mut self, now: u64) -> Outbox {
        let mut out = Outbox::new();
        if self.byz == Byzantine::Silent {
            return out;
        }
        self.syncing = true;
        self.last_sync_at = now;
        self.sync_responses.clear();
        prever_obs::counter("pbft.state_transfer.requests").inc();
        self.broadcast(&mut out, PbftMsg::StateRequest { have: self.last_exec });
        out
    }

    /// True iff a request is pending past `deadline`-aged entries.
    pub fn has_stale_pending(&self, now: u64, timeout: u64) -> bool {
        self.pending
            .front()
            .is_some_and(|(_, since)| now.saturating_sub(*since) > timeout)
    }

    /// Records `n` sends of message kind `kind` (per-core stats plus
    /// the process-global registry counter).
    fn note_sent(&mut self, kind: usize, n: u64) {
        if n == 0 {
            return;
        }
        self.stats.sent[kind] += n;
        prever_obs::counter(SENT_COUNTERS[kind]).add(n);
    }

    fn broadcast(&mut self, out: &mut Outbox, msg: PbftMsg) {
        if self.byz == Byzantine::Silent {
            return;
        }
        if self.byz == Byzantine::StaleReplayer
            && !self.replaying
            && self.replay_stash.len() < REPLAY_STASH_CAP
        {
            self.replay_stash.push(msg.clone());
        }
        let kind = msg.kind_idx();
        for &m in &self.members {
            if m != self.id {
                out.push((m, msg.clone()));
            }
        }
        self.note_sent(kind, self.m() as u64 - 1);
    }

    fn send(&mut self, out: &mut Outbox, to: NodeId, msg: PbftMsg) {
        if self.byz == Byzantine::Silent {
            return;
        }
        self.note_sent(msg.kind_idx(), 1);
        out.push((to, msg));
    }

    /// Handles a client request arriving at this replica (client entry
    /// point). The request is queued for relay to every replica so that
    /// all of them track it as pending — the standard PBFT liveness rule
    /// that lets backups accumulate view-change quorums when the primary
    /// is faulty — and, at the primary, queued for proposal; both queues
    /// are then flushed under the batching policy.
    pub fn on_request(&mut self, command: Command, now: u64) -> Outbox {
        let mut out = Outbox::new();
        self.accept_request(command, now, true);
        self.flush(now, &mut out);
        out
    }

    /// Accepts `command` and cuts it through the batching policy
    /// immediately: the fill-delay gate is suspended until the relay
    /// and proposal accumulators drain, so the command (and everything
    /// queued ahead of it) goes out now in a partial batch instead of
    /// waiting out the timer. The in-flight window still applies — if
    /// the pipeline is full the entries go the moment a slot frees.
    /// For latency-critical commands (a cross-shard decision blocks
    /// every involved shard), where a partial-batch cut is always the
    /// right trade.
    pub fn on_urgent_request(&mut self, command: Command, now: u64) -> Outbox {
        let mut out = Outbox::new();
        self.accept_request(command, now, true);
        self.urgent = true;
        self.flush(now, &mut out);
        out
    }

    /// Tracks one incoming command. `relay` is true for client
    /// injections (which must be re-broadcast so peers see them
    /// pending); relayed copies are not relayed again.
    fn accept_request(&mut self, command: Command, now: u64, relay: bool) {
        if self.executed_ids.contains(&command.id) {
            return;
        }
        if !self.pending.iter().any(|(c, _)| c.id == command.id) {
            if prever_obs::trace::active() {
                prever_obs::trace::event(self.id as u64, now, command.trace, "queue", command.id);
            }
            self.pending.push_back((command.clone(), now));
            if relay {
                self.relay_accum.push_back((command.clone(), now));
            }
        }
        if self.is_primary() && !self.view_changing {
            self.enqueue_for_proposal(command, now);
        }
    }

    /// Queues `command` for the next batch cut, unless it is already
    /// executed, queued, or sitting in an unexecuted slot.
    fn enqueue_for_proposal(&mut self, command: Command, now: u64) {
        if self.executed_ids.contains(&command.id)
            || self.accum.iter().any(|(c, _)| c.id == command.id)
            || self
                .log
                .values()
                .any(|s| !s.executed && s.batch.as_ref().is_some_and(|b| b.contains_id(command.id)))
        {
            return;
        }
        self.accum.push_back((command, now));
    }

    /// Cuts and sends every batch that is ready under the configured
    /// policy: a batch is ready when it is full (`max_batch`) or its
    /// oldest command has waited `max_delay` µs. Proposal cuts are
    /// additionally gated by the in-flight window (pipelining
    /// back-pressure); relays are not, since they carry no slot.
    fn flush(&mut self, now: u64, out: &mut Outbox) {
        while !self.relay_accum.is_empty() {
            let ready = self.urgent
                || self.relay_accum.len() >= self.cfg.max_batch
                || self
                    .relay_accum
                    .front()
                    .is_some_and(|(_, since)| now.saturating_sub(*since) >= self.cfg.max_delay);
            if !ready {
                break;
            }
            let take = self.relay_accum.len().min(self.cfg.max_batch);
            let drained: Vec<(Command, u64)> = self.relay_accum.drain(..take).collect();
            let commands: Vec<Command> = drained
                .into_iter()
                .filter(|(c, _)| !self.executed_ids.contains(&c.id))
                .map(|(c, _)| c)
                .collect();
            if !commands.is_empty() {
                self.broadcast(out, PbftMsg::Request(Batch::new(commands)));
            }
        }
        if !self.is_primary() || self.view_changing {
            return;
        }
        while !self.accum.is_empty() && self.in_flight() < self.cfg.window {
            let ready = self.urgent
                || self.accum.len() >= self.cfg.max_batch
                || self
                    .accum
                    .front()
                    .is_some_and(|(_, since)| now.saturating_sub(*since) >= self.cfg.max_delay);
            if !ready {
                break;
            }
            let take = self.accum.len().min(self.cfg.max_batch);
            let drained: Vec<(Command, u64)> = self.accum.drain(..take).collect();
            let oldest = drained.first().map(|(_, s)| *s).unwrap_or(now);
            prever_obs::histogram("consensus.batch.size").record(drained.len() as u64);
            prever_obs::histogram("consensus.batch.fill_delay").record(now.saturating_sub(oldest));
            let commands: Vec<Command> = drained.into_iter().map(|(c, _)| c).collect();
            self.propose_batch(commands, now, out);
        }
        if self.accum.is_empty() && self.relay_accum.is_empty() {
            self.urgent = false;
        }
    }

    /// The earliest virtual time at which a waiting accumulator entry
    /// hits its `max_delay` and must be flushed, if any. The simulator
    /// adapter arms a timer for it (immediate-flush configs never need
    /// one).
    pub fn next_batch_deadline(&self) -> Option<u64> {
        if self.byz == Byzantine::Silent || self.cfg.max_delay == 0 {
            return None;
        }
        // While an urgent command is queued the fill delay is suspended
        // and anything waiting is due immediately.
        let delay = if self.urgent { 0 } else { self.cfg.max_delay };
        let mut deadline: Option<u64> = None;
        if let Some((_, since)) = self.relay_accum.front() {
            deadline = Some(since + delay);
        }
        if self.is_primary() && !self.view_changing && self.in_flight() < self.cfg.window {
            if let Some((_, since)) = self.accum.front() {
                let t = since + delay;
                deadline = Some(deadline.map_or(t, |d| d.min(t)));
            }
        }
        deadline
    }

    /// Timer-driven flush for `max_delay`-aged partial batches.
    pub fn on_batch_timer(&mut self, now: u64) -> Outbox {
        let mut out = Outbox::new();
        self.flush(now, &mut out);
        out
    }

    fn propose_batch(&mut self, commands: Vec<Command>, now: u64, out: &mut Outbox) {
        // Drop anything that raced to execution (e.g. via state
        // transfer) or into another slot since it was queued.
        let commands: Vec<Command> = commands
            .into_iter()
            .filter(|c| {
                !self.executed_ids.contains(&c.id)
                    && !self
                        .log
                        .values()
                        .any(|s| !s.executed && s.batch.as_ref().is_some_and(|b| b.contains_id(c.id)))
            })
            .collect();
        if commands.is_empty() {
            return;
        }
        self.next_seq = self.next_seq.max(self.last_exec) + 1;
        // Never assign a seq whose slot is already resolved: a primary
        // whose execution lags (e.g. just state-transferred into the
        // view) may still hold committed-but-unexecuted slots from an
        // earlier view above `last_exec`, and proposing over one would
        // overwrite a decided batch.
        while self.log.get(&self.next_seq).is_some_and(|s| s.digest.is_some()) {
            self.next_seq += 1;
        }
        let seq = self.next_seq;
        let batch = Batch::new(commands);
        let digest = batch.digest();
        if prever_obs::trace::active() {
            for c in batch.commands() {
                prever_obs::trace::event(self.id as u64, now, c.trace, "batch-cut", seq);
                prever_obs::trace::event(
                    self.id as u64,
                    now,
                    c.trace.child("batch-cut", self.id as u64),
                    "pre-prepare",
                    seq,
                );
            }
        }

        if self.byz == Byzantine::EquivocatingPrimary {
            // Send batch A to the first half, a conflicting batch to
            // the rest. Both claim the same (view, seq).
            let evil = Batch::new(
                batch
                    .commands()
                    .iter()
                    .map(|c| {
                        let mut payload = c.payload.to_vec();
                        payload.extend_from_slice(b"-equivocated");
                        Command::new(c.id, payload)
                    })
                    .collect(),
            );
            let others: Vec<NodeId> =
                self.members.iter().copied().filter(|&m| m != self.id).collect();
            for (i, &m) in others.iter().enumerate() {
                let b = if i < others.len() / 2 { batch.clone() } else { evil.clone() };
                out.push((m, PbftMsg::PrePrepare { view: self.view, seq, batch: b }));
            }
            self.note_sent(1, others.len() as u64); // kind 1 = pre_prepare
        } else {
            self.broadcast(out, PbftMsg::PrePrepare { view: self.view, seq, batch: batch.clone() });
        }

        // The primary's pre-prepare doubles as its prepare vote.
        let view = self.view;
        let slot = self.log.entry(seq).or_default();
        slot.fix_digest(view, digest, batch);
        slot.prepares.add(self.id);
        self.bind(seq, view, digest);
    }

    /// Handles a protocol message. `now` is virtual time for execution
    /// timestamps.
    pub fn on_message(&mut self, from: NodeId, msg: PbftMsg, now: u64) -> Outbox {
        let mut out = Outbox::new();
        if !self.members.contains(&from) {
            return out;
        }
        let kind = msg.kind_idx();
        // Client injections arrive with `from == self` by convention and
        // are not network receives; everything else is counted. NewView
        // re-proposals are processed by recursing into this method and
        // therefore count as received pre-prepares, which matches the
        // protocol reading (a NewView is a batch of pre-prepares).
        if from != self.id && !self.stash_replay {
            self.stats.recv[kind] += 1;
            prever_obs::counter(RECV_COUNTERS[kind]).add(1);
            // Track how far the cluster has advanced past us (lag
            // evidence that triggers state transfer from `on_tick`).
            match &msg {
                PbftMsg::PrePrepare { seq, .. }
                | PbftMsg::Prepare { seq, .. }
                | PbftMsg::Commit { seq, .. }
                | PbftMsg::Checkpoint { seq, .. } => {
                    self.max_seen_seq = self.max_seen_seq.max(*seq);
                }
                _ => {}
            }
        }
        let _span = prever_obs::span!(SPAN_NAMES[kind]);
        match msg {
            PbftMsg::Request(batch) => {
                // By convention the simulator injects client requests
                // with `from == self` (relay them); peer relays carry
                // the peer's id (track, don't re-relay).
                let relay = from == self.id;
                for command in batch.commands() {
                    self.accept_request(command.clone(), now, relay);
                }
                self.flush(now, &mut out);
            }
            PbftMsg::PrePrepare { view, seq, batch } => {
                if view < self.view || seq <= self.last_exec {
                    return out;
                }
                if view > self.view || self.view_changing {
                    // Not yet in this view: hold the message until the
                    // NewView installs it rather than dropping a vote
                    // the slot may need (links are not FIFO).
                    self.stash_view_msg(from, PbftMsg::PrePrepare { view, seq, batch });
                    return out;
                }
                if from != self.primary() {
                    return out;
                }
                let digest = batch.digest();
                // Durable-binding refusal: we already voted for a
                // *different* command at this seq in this or a later
                // view (possibly before a restart) — voting again would
                // make us an accidental equivocator.
                if let Some((bv, bd)) = self.durable_bindings.get(&seq) {
                    if view <= *bv && digest != *bd {
                        prever_obs::log!(Debug, "replica {} refuses preprepare seq {seq} view {view}: bound view {bv}", self.id);
                        return out;
                    }
                }
                let slot = self.log.entry(seq).or_default();
                if let Some(existing) = slot.digest {
                    if existing != digest {
                        // Equivocation observed: refuse the second one.
                        prever_obs::log!(Debug, "replica {} refuses preprepare seq {seq} view {view}: digest conflict (slot view {}, committed {})", self.id, slot.view, slot.committed);
                        return out;
                    }
                } else {
                    slot.fix_digest(view, digest, batch.clone());
                }
                // Pre-prepare counts as the primary's prepare vote; add
                // ours and broadcast it.
                slot.prepares.add(from);
                slot.prepares.add(self.id);
                // Track the batched requests for liveness if not
                // already pending.
                for command in batch.commands() {
                    if !self.executed_ids.contains(&command.id)
                        && !self.pending.iter().any(|(c, _)| c.id == command.id)
                    {
                        self.pending.push_back((command.clone(), now));
                    }
                }
                self.bind(seq, view, digest);
                self.broadcast(&mut out, PbftMsg::Prepare { view, seq, digest });
                self.try_advance(seq, now, &mut out);
            }
            PbftMsg::Prepare { view, seq, digest } => {
                if view < self.view || seq <= self.last_exec {
                    return out;
                }
                if view > self.view || self.view_changing {
                    self.stash_view_msg(from, PbftMsg::Prepare { view, seq, digest });
                    return out;
                }
                let slot = self.log.entry(seq).or_default();
                match slot.digest {
                    Some(d) if d != digest => return out,
                    Some(_) => {
                        slot.prepares.add(from);
                    }
                    // No pre-prepare yet: hold the vote with its digest
                    // so it only counts if the proposals agree.
                    None => {
                        if !slot.early_prepares.iter().any(|(v, _)| *v == from) {
                            slot.early_prepares.push((from, digest));
                        }
                    }
                }
                self.try_advance(seq, now, &mut out);
            }
            PbftMsg::Commit { view, seq, digest } => {
                if view < self.view || seq <= self.last_exec {
                    return out;
                }
                if view > self.view || self.view_changing {
                    self.stash_view_msg(from, PbftMsg::Commit { view, seq, digest });
                    return out;
                }
                let slot = self.log.entry(seq).or_default();
                match slot.digest {
                    Some(d) if d != digest => return out,
                    Some(_) => {
                        slot.commits.add(from);
                    }
                    None => {
                        if !slot.early_commits.iter().any(|(v, _)| *v == from) {
                            slot.early_commits.push((from, digest));
                        }
                    }
                }
                self.try_advance(seq, now, &mut out);
            }
            PbftMsg::ViewChange { new_view, prepared } => {
                if new_view < self.view {
                    // The sender is still assembling a quorum for a
                    // view we moved past. Re-send our own vote for it
                    // (the original may have been dropped), or the
                    // sender could wait on that quorum forever. If our
                    // recorded vote was pruned (adopt_view drops votes
                    // at or below the adopted view), synthesize a fresh
                    // one: a view-change vote is a monotonic demand, so
                    // voting for an older view is always sound, and our
                    // current certificates are a superset of whatever
                    // the original vote carried. Without this, a
                    // cluster running with a replica permanently down
                    // can deadlock across adjacent views: the laggards
                    // can never assemble the old-view quorum (we were
                    // its missing voter) and we can never assemble
                    // f + 1 demands for the higher view.
                    //
                    // Rate-limited per (view, peer): the reply is
                    // itself a ViewChange, so if the sender has ALSO
                    // moved past this view, its laggard-help path
                    // would answer ours and the pair would ping-pong
                    // forever (worse than forever on duplicating
                    // links). A stuck laggard re-broadcasts on its
                    // retransmit tick, so one reply per window keeps
                    // liveness. The window is one tick: short enough
                    // not to slow real convergence (duplicated demands
                    // inside a tick are noise, distinct ones are not),
                    // long enough that the ping-pong stays a trickle.
                    let window_start = now.saturating_sub(TICK_EVERY);
                    self.vc_helped.retain(|_, &mut at| at > window_start);
                    if self.vc_helped.contains_key(&(new_view, from)) {
                        return out;
                    }
                    self.vc_helped.insert((new_view, from), now);
                    let prepared = self
                        .vc_votes
                        .get(&new_view)
                        .and_then(|m| m.get(&self.id))
                        .cloned()
                        .unwrap_or_else(|| {
                            let mut mine = self.prepared_certificates();
                            mine.extend(
                                self.executed_batches
                                    .iter()
                                    .map(|(seq, batch, _)| (*seq, COMMITTED_VIEW, batch.clone())),
                            );
                            mine
                        });
                    self.send(&mut out, from, PbftMsg::ViewChange { new_view, prepared });
                    return out;
                }
                if new_view == self.view && !self.view_changing {
                    // We are already active in the view the sender is
                    // trying to enter. If we are its primary, re-send
                    // the NewView: the original may have been lost, and
                    // the votes that once proved this view quorate are
                    // pruned everywhere once replicas adopt it, so the
                    // sender can never re-assemble that quorum. The
                    // proposals are reconstructed from our own log,
                    // which reflects the real NewView's slot resolution
                    // (anything older the sender is missing comes via
                    // state transfer, not the NewView).
                    if self.primary() == self.id {
                        let proposals: Vec<(u64, Batch)> = self
                            .log
                            .range(self.last_exec + 1..)
                            .filter(|(_, s)| s.view == new_view)
                            .filter_map(|(&seq, s)| s.batch.clone().map(|b| (seq, b)))
                            .collect();
                        prever_obs::log!(
                            Debug,
                            "replica {} re-sends NewView {new_view} to laggard {from}",
                            self.id
                        );
                        self.send(&mut out, from, PbftMsg::NewView { new_view, proposals });
                        return out;
                    }
                    // A non-primary cannot prove the view installed —
                    // and it may in fact NOT be: a replica that adopted
                    // this view via state transfer (rather than a
                    // NewView) can be active in it while the others are
                    // still one vote short of the quorum, and under the
                    // escalate-only-when-quorate rule they would re-send
                    // those votes forever. Cast our own vote once:
                    // decisive when the quorum was missing exactly us,
                    // harmless when the view is genuinely installed
                    // (install is idempotent and active primaries answer
                    // votes with the NewView instead).
                    self.vc_votes.entry(new_view).or_default().insert(from, prepared);
                    let already_voted = self
                        .vc_votes
                        .get(&new_view)
                        .is_some_and(|m| m.contains_key(&self.id));
                    if !already_voted {
                        let mut mine = self.prepared_certificates();
                        mine.extend(
                            self.executed_batches
                                .iter()
                                .map(|(seq, batch, _)| (*seq, COMMITTED_VIEW, batch.clone())),
                        );
                        self.vc_votes
                            .entry(new_view)
                            .or_default()
                            .insert(self.id, mine.clone());
                        self.broadcast(&mut out, PbftMsg::ViewChange { new_view, prepared: mine });
                    }
                    return out;
                }
                self.vc_votes.entry(new_view).or_default().insert(from, prepared);
                // Catch-up rule (PBFT §4.5.2): once f + 1 replicas
                // demand views above ours, at least one of them is
                // correct — join the smallest such view, even mid
                // view-change. A replica must not idle below the view
                // the correct majority is assembling, nor jump past
                // views that can still complete.
                let mut ahead = BTreeSet::new();
                let mut smallest = None;
                for (&v, vs) in self.vc_votes.range(self.view + 1..) {
                    for &voter in vs.keys() {
                        if voter != self.id {
                            ahead.insert(voter);
                            smallest.get_or_insert(v);
                        }
                    }
                }
                if ahead.len() > self.f() {
                    if let Some(v) = smallest {
                        self.start_view_change(v, &mut out);
                    }
                }
                self.maybe_install_view(new_view, now, &mut out);
            }
            PbftMsg::Checkpoint { seq, state_digest } => {
                self.record_checkpoint_vote(from, seq, state_digest);
            }
            PbftMsg::StateRequest { have } => {
                if from == self.id {
                    return out;
                }
                // Executed batch seqs are dense from 1, so the suffix
                // above `have` is simply `executed_batches[have..]`.
                let entries: Vec<(u64, Batch)> = self
                    .executed_batches
                    .iter()
                    .skip(have as usize)
                    .map(|(seq, batch, _)| (*seq, batch.clone()))
                    .collect();
                let msg = PbftMsg::StateResponse {
                    view: self.view,
                    stable_seq: self.stable_seq,
                    state_digest: self.running_state,
                    entries,
                };
                self.send(&mut out, from, msg);
            }
            PbftMsg::StateResponse { view, entries, .. } => {
                if !self.syncing || from == self.id {
                    return out;
                }
                let suffix: BTreeMap<u64, Batch> = entries.into_iter().collect();
                self.sync_responses.insert(from, (view, suffix));
                self.apply_sync(now);
            }
            PbftMsg::NewView { new_view, proposals } => {
                if new_view < self.view {
                    return out;
                }
                let expected_primary = self.members[(new_view as usize) % self.m()];
                if from != expected_primary {
                    return out;
                }
                self.adopt_view(new_view);
                // Process the re-proposals exactly like pre-prepares.
                for (seq, batch) in proposals {
                    let o = self.on_message(
                        expected_primary,
                        PbftMsg::PrePrepare { view: new_view, seq, batch },
                        now,
                    );
                    out.extend(o);
                }
                // Re-submit pending requests to the new primary (one
                // batched request message).
                let primary = self.primary();
                if primary != self.id {
                    let pending: Vec<Command> =
                        self.pending.iter().map(|(c, _)| c.clone()).collect();
                    if !pending.is_empty() {
                        self.send(&mut out, primary, PbftMsg::Request(Batch::new(pending)));
                    }
                }
                // Count any votes that overtook this NewView in flight.
                self.drain_view_stash(now, &mut out);
            }
        }
        out
    }

    /// Holds a pre-prepare/prepare/commit that arrived before this
    /// replica adopted its view. Bounded; overflow drops the message
    /// (the view-change path re-proposes, so a drop costs liveness at
    /// worst, never safety).
    fn stash_view_msg(&mut self, from: NodeId, msg: PbftMsg) {
        if self.view_stash.len() >= VIEW_STASH_CAP {
            prever_obs::counter("pbft.view_stash.overflow").inc();
            return;
        }
        self.view_stash.push((from, msg));
    }

    /// Re-delivers stashed messages after a view adoption. Messages for
    /// still-future views simply re-stash themselves; stale ones are
    /// pruned by [`Self::adopt_view`] before this runs.
    fn drain_view_stash(&mut self, now: u64, out: &mut Outbox) {
        if self.view_stash.is_empty() {
            return;
        }
        let stash = std::mem::take(&mut self.view_stash);
        let prev = self.stash_replay;
        self.stash_replay = true;
        for (from, msg) in stash {
            let o = self.on_message(from, msg, now);
            out.extend(o);
        }
        self.stash_replay = prev;
    }

    fn try_advance(&mut self, seq: u64, now: u64, out: &mut Outbox) {
        let quorum = self.quorum();
        let view = self.view;
        let Some(slot) = self.log.get_mut(&seq) else { return };
        let Some(digest) = slot.digest else { return };
        // Prepared: 2f + 1 matching prepares (incl. primary's implicit
        // and our own).
        if slot.prepares.len() >= quorum && !slot.sent_commit {
            prever_obs::log!(Debug, "replica {} prepared seq {seq} view {view}", self.id);
            slot.sent_commit = true;
            slot.commits.add(self.id);
            if prever_obs::trace::active() {
                if let Some(b) = &slot.batch {
                    for c in b.commands() {
                        prever_obs::trace::event(
                            self.id as u64,
                            now,
                            c.trace.child("pre-prepare", self.id as u64),
                            "prepare-quorum",
                            seq,
                        );
                    }
                }
            }
            let prep = slot.batch.clone().map(|b| (seq, slot.view, b));
            // A commit vote claims "I hold a prepared certificate"; the
            // certificate must outlive view changes (and, for a
            // persisting owner, restarts) until the slot executes, or
            // a later view change could erase a certificate the
            // cluster is relying on (see the Prep record in durable.rs).
            if let Some((s, v, c)) = prep {
                self.remember_cert(s, v, c);
            }
            let msg = PbftMsg::Commit { view, seq, digest };
            self.broadcast(out, msg);
        }
        let Some(slot) = self.log.get_mut(&seq) else { return };
        if slot.commits.len() >= quorum && !slot.committed {
            prever_obs::log!(Debug, "replica {} committed seq {seq} view {view}", self.id);
            slot.committed = true;
            if prever_obs::trace::active() {
                if let Some(b) = &slot.batch {
                    for c in b.commands() {
                        prever_obs::trace::event(
                            self.id as u64,
                            now,
                            c.trace.child("prepare-quorum", self.id as u64),
                            "commit-quorum",
                            seq,
                        );
                    }
                }
            }
        }
        self.execute_ready(now, out);
    }

    fn execute_ready(&mut self, now: u64, out: &mut Outbox) {
        loop {
            let next = self.last_exec + 1;
            let Some(slot) = self.log.get_mut(&next) else { break };
            if !slot.committed || slot.executed {
                break;
            }
            slot.executed = true;
            let batch = slot.batch.clone().expect("committed slot has a batch");
            self.last_exec = next;
            // Apply the whole batch in order, then do one
            // checkpoint/heartbeat step for the slot.
            for command in batch.commands() {
                self.executed_ids.insert(command.id);
                if prever_obs::trace::active() {
                    prever_obs::trace::event(
                        self.id as u64,
                        now,
                        command.trace.child("commit-quorum", self.id as u64),
                        "exec",
                        next,
                    );
                }
                if let Some((_, since)) = self.pending.iter().find(|(c, _)| c.id == command.id) {
                    // Virtual µs → ns for the span-style histogram.
                    prever_obs::observe_ns(
                        "consensus.commit.latency",
                        now.saturating_sub(*since).saturating_mul(1_000),
                    );
                }
                self.pending.retain(|(c, _)| c.id != command.id);
                // Chain the state digest (deterministic across replicas,
                // still per-command so it is batching-agnostic).
                self.running_state = chain_digest(self.running_state, command);
                let slot_no = self.executed.len() as u64 + 1;
                self.executed.push(Decided { slot: slot_no, command: command.clone(), at: now });
                prever_obs::counter("pbft.executed").inc();
            }
            self.executed_batches.push((next, batch, now));
            self.durable_bindings.remove(&next);
            self.certs.remove(&next);
            self.last_progress_at = now;
            self.vc_streak = 0;
            if self.last_exec.is_multiple_of(CHECKPOINT_INTERVAL) {
                let msg = PbftMsg::Checkpoint {
                    seq: self.last_exec,
                    state_digest: self.running_state,
                };
                self.broadcast(out, msg);
                self.record_checkpoint_vote(self.id, self.last_exec, self.running_state);
            }
        }
        // Executions free pipeline-window slots: cut anything now ready.
        self.flush(now, out);
    }

    /// Applies every command on which `f + 1` state-transfer responders
    /// agree, then adopts the view a quorum-minus-f of them has reached
    /// and finishes the sync once a full quorum has answered.
    fn apply_sync(&mut self, now: u64) {
        let need = self.f() + 1;
        loop {
            let next = self.last_exec + 1;
            // Count agreeing digests for the next sequence. At most one
            // digest can reach f + 1 among n - 1 responders with at
            // most f faulty, so the first hit is the only hit.
            let mut counts: BTreeMap<Digest, (usize, Batch)> = BTreeMap::new();
            for (_, suffix) in self.sync_responses.values() {
                if let Some(b) = suffix.get(&next) {
                    let e = counts.entry(b.digest()).or_insert_with(|| (0, b.clone()));
                    e.0 += 1;
                }
            }
            match counts.into_values().find(|(n, _)| *n >= need) {
                Some((_, batch)) => {
                    prever_obs::log!(
                        Debug,
                        "replica {} sync-applies seq {next} ({} commands) at {now}",
                        self.id,
                        batch.len()
                    );
                    self.apply_synced_batch(batch, now)
                }
                None => break,
            }
        }
        // Adopt a view at least f + 1 responders have reached (at least
        // one of them is correct, so the view is legitimate).
        let mut views: Vec<u64> = self.sync_responses.values().map(|(v, _)| *v).collect();
        views.sort_unstable_by(|a, b| b.cmp(a));
        if views.len() >= need {
            let v = views[need - 1];
            if v > self.view {
                prever_obs::log!(Debug, "replica {} sync-adopts view {v} at {now}", self.id);
                self.adopt_view(v);
                if self.primary() == self.id {
                    // We would be this view's primary, but we never
                    // assembled its view-change quorum — the responders
                    // may merely be DEMANDING the view (StateResponse
                    // reports the demanded view while view-changing).
                    // Acting as an active primary here mints fresh
                    // batches at sequences whose committed resolution
                    // we cannot know, which is how a recovered replica
                    // once executed a quorum-less batch (seed 332 of
                    // the gateway-failover sweep). Stay passive: if the
                    // cluster truly needs this view, our view-change
                    // timer escalates and the normal install path —
                    // which reconciles prepared certificates — runs.
                    self.view_changing = true;
                }
            }
        }
        if self.sync_responses.len() >= self.quorum() {
            self.finish_sync();
        }
    }

    fn apply_synced_batch(&mut self, batch: Batch, now: u64) {
        let next = self.last_exec + 1;
        self.last_exec = next;
        for command in batch.commands() {
            self.executed_ids.insert(command.id);
            self.pending.retain(|(c, _)| c.id != command.id);
            self.running_state = chain_digest(self.running_state, command);
            let slot = self.executed.len() as u64 + 1;
            self.executed.push(Decided { slot, command: command.clone(), at: now });
            self.synced += 1;
            prever_obs::counter("pbft.state_transfer.synced").inc();
        }
        self.executed_batches.push((next, batch, now));
        self.log.remove(&next);
        self.durable_bindings.remove(&next);
        self.certs.remove(&next);
        self.last_progress_at = now;
        self.vc_streak = 0;
    }

    fn finish_sync(&mut self) {
        self.syncing = false;
        self.sync_responses.clear();
        prever_obs::counter("pbft.state_transfer.completed").inc();
    }

    fn record_checkpoint_vote(&mut self, from: NodeId, seq: u64, state_digest: Digest) {
        if seq <= self.stable_seq {
            return;
        }
        let votes = self.checkpoint_votes.entry((seq, state_digest)).or_default();
        votes.add(from);
        if votes.len() >= self.quorum() {
            // Stable: truncate everything at or below it.
            prever_obs::log!(Debug, "replica {} stable checkpoint at seq {seq}", self.id);
            self.stable_seq = seq;
            self.log.retain(|s, slot| *s > seq || !slot.executed);
            self.checkpoint_votes.retain(|(s, _), _| *s > seq);
        }
    }

    /// Initiates (or joins) a view change towards `new_view`.
    pub fn start_view_change(&mut self, new_view: u64, out: &mut Outbox) {
        if new_view <= self.view && self.view_changing {
            return;
        }
        prever_obs::log!(Warn, "replica {} abandons view {} for view {new_view}", self.id, self.view);
        prever_obs::counter("pbft.view_changes.started").inc();
        self.vc_streak = self.vc_streak.saturating_add(1);
        self.view = new_view;
        self.view_changing = true;
        let mut prepared = self.prepared_certificates();
        // Also report the executed history, marked with a sentinel view
        // so committed entries always beat a conflicting prepared cert
        // in the new primary's merge. Without this, a replica that
        // already executed a slot omits its certificate (the `seq >
        // last_exec` filter above), and a new primary whose own
        // execution lags would no-op-fill a slot that committed
        // elsewhere — a divergence. Production PBFT bounds this list
        // with the low-watermark; the sim ships the full history.
        prepared.extend(
            self.executed_batches
                .iter()
                .map(|(seq, batch, _)| (*seq, COMMITTED_VIEW, batch.clone())),
        );
        let msg = PbftMsg::ViewChange { new_view, prepared: prepared.clone() };
        self.broadcast(out, msg);
        // Record our own vote.
        self.vc_votes.entry(new_view).or_default().insert(self.id, prepared);
    }

    fn maybe_install_view(&mut self, new_view: u64, now: u64, out: &mut Outbox) {
        let expected_primary = self.members[(new_view as usize) % self.m()];
        if expected_primary != self.id {
            return;
        }
        let Some(votes) = self.vc_votes.get(&new_view) else { return };
        if votes.len() < self.quorum() {
            return;
        }
        if !self.view_changing && self.view == new_view {
            return; // already installed
        }
        // Merge prepared certificates: per seq keep the highest view.
        let mut merged: BTreeMap<u64, (u64, Batch)> = BTreeMap::new();
        for prepared in votes.values() {
            for (seq, view, batch) in prepared {
                if *seq <= self.last_exec {
                    continue;
                }
                let replace = merged.get(seq).is_none_or(|(v, _)| v < view);
                if replace {
                    merged.insert(*seq, (*view, batch.clone()));
                }
            }
        }
        // Fill gaps with no-op batches up to the max re-proposed seq.
        let max_seq = merged.keys().next_back().copied().unwrap_or(self.last_exec);
        let proposals: Vec<(u64, Batch)> = (self.last_exec + 1..=max_seq)
            .map(|seq| {
                let batch = merged.get(&seq).map(|(_, b)| b.clone()).unwrap_or_else(noop);
                (seq, batch)
            })
            .collect();
        prever_obs::log!(
            Info,
            "replica {} installs view {new_view} with {} re-proposals",
            self.id,
            proposals.len()
        );
        self.adopt_view(new_view);
        self.next_seq = max_seq.max(self.last_exec);
        let msg = PbftMsg::NewView { new_view, proposals: proposals.clone() };
        self.broadcast(out, msg);
        // Apply the proposals locally as pre-prepares.
        for (seq, batch) in proposals {
            let digest = batch.digest();
            let slot = self.log.entry(seq).or_default();
            slot.fix_digest(new_view, digest, batch);
            slot.prepares.add(self.id);
            self.bind(seq, new_view, digest);
        }
        // Queue any pending requests afresh (original arrival times, so
        // fill-delay and commit-latency accounting stay honest).
        let pending: Vec<(Command, u64)> = self.pending.iter().cloned().collect();
        for (c, since) in pending {
            self.enqueue_for_proposal(c, since);
        }
        self.flush(now, out);
        self.drain_view_stash(now, out);
    }

    fn adopt_view(&mut self, new_view: u64) {
        self.view = new_view;
        self.view_changing = false;
        // Drop un-prepared slot state from older views; prepared entries
        // are re-established via the NewView proposals.
        let last_exec = self.last_exec;
        self.log.retain(|seq, s| *seq <= last_exec || s.executed || s.committed);
        for s in self.log.values_mut() {
            if !s.executed && !s.committed {
                s.prepares = VoteSet::new();
                s.commits = VoteSet::new();
                s.early_prepares.clear();
                s.early_commits.clear();
                s.sent_commit = false;
            }
        }
        self.vc_votes.retain(|v, _| *v > new_view);
        // Stashed votes from abandoned views can never count again.
        self.view_stash.retain(|(_, m)| match m {
            PbftMsg::PrePrepare { view, .. }
            | PbftMsg::Prepare { view, .. }
            | PbftMsg::Commit { view, .. } => *view >= new_view,
            _ => false,
        });
    }

    /// Liveness tick: drives state-transfer retries, lag detection, and
    /// view changes for stuck requests (in that priority order — a
    /// lagging replica fetches state instead of hopelessly demanding
    /// view changes it can no longer vote in).
    pub fn on_tick(&mut self, now: u64, timeout: u64) -> Outbox {
        let mut out = Outbox::new();
        if self.byz == Byzantine::Silent {
            return out;
        }
        if self.byz == Byzantine::StaleReplayer && !self.replay_stash.is_empty() {
            // Replay the stale stash (cloned, so the copies are not
            // themselves re-stashed).
            let stash = self.replay_stash.clone();
            self.replaying = true;
            for msg in stash {
                self.broadcast(&mut out, msg);
            }
            self.replaying = false;
        }
        // Safety net for `max_delay`-aged partial batches (the adapter's
        // batch timer is the precise path; this catches re-arm races).
        self.flush(now, &mut out);
        if self.syncing {
            if now.saturating_sub(self.last_sync_at) > SYNC_RETRY {
                if self.sync_responses.len() > self.f() {
                    // Enough answers to have applied everything f + 1
                    // agree on; stop waiting for the stragglers.
                    self.finish_sync();
                } else {
                    out.extend(self.request_sync(now));
                }
            }
        } else if self.max_seen_seq > self.last_exec
            && now.saturating_sub(self.last_progress_at) > timeout
        {
            // Lag detection: peers are working on sequences we never
            // executed and nothing has progressed locally for a whole
            // timeout — fetch state. This deliberately does NOT
            // suppress the view-change path below: if the whole cluster
            // is stuck (nobody executed further), only a view change
            // restores liveness, and the sync comes back empty-handed.
            self.last_progress_at = now;
            out.extend(self.request_sync(now));
        }
        // Anti-entropy heartbeat: periodically re-broadcast our latest
        // checkpoint. A replica that restarted after the cluster went
        // quiescent has no pending requests and sees no traffic, so
        // without this it would never learn it is behind (lag
        // detection needs evidence of higher sequence numbers).
        if now.saturating_sub(self.last_hb_at) > HEARTBEAT_EVERY {
            self.last_hb_at = now;
            if self.last_exec > 0 {
                let msg = PbftMsg::Checkpoint {
                    seq: self.last_exec,
                    state_digest: self.running_state,
                };
                self.broadcast(&mut out, msg);
            }
        }
        // Exponential backoff: each consecutive fruitless view change
        // doubles the window the current view gets before we abandon
        // it too, so a recovering cluster is not starved by lockstep
        // escalation (capped; any execution resets the streak).
        let escalate_after =
            timeout.saturating_mul(1u64 << self.vc_streak.min(VC_BACKOFF_CAP));
        if self.has_stale_pending(now, escalate_after) {
            // Refresh pending timestamps so we escalate one view per
            // timeout period rather than every tick.
            for p in self.pending.iter_mut() {
                p.1 = now;
            }
            let quorate = self
                .vc_votes
                .get(&self.view)
                .is_some_and(|v| v.len() >= self.quorum());
            if self.view_changing && !quorate {
                // PBFT liveness rule: only escalate past a view change
                // once 2f + 1 replicas demanded it. Escalating earlier
                // strands this replica one view ahead of the pack — in
                // a deterministic lockstep that offset NEVER heals, and
                // every view thereafter is one voter short. Re-send our
                // vote instead (the original may have been dropped) and
                // keep waiting for the quorum to assemble.
                let vote = self
                    .vc_votes
                    .get(&self.view)
                    .and_then(|m| m.get(&self.id))
                    .cloned();
                if let Some(prepared) = vote {
                    let msg = PbftMsg::ViewChange { new_view: self.view, prepared };
                    self.broadcast(&mut out, msg);
                }
            } else {
                let next = self.view + 1;
                prever_obs::log!(
                    Debug,
                    "replica {} escalates to view {next} at {now} (window {escalate_after})",
                    self.id
                );
                self.start_view_change(next, &mut out);
            }
        }
        out
    }
}

const TIMER_TICK: u64 = 1;
/// One-shot timer id for `max_delay` batch-fill deadlines.
const TIMER_BATCH: u64 = 2;
const TICK_EVERY: u64 = 25_000; // 25 ms
/// Request-staleness threshold before a replica votes for a view change.
pub const VIEW_TIMEOUT: u64 = 150_000; // 150 ms
/// Max messages held for a not-yet-adopted view.
const VIEW_STASH_CAP: usize = 1024;
/// Anti-entropy checkpoint heartbeat period.
const HEARTBEAT_EVERY: u64 = 500_000; // 500 ms
/// Max exponent for the view-change timeout backoff (2^6 = 64×, i.e.
/// 9.6 s at the default timeout). The cap must dwarf any phase offset
/// replicas inherit from earlier, shorter cycles: a replica running
/// one view ahead of the pack has a higher streak and hence a longer
/// window, so it falls back into phase — but only while windows can
/// still grow past the offset scale.
const VC_BACKOFF_CAP: u32 = 6;

/// Simulator adapter around [`PbftCore`] for a full-membership cluster.
///
/// With a [`DurableLog`] attached ([`Self::with_durable`]) the node
/// persists every executed command and every prepare-vote binding after
/// each protocol step, and [`Self::recover_with`] rebuilds a replacement
/// replica from the surviving log after a crash-with-state-loss: replay
/// restores the executed history and open vote bindings, and the node's
/// first act on start is a state-transfer request to catch up on
/// everything committed while it was down.
#[derive(Clone, Debug)]
pub struct PbftNode {
    /// The protocol core (public for test inspection).
    pub core: PbftCore,
    /// The replica's "disk", if persistence is on.
    durable: Option<DurableLog>,
    /// How many `core.executed_batches()` entries have been persisted.
    exec_cursor: usize,
    /// Set by [`Self::recover_with`]: request a state transfer on start.
    recovering: bool,
    /// Earliest armed batch-fill deadline (simulator timers cannot be
    /// cancelled, so this dedups re-arms; spurious fires are harmless).
    batch_timer_at: Option<u64>,
}

impl PbftNode {
    /// Creates replica `id` of an `n`-replica cluster (no persistence).
    pub fn new(id: NodeId, n: usize, byz: Byzantine) -> Self {
        PbftNode {
            core: PbftCore::new(id, (0..n).collect(), byz),
            durable: None,
            exec_cursor: 0,
            recovering: false,
            batch_timer_at: None,
        }
    }

    /// Sets the batching/pipelining configuration (builder style, so it
    /// composes with every constructor, including [`Self::recover_with`]).
    pub fn with_batching(mut self, cfg: BatchConfig) -> Self {
        self.core.set_batch_config(cfg);
        self
    }

    /// Creates replica `id` persisting to `log` (normally a fresh log).
    pub fn with_durable(id: NodeId, n: usize, byz: Byzantine, log: DurableLog) -> Self {
        let mut node = Self::new(id, n, byz);
        node.core.set_record_bindings(true);
        node.exec_cursor = 0;
        node.durable = Some(log);
        node
    }

    /// Rebuilds replica `id` from a surviving durable `log` after a
    /// crash-with-state-loss.
    ///
    /// Panics if the log fails hash-chain verification — a replica must
    /// not rejoin from a disk it cannot trust.
    pub fn recover_with(id: NodeId, n: usize, byz: Byzantine, log: DurableLog) -> Self {
        let replayed = log.replay().expect("durable log failed verification");
        let mut node = Self::new(id, n, byz);
        node.core.set_record_bindings(true);
        node.core.install_history(replayed.entries, replayed.bindings, replayed.prepared);
        node.exec_cursor = node.core.executed_batches().len();
        node.durable = Some(log);
        node.recovering = true;
        prever_obs::counter("pbft.recoveries").inc();
        node
    }

    /// Executed commands (excluding no-ops).
    pub fn executed(&self) -> Vec<&Decided> {
        self.core.executed().iter().filter(|d| d.command.id != NOOP_ID).collect()
    }

    /// The attached durable log, if any.
    pub fn durable(&self) -> Option<&DurableLog> {
        self.durable.as_ref()
    }

    /// Persists everything the last core step produced: new vote
    /// bindings and prepared certificates first (they must hit the disk
    /// before our votes hit the network), then newly executed commands.
    fn persist(&mut self) {
        if let Some(log) = &self.durable {
            for (seq, view, digest) in self.core.take_bindings() {
                log.append_bind(seq, view, &digest);
            }
            for (seq, view, batch) in self.core.take_prepared() {
                log.append_prep(seq, view, &batch);
            }
            for (seq, batch, at) in &self.core.executed_batches()[self.exec_cursor..] {
                log.append_exec(*seq, batch, *at);
            }
            // Group-commit point: one flush barrier per dispatch covers
            // every exec record staged above (bind/prep flushed eagerly).
            log.commit_dispatch();
            if prever_obs::trace::active() {
                let me = self.core.id() as u64;
                for (seq, batch, at) in &self.core.executed_batches()[self.exec_cursor..] {
                    for c in batch.commands() {
                        prever_obs::trace::event(
                            me,
                            *at,
                            c.trace.child("exec", me),
                            "wal-flush",
                            *seq,
                        );
                    }
                }
            }
        }
        self.exec_cursor = self.core.executed_batches().len();
    }

    /// Arms (or tightens) the one-shot batch-fill timer to the core's
    /// next `max_delay` deadline.
    fn arm_batch_timer(&mut self, ctx: &mut Ctx<PbftMsg>) {
        if let Some(deadline) = self.core.next_batch_deadline() {
            let due = deadline.max(ctx.now() + 1);
            if self.batch_timer_at.is_none_or(|t| t > due) {
                self.batch_timer_at = Some(due);
                ctx.set_timer(due - ctx.now(), TIMER_BATCH);
            }
        }
    }
}

impl Actor for PbftNode {
    type Msg = PbftMsg;

    fn on_start(&mut self, ctx: &mut Ctx<PbftMsg>) {
        ctx.set_timer(TICK_EVERY, TIMER_TICK);
        if self.recovering {
            self.recovering = false;
            let out = self.core.request_sync(ctx.now());
            for (to, m) in out {
                ctx.send(to, m);
            }
        }
    }

    fn on_message(&mut self, from: NodeId, msg: PbftMsg, ctx: &mut Ctx<PbftMsg>) {
        // Client injections use `from == self` by convention; map them to
        // the request path.
        let out = self.core.on_message(from, msg, ctx.now());
        self.persist();
        for (to, m) in out {
            ctx.send(to, m);
        }
        self.arm_batch_timer(ctx);
    }

    fn on_timer(&mut self, timer: u64, ctx: &mut Ctx<PbftMsg>) {
        match timer {
            TIMER_TICK => {
                let out = self.core.on_tick(ctx.now(), VIEW_TIMEOUT);
                self.persist();
                for (to, m) in out {
                    ctx.send(to, m);
                }
                ctx.set_timer(TICK_EVERY, TIMER_TICK);
            }
            TIMER_BATCH => {
                self.batch_timer_at = None;
                let out = self.core.on_batch_timer(ctx.now());
                self.persist();
                for (to, m) in out {
                    ctx.send(to, m);
                }
            }
            _ => {}
        }
        self.arm_batch_timer(ctx);
    }
}

/// Builds an honest `n`-replica PBFT cluster.
pub fn cluster(n: usize) -> Vec<PbftNode> {
    (0..n).map(|id| PbftNode::new(id, n, Byzantine::Honest)).collect()
}

/// Builds a cluster with per-replica behaviors.
pub fn cluster_with(behaviors: &[Byzantine]) -> Vec<PbftNode> {
    let n = behaviors.len();
    behaviors
        .iter()
        .enumerate()
        .map(|(id, &b)| PbftNode::new(id, n, b))
        .collect()
}

/// Builds an honest `n`-replica cluster with batching configured.
pub fn cluster_batched(n: usize, cfg: BatchConfig) -> Vec<PbftNode> {
    (0..n)
        .map(|id| PbftNode::new(id, n, Byzantine::Honest).with_batching(cfg))
        .collect()
}

// The sharded runtime ships whole replica groups to worker threads, so
// the consensus kernel must stay free of thread-bound state (Rc,
// RefCell, raw pointers). Compile-time check; breaking it breaks the
// shard-per-thread runtime.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<PbftCore>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use prever_sim::{NetConfig, Simulation};

    fn submit(sim: &mut Simulation<PbftNode>, to: NodeId, id: u64) {
        sim.inject(to, to, PbftMsg::request(Command::new(id, format!("cmd-{id}"))), sim.now() + 1);
    }

    fn ids_of(node: &PbftNode) -> Vec<u64> {
        node.executed().iter().map(|d| d.command.id).collect()
    }

    #[test]
    fn commits_on_clean_run() {
        let n = 4;
        let mut sim = Simulation::new(cluster(n), NetConfig::default(), 1);
        for i in 0..20 {
            submit(&mut sim, 0, i);
        }
        let ok = sim.run_until_pred(1_000_000, |nodes| {
            nodes.iter().all(|nd| nd.core.executed_commands() >= 20)
        });
        assert!(ok, "not all replicas executed all commands");
        let reference = ids_of(sim.node(0));
        assert_eq!(reference.len(), 20);
        for i in 1..n {
            assert_eq!(ids_of(sim.node(i)), reference, "replica {i} diverged");
        }
    }

    #[test]
    fn happy_path_message_counts() {
        // A clean 4-replica run has a fully predictable message budget;
        // any retransmit, duplicate, or silent loss shifts these counts.
        let n = 4;
        let cmds = 5u64; // below CHECKPOINT_INTERVAL: no checkpoint traffic
        let mut sim = Simulation::new(cluster(n), NetConfig::default(), 77);
        for i in 0..cmds {
            submit(&mut sim, 0, i);
        }
        let ok = sim.run_until_pred(1_000_000, |nodes| {
            nodes.iter().all(|nd| nd.core.executed_commands() as u64 >= cmds)
        });
        assert!(ok, "run did not complete");
        // Drain in-flight traffic so every sent message is received.
        let deadline = sim.now() + 200_000;
        sim.run_until(deadline);
        for i in 0..n {
            assert_eq!(sim.node(i).core.view(), 0, "no view change expected");
        }
        // Primary: relays each request to the 3 backups, pre-prepares
        // each command once, and commits; its pre-prepare doubles as its
        // prepare vote, so it sends no explicit prepares.
        let s0 = sim.node(0).core.msg_stats();
        assert_eq!(s0.sent("request"), 3 * cmds);
        assert_eq!(s0.sent("pre_prepare"), 3 * cmds);
        assert_eq!(s0.sent("prepare"), 0);
        assert_eq!(s0.sent("commit"), 3 * cmds);
        assert_eq!(s0.recv("prepare"), 3 * cmds, "one prepare per backup per command");
        assert_eq!(s0.recv("commit"), 3 * cmds);
        // Backups: one pre-prepare in, one prepare broadcast (3 peers),
        // one commit broadcast per command; no pre-prepares out.
        for i in 1..n {
            let s = sim.node(i).core.msg_stats();
            assert_eq!(s.recv("request"), cmds, "backup {i} relayed-request count");
            assert_eq!(s.recv("pre_prepare"), cmds, "backup {i}");
            assert_eq!(s.sent("pre_prepare"), 0, "backup {i}");
            assert_eq!(s.sent("prepare"), 3 * cmds, "backup {i}");
            assert_eq!(s.sent("commit"), 3 * cmds, "backup {i}");
            assert_eq!(s.recv("prepare"), 2 * cmds, "backup {i} hears the other two backups");
            assert_eq!(s.recv("commit"), 3 * cmds, "backup {i}");
        }
        // Conservation: with no drops and no crashes, every message sent
        // is received exactly once (client injections are not receives).
        let total_sent: u64 = (0..n).map(|i| sim.node(i).core.msg_stats().total_sent()).sum();
        let total_recv: u64 = (0..n).map(|i| sim.node(i).core.msg_stats().total_recv()).sum();
        assert_eq!(total_sent, total_recv, "messages were lost or duplicated");
    }

    #[test]
    fn requests_to_backups_are_forwarded() {
        let n = 4;
        let mut sim = Simulation::new(cluster(n), NetConfig::default(), 2);
        for i in 0..8 {
            submit(&mut sim, (i % n as u64) as usize, i);
        }
        let ok = sim.run_until_pred(1_000_000, |nodes| {
            nodes.iter().all(|nd| nd.core.executed_commands() >= 8)
        });
        assert!(ok);
    }

    #[test]
    fn tolerates_f_silent_replicas() {
        // n = 7, f = 2: two silent replicas must not block progress.
        let behaviors = [
            Byzantine::Honest,
            Byzantine::Honest,
            Byzantine::Silent,
            Byzantine::Honest,
            Byzantine::Silent,
            Byzantine::Honest,
            Byzantine::Honest,
        ];
        let mut sim = Simulation::new(cluster_with(&behaviors), NetConfig::default(), 3);
        for i in 0..10 {
            submit(&mut sim, 0, i);
        }
        let ok = sim.run_until_pred(3_000_000, |nodes| {
            nodes
                .iter()
                .enumerate()
                .filter(|(i, _)| behaviors[*i] == Byzantine::Honest)
                .all(|(_, nd)| nd.core.executed_commands() >= 10)
        });
        assert!(ok, "honest replicas failed to execute with f silent nodes");
    }

    #[test]
    fn view_change_replaces_crashed_primary() {
        let n = 4;
        let mut sim = Simulation::new(cluster(n), NetConfig::default(), 4);
        // Commit a first batch under primary 0.
        for i in 0..3 {
            submit(&mut sim, 0, i);
        }
        assert!(sim.run_until_pred(1_000_000, |nodes| nodes[1].core.executed_commands() >= 3));
        // Crash the primary; submit to a backup.
        sim.crash(0);
        for i in 3..6 {
            submit(&mut sim, 1, i);
        }
        let ok = sim.run_until_pred(20_000_000, |nodes| {
            (1..4).all(|i| nodes[i].core.executed_commands() >= 6)
        });
        assert!(ok, "view change failed to restore progress");
        // All survivors in the same, higher view with identical logs.
        let v = sim.node(1).core.view();
        assert!(v >= 1, "view should have advanced");
        let reference = ids_of(sim.node(1));
        for i in 2..4 {
            assert_eq!(ids_of(sim.node(i)), reference);
        }
    }

    #[test]
    fn safety_under_equivocating_primary() {
        // Primary 0 equivocates. Safety: no two honest replicas execute
        // different commands at the same slot. Liveness: a view change
        // eventually replaces the primary and the request commits.
        let behaviors = [
            Byzantine::EquivocatingPrimary,
            Byzantine::Honest,
            Byzantine::Honest,
            Byzantine::Honest,
        ];
        let mut sim = Simulation::new(cluster_with(&behaviors), NetConfig::default(), 5);
        for i in 0..4 {
            submit(&mut sim, 1, i);
        }
        sim.run_until(30_000_000);
        // Safety check across honest replicas.
        for slot in 1..=10u64 {
            let mut seen: Option<u64> = None;
            for i in 1..4 {
                if let Some(d) = sim
                    .node(i)
                    .core
                    .executed()
                    .iter()
                    .find(|d| d.slot == slot)
                {
                    if let Some(prev) = seen {
                        assert_eq!(
                            prev, d.command.id,
                            "replicas diverged at slot {slot}"
                        );
                    }
                    seen = Some(d.command.id);
                }
            }
        }
        // Liveness: all four commands execute at the honest replicas.
        for i in 1..4 {
            assert!(
                sim.node(i).core.executed_commands() >= 4,
                "replica {i} executed only {} commands",
                sim.node(i).core.executed_commands()
            );
        }
        assert!(sim.node(1).core.view() >= 1, "equivocation should force a view change");
    }

    #[test]
    fn no_duplicate_execution_of_reinjected_requests() {
        let n = 4;
        let mut sim = Simulation::new(cluster(n), NetConfig::default(), 6);
        // The same command id submitted to several replicas.
        for target in 0..n {
            sim.inject(target, target, PbftMsg::request(Command::new(42, "dup")), sim.now() + 1);
        }
        sim.run_until(2_000_000);
        for i in 0..n {
            let count = sim
                .node(i)
                .core
                .executed()
                .iter()
                .filter(|d| d.command.id == 42)
                .count();
            assert_eq!(count, 1, "replica {i} executed the command {count} times");
        }
    }

    #[test]
    fn checkpoints_truncate_the_log() {
        let n = 4;
        let mut sim = Simulation::new(cluster(n), NetConfig::default(), 31);
        let total = 5 * CHECKPOINT_INTERVAL; // 80 commands
        for i in 0..total {
            submit(&mut sim, 0, i);
        }
        let ok = sim.run_until_pred(20_000_000, |nodes| {
            nodes.iter().all(|nd| nd.core.executed_commands() as u64 >= total)
        });
        assert!(ok);
        // Drain in-flight checkpoint votes.
        let deadline = sim.now() + 100_000;
        sim.run_until(deadline);
        for r in 0..n {
            let core = &sim.node(r).core;
            assert!(
                core.stable_seq() >= total - CHECKPOINT_INTERVAL,
                "replica {r}: stable at {}",
                core.stable_seq()
            );
            assert!(
                core.log_len() as u64 <= 2 * CHECKPOINT_INTERVAL,
                "replica {r}: log holds {} entries after {total} commands",
                core.log_len()
            );
            // Execution record intact.
            assert_eq!(core.executed_commands() as u64, total);
        }
    }

    #[test]
    fn checkpoint_digests_agree_across_replicas() {
        // The chained state digest is deterministic: replicas reach the
        // same stable checkpoint, proving identical execution order.
        let mut sim = Simulation::new(cluster(4), NetConfig::default(), 32);
        for i in 0..CHECKPOINT_INTERVAL {
            submit(&mut sim, (i % 4) as usize, i);
        }
        assert!(sim.run_until_pred(10_000_000, |nodes| {
            nodes.iter().all(|nd| nd.core.stable_seq() >= CHECKPOINT_INTERVAL)
        }));
    }

    #[test]
    fn restarted_replica_catches_up_via_state_transfer() {
        // Four durable replicas. Replica 2 crashes, loses its in-memory
        // state, and is rebuilt from its surviving journal; it must
        // catch up on everything committed while it was down and end
        // with the quorum's state digest.
        let n = 4;
        let logs: Vec<DurableLog> = (0..n).map(|_| DurableLog::new()).collect();
        let nodes: Vec<PbftNode> = (0..n)
            .map(|id| PbftNode::with_durable(id, n, Byzantine::Honest, logs[id].clone()))
            .collect();
        let mut sim = Simulation::new(nodes, NetConfig::default(), 11);
        for i in 0..20 {
            submit(&mut sim, 0, i);
        }
        assert!(sim.run_until_pred(2_000_000, |nodes| {
            nodes.iter().all(|nd| nd.core.executed_commands() >= 20)
        }));
        // Kill replica 2 with state loss; commit more while it is down.
        sim.crash(2);
        for i in 20..35 {
            submit(&mut sim, 0, i);
        }
        assert!(sim.run_until_pred(4_000_000, |nodes| {
            [0, 1, 3].iter().all(|&i| nodes[i].core.executed_commands() >= 35)
        }));
        let node2 = PbftNode::recover_with(2, n, Byzantine::Honest, logs[2].clone());
        assert_eq!(node2.core.executed_commands(), 20, "journal replay restores the history");
        sim.restart_with_loss(2, node2);
        // A few more commands prove the restarted replica participates.
        for i in 35..40 {
            submit(&mut sim, 0, i);
        }
        assert!(
            sim.run_until_pred(20_000_000, |nodes| {
                nodes.iter().all(|nd| nd.core.executed_commands() >= 40)
            }),
            "restarted replica failed to catch up"
        );
        assert!(sim.node(2).core.synced() > 0, "catch-up must use state transfer");
        // Executed-history digests agree — the provable catch-up check.
        let d0 = sim.node(0).core.state_digest();
        for i in 1..n {
            assert_eq!(sim.node(i).core.state_digest(), d0, "replica {i} digest diverged");
        }
        // And the journal replay agrees with the in-memory history.
        let replayed = logs[2].replay().expect("chain verifies");
        assert_eq!(replayed.entries.len(), sim.node(2).core.executed_batches().len());
    }

    #[test]
    fn stale_replayer_is_harmless() {
        // One replica endlessly replays stale protocol messages; the
        // other three must keep exact agreement and full liveness.
        let behaviors = [
            Byzantine::Honest,
            Byzantine::StaleReplayer,
            Byzantine::Honest,
            Byzantine::Honest,
        ];
        let mut sim = Simulation::new(cluster_with(&behaviors), NetConfig::default(), 12);
        for i in 0..20 {
            submit(&mut sim, 0, i);
        }
        assert!(sim.run_until_pred(5_000_000, |nodes| {
            [0, 2, 3].iter().all(|&i| nodes[i].core.executed_commands() >= 20)
        }));
        // Let the replayer spray its stash for a while longer.
        let deadline = sim.now() + 2_000_000;
        sim.run_until(deadline);
        let reference = ids_of(sim.node(0));
        assert_eq!(reference.len(), 20, "stale replays must not duplicate executions");
        for i in [2, 3] {
            assert_eq!(ids_of(sim.node(i)), reference, "replica {i} diverged");
        }
    }

    #[test]
    fn view_change_recovers_prepared_certificate_after_primary_crash() {
        // Crash the primary mid-batch, after slots have gathered prepare
        // quorums at the backups but before anything commits. The view
        // change must re-propose the prepared certificates, and no
        // command may be lost or executed twice.
        //
        // Construction: every link *into* the primary is dead (it never
        // hears a prepare, so it never commits) and the primary cannot
        // reach replica 3 (so commits among the backups stall at 2 < 2f+1
        // votes). Slots prepare at replicas 1 and 2 and then freeze
        // mid-batch; the primary crashes shortly after.
        let n = 4;
        let dead = prever_sim::LinkFault { drop: 1.0, ..Default::default() };
        let plan = prever_sim::FaultPlan::new()
            .link(1, 0, dead)
            .link(2, 0, dead)
            .link(3, 0, dead)
            .link(0, 3, dead)
            .crash_at(50_000, 0);
        let mut sim = Simulation::new(cluster(n), NetConfig::default(), 13);
        sim.set_fault_plan(plan);
        for i in 0..6 {
            submit(&mut sim, 0, i);
        }
        sim.run_until(50_000);
        let prepared = sim.node(1).core.prepared_certificates();
        assert!(!prepared.is_empty(), "no slot prepared mid-batch");
        assert_eq!(sim.node(1).core.executed_commands(), 0, "nothing may commit pre-crash");
        let (cert_seq, _, cert_batch) = prepared[0].clone();
        let ok = sim.run_until_pred(30_000_000, |nodes| {
            (1..4).all(|i| nodes[i].core.executed_commands() >= 6)
        });
        assert!(ok, "survivors failed to finish the batch after the crash");
        assert!(sim.node(1).core.view() >= 1, "a view change must have happened");
        let reference = ids_of(sim.node(1));
        for i in 2..4 {
            assert_eq!(ids_of(sim.node(i)), reference, "replica {i} diverged");
        }
        // No loss: all six commands executed exactly once.
        let mut sorted = reference.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<_>>());
        // The prepared certificate survived at its sequence number.
        let at_seq = sim
            .node(1)
            .core
            .executed()
            .iter()
            .find(|d| d.slot == cert_seq)
            .expect("certificate sequence executed");
        assert_eq!(
            at_seq.command.id,
            cert_batch.commands()[0].id,
            "prepared certificate was not re-proposed"
        );
    }

    #[test]
    fn batched_pipeline_commits_all_commands() {
        // 64 commands under an 8-command batch and a 4-deep window: the
        // primary must cut multi-command batches, every replica must
        // execute all 64 exactly once in the same order, and the
        // pre-prepare count must show the 3-phase round was amortized.
        let n = 4;
        let cfg = BatchConfig::new(8, 10_000, 4);
        let mut sim = Simulation::new(cluster_batched(n, cfg), NetConfig::default(), 21);
        for i in 0..64 {
            submit(&mut sim, 0, i);
        }
        let ok = sim.run_until_pred(5_000_000, |nodes| {
            nodes.iter().all(|nd| nd.core.executed_commands() >= 64)
        });
        assert!(ok, "batched cluster failed to execute all commands");
        let reference = ids_of(sim.node(0));
        let mut sorted = reference.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>(), "lost or duplicated commands");
        for i in 1..n {
            assert_eq!(ids_of(sim.node(i)), reference, "replica {i} diverged");
        }
        // Amortization: 64 commands must fit in far fewer than 64
        // rounds (exactly 8 if every batch filled; allow partial cuts).
        let batches = sim.node(0).core.executed_batches().len();
        assert!(batches <= 16, "expected ≤16 batches for 64 commands, got {batches}");
        assert!(
            sim.node(0).core.executed_batches().iter().any(|(_, b, _)| b.len() > 1),
            "no multi-command batch was ever cut"
        );
        let s0 = sim.node(0).core.msg_stats();
        assert_eq!(s0.sent("pre_prepare"), 3 * batches as u64);
    }

    #[test]
    fn batch_fill_delay_cuts_partial_batches() {
        // Fewer commands than max_batch: only the fill-delay timer can
        // cut the batch, so execution proves the timer path works.
        let n = 4;
        let cfg = BatchConfig::new(32, 20_000, 16);
        let mut sim = Simulation::new(cluster_batched(n, cfg), NetConfig::default(), 22);
        for i in 0..3 {
            submit(&mut sim, 0, i);
        }
        let ok = sim.run_until_pred(2_000_000, |nodes| {
            nodes.iter().all(|nd| nd.core.executed_commands() >= 3)
        });
        assert!(ok, "partial batch was never cut by the fill-delay timer");
        // All three commands rode one delay-cut batch.
        assert_eq!(sim.node(0).core.executed_batches().len(), 1);
        assert_eq!(sim.node(0).core.executed_batches()[0].1.len(), 3);
    }

    #[test]
    fn view_change_preserves_multi_command_batches() {
        // The batched variant of the mid-batch primary-crash test: slots
        // hold multi-command batches when the primary dies. The NewView
        // must replay the prepared batches *intact* (payloads, not just
        // digests) — the committed batch prefix is preserved and no
        // command is lost or duplicated across the view change.
        let n = 4;
        let cfg = BatchConfig::new(8, 5_000, 4);
        let dead = prever_sim::LinkFault { drop: 1.0, ..Default::default() };
        let plan = prever_sim::FaultPlan::new()
            .link(1, 0, dead)
            .link(2, 0, dead)
            .link(3, 0, dead)
            .link(0, 3, dead)
            .crash_at(50_000, 0);
        let mut sim = Simulation::new(cluster_batched(n, cfg), NetConfig::default(), 23);
        sim.set_fault_plan(plan);
        for i in 0..24 {
            submit(&mut sim, 0, i);
        }
        sim.run_until(50_000);
        let prepared = sim.node(1).core.prepared_certificates();
        assert!(!prepared.is_empty(), "no batch prepared mid-flight");
        assert!(
            prepared.iter().any(|(_, _, b)| b.len() > 1),
            "test construction must prepare a multi-command batch"
        );
        assert_eq!(sim.node(1).core.executed_commands(), 0, "nothing may commit pre-crash");
        let (_, _, cert_batch) = prepared[0].clone();
        let ok = sim.run_until_pred(30_000_000, |nodes| {
            (1..4).all(|i| nodes[i].core.executed_commands() >= 24)
        });
        assert!(ok, "survivors failed to finish the batches after the crash");
        assert!(sim.node(1).core.view() >= 1, "a view change must have happened");
        let reference = ids_of(sim.node(1));
        for i in 2..4 {
            assert_eq!(ids_of(sim.node(i)), reference, "replica {i} diverged");
        }
        // No loss, no duplication across the NewView.
        let mut sorted = reference.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..24).collect::<Vec<_>>());
        // The prepared batch survived as a unit: its commands executed
        // contiguously and in batch order at every survivor.
        let cert_ids: Vec<u64> = cert_batch.commands().iter().map(|c| c.id).collect();
        let pos = reference
            .windows(cert_ids.len())
            .position(|w| w == cert_ids.as_slice())
            .expect("prepared batch must be replayed intact and in order");
        let _ = pos;
    }

    #[test]
    fn deterministic_across_runs() {
        let run = |seed| {
            let mut sim = Simulation::new(cluster(4), NetConfig::default(), seed);
            for i in 0..10 {
                submit(&mut sim, 0, i);
            }
            sim.run_until(2_000_000);
            sim.node(2)
                .core
                .executed()
                .iter()
                .map(|d| (d.slot, d.command.id, d.at))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
    }
}
