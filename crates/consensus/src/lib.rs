//! # prever-consensus
//!
//! Replicated-log consensus protocols over the [`prever_sim`] simulator.
//!
//! PReVer's federated deployments need "establishing consensus among all
//! involved data managers" (RC4), and §6 of the paper fixes the baseline
//! set: *"the distributed solutions should be compared in terms of
//! throughput and latency with standard distributed fault-tolerant
//! protocols, e.g., Paxos and PBFT."* This crate implements all three
//! systems the comparison needs:
//!
//! * [`paxos`] — Multi-Paxos with a stable leader, the crash-fault
//!   baseline (the "trusted but unreliable" end of the spectrum);
//! * [`pbft`] — Practical Byzantine Fault Tolerance with the full
//!   three-phase protocol, view changes, and pluggable Byzantine
//!   behaviors for fault-injection testing — the substrate the paper's
//!   permissioned-blockchain infrastructure (Hyperledger Fabric,
//!   SharPer, Qanaat) builds on;
//! * [`sharded`] — a SharPer-style sharded deployment: independent PBFT
//!   clusters per shard with cross-shard transactions executed under a
//!   cross-shard commit barrier (see DESIGN.md for the fidelity note).
//!
//! All protocols expose the same observable: an ordered, executed log of
//! [`Command`]s with per-command decision timestamps, which the benches
//! turn into the throughput/latency series of experiments E3 and E7.
//!
//! ## Batched ordering
//!
//! Since DESIGN.md §11 the unit of replication is a [`Batch`] of
//! commands, not a single command: the leader/primary accumulates client
//! commands under a [`BatchConfig`] (max size, max fill delay, bounded
//! in-flight window) and runs one agreement round per batch. The batch
//! digest is a Merkle root (RFC 6962 shape, via `prever_crypto::merkle`)
//! over the cached per-command digests, so per-command digests are
//! computed once and vote messages stay constant-size no matter how
//! large the batch is. [`BatchConfig::default`] is one command per batch
//! with an unbounded window — byte-identical behavior to the pre-batching
//! protocol.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod durable;
pub mod paxos;
pub mod pbft;
pub mod sharded;

use bytes::Bytes;
use prever_crypto::merkle::MerkleTree;
use prever_crypto::Digest;
use prever_obs::TraceCtx;
use std::sync::{Arc, OnceLock};

/// An opaque replicated command (e.g. an encoded PReVer update).
///
/// Commands carry a client-assigned id so benches can match decisions
/// back to submissions.
///
/// The content digest is cached on first use ([`Command::digest`]), so
/// `id` and `payload` must be treated as immutable once a digest has
/// been taken — construct a fresh command via [`Command::new`] instead
/// of mutating in place.
#[derive(Debug, Default)]
pub struct Command {
    /// Client-assigned unique id.
    pub id: u64,
    /// Opaque payload. `Bytes`, not `Vec<u8>`: commands are cloned on
    /// every fan-out, batch assembly, and log append, and a refcounted
    /// slice makes each of those O(1) instead of a payload deep copy
    /// (see `tests/alloc.rs`).
    pub payload: Bytes,
    /// Compute-once digest cache (satellite of DESIGN.md §11: the hot
    /// path hashes each command exactly once, batching then reuses the
    /// cached leaves for the Merkle batch digest).
    cached_digest: OnceLock<Digest>,
    /// Causal trace context, minted at submission (DESIGN.md §13). A
    /// pure function of `id`, so wire decode and id-only pipeline paths
    /// (the cross-shard decision fan-out) re-derive the identical
    /// context; excluded from equality/hash/ordering for that reason.
    pub trace: TraceCtx,
}

impl Command {
    /// Builds a command, minting its deterministic trace context.
    pub fn new(id: u64, payload: impl Into<Bytes>) -> Self {
        Command {
            id,
            payload: payload.into(),
            cached_digest: OnceLock::new(),
            trace: TraceCtx::for_command(id),
        }
    }

    /// A content digest used where PBFT messages carry `D(m)`.
    /// Computed on first call, cached thereafter.
    pub fn digest(&self) -> Digest {
        *self
            .cached_digest
            .get_or_init(|| {
                prever_crypto::sha256::sha256_concat(&[&self.id.to_be_bytes(), &self.payload[..]])
            })
    }
}

impl Clone for Command {
    fn clone(&self) -> Self {
        Command {
            id: self.id,
            payload: self.payload.clone(),
            cached_digest: self.cached_digest.clone(),
            trace: self.trace,
        }
    }
}

impl PartialEq for Command {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id && self.payload == other.payload
    }
}
impl Eq for Command {}

impl std::hash::Hash for Command {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
        self.payload.hash(state);
    }
}

impl PartialOrd for Command {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Command {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.id, &self.payload).cmp(&(other.id, &other.payload))
    }
}

/// An ordered group of commands replicated as one unit: one 3-phase
/// round (PBFT) or one accept (Paxos) orders the whole batch.
///
/// Cloning is an `Arc` bump — broadcast fan-out shares one allocation
/// instead of deep-copying every command per destination (the clone-cut
/// satellite of DESIGN.md §11). Equality compares the Merkle digest.
#[derive(Clone, Debug)]
pub struct Batch {
    inner: Arc<BatchInner>,
}

#[derive(Debug)]
struct BatchInner {
    commands: Vec<Command>,
    digest: Digest,
}

impl Batch {
    /// Builds a batch over `commands`, computing the Merkle batch digest
    /// (RFC 6962 tree over the cached per-command digests) eagerly.
    pub fn new(commands: Vec<Command>) -> Self {
        let mut tree = MerkleTree::new();
        for c in &commands {
            tree.append(c.digest().as_bytes());
        }
        let digest = tree.root();
        Batch { inner: Arc::new(BatchInner { commands, digest }) }
    }

    /// A batch of one command.
    pub fn single(command: Command) -> Self {
        Self::new(vec![command])
    }

    /// The Merkle root over the per-command digests. This is the `D(m)`
    /// that PBFT prepare/commit votes and durable vote bindings carry.
    pub fn digest(&self) -> Digest {
        self.inner.digest
    }

    /// The batched commands, in execution order.
    pub fn commands(&self) -> &[Command] {
        &self.inner.commands
    }

    /// Number of commands in the batch.
    pub fn len(&self) -> usize {
        self.inner.commands.len()
    }

    /// True iff the batch holds no commands.
    pub fn is_empty(&self) -> bool {
        self.inner.commands.is_empty()
    }

    /// True iff any command in the batch has the given client id.
    pub fn contains_id(&self, id: u64) -> bool {
        self.inner.commands.iter().any(|c| c.id == id)
    }

    /// Length-framed wire/disk encoding: `count(u32) ‖ (id(u64) ‖
    /// len(u32) ‖ payload)*`. Inverse of [`Batch::decode`].
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(self.len() as u32).to_be_bytes());
        for c in &self.inner.commands {
            buf.extend_from_slice(&c.id.to_be_bytes());
            buf.extend_from_slice(&(c.payload.len() as u32).to_be_bytes());
            buf.extend_from_slice(&c.payload);
        }
    }

    /// Decodes a batch from `buf`; returns the batch and the number of
    /// bytes consumed, or `None` on malformed input.
    pub fn decode(buf: &[u8]) -> Option<(Batch, usize)> {
        let count = u32::from_be_bytes(buf.get(..4)?.try_into().ok()?) as usize;
        let mut at = 4usize;
        let mut commands = Vec::with_capacity(count);
        for _ in 0..count {
            let id = u64::from_be_bytes(buf.get(at..at + 8)?.try_into().ok()?);
            let len = u32::from_be_bytes(buf.get(at + 8..at + 12)?.try_into().ok()?) as usize;
            let payload = buf.get(at + 12..at + 12 + len)?.to_vec();
            commands.push(Command::new(id, payload));
            at += 12 + len;
        }
        Some((Batch::new(commands), at))
    }
}

impl PartialEq for Batch {
    fn eq(&self, other: &Self) -> bool {
        self.inner.digest == other.inner.digest
    }
}
impl Eq for Batch {}

/// Batching/pipelining knobs for the ordering protocols.
///
/// The leader accumulates client commands and cuts a batch when it holds
/// `max_batch` commands or the oldest has waited `max_delay` µs,
/// whichever comes first, subject to at most `window` unexecuted batches
/// in flight (pipelining depth). The default — one command per batch,
/// no delay, unbounded window — reproduces unbatched behavior exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchConfig {
    /// Maximum commands per batch (≥ 1).
    pub max_batch: usize,
    /// Maximum µs the oldest accumulated command may wait before the
    /// batch is cut short.
    pub max_delay: u64,
    /// Maximum unexecuted batches concurrently in flight.
    pub window: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig { max_batch: 1, max_delay: 0, window: usize::MAX }
    }
}

impl BatchConfig {
    /// Builds a config; `max_batch` is clamped to at least 1 and
    /// `window` to at least 1.
    pub fn new(max_batch: usize, max_delay: u64, window: usize) -> Self {
        BatchConfig { max_batch: max_batch.max(1), max_delay, window: window.max(1) }
    }
}

/// One executed log entry with its decision time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Decided {
    /// Log position.
    pub slot: u64,
    /// The command.
    pub command: Command,
    /// Virtual time (µs) at which this node learned the decision.
    pub at: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_digest_is_cached_and_stable() {
        let c = Command::new(7, b"alpha".to_vec());
        let d1 = c.digest();
        let d2 = c.digest();
        assert_eq!(d1, d2);
        // The clone carries the cache and agrees.
        assert_eq!(c.clone().digest(), d1);
        // A fresh command with identical content agrees too.
        assert_eq!(Command::new(7, b"alpha".to_vec()).digest(), d1);
        assert_ne!(Command::new(8, b"alpha".to_vec()).digest(), d1);
    }

    #[test]
    fn batch_digest_is_merkle_root_over_command_digests() {
        let cmds: Vec<Command> = (0..5).map(|i| Command::new(i, format!("c{i}"))).collect();
        let mut tree = MerkleTree::new();
        for c in &cmds {
            tree.append(c.digest().as_bytes());
        }
        let batch = Batch::new(cmds);
        assert_eq!(batch.digest(), tree.root());
        assert_eq!(batch.len(), 5);
        assert!(batch.contains_id(3));
        assert!(!batch.contains_id(9));
    }

    #[test]
    fn batch_digest_orders_and_contents_matter() {
        let a = Batch::new(vec![Command::new(1, "x"), Command::new(2, "y")]);
        let b = Batch::new(vec![Command::new(2, "y"), Command::new(1, "x")]);
        assert_ne!(a.digest(), b.digest(), "order must be authenticated");
        let c = Batch::new(vec![Command::new(1, "x"), Command::new(2, "z")]);
        assert_ne!(a.digest(), c.digest());
        assert_ne!(a, b);
        assert_eq!(a, Batch::new(vec![Command::new(1, "x"), Command::new(2, "y")]));
    }

    #[test]
    fn batch_encode_decode_roundtrip() {
        let batch = Batch::new(vec![
            Command::new(1, b"".to_vec()),
            Command::new(u64::MAX, b"payload-with-\x00-bytes".to_vec()),
            Command::new(42, vec![0xab; 300]),
        ]);
        let mut buf = vec![0xfe]; // leading junk the caller frames past
        batch.encode_into(&mut buf);
        let (decoded, used) = Batch::decode(&buf[1..]).expect("decodes");
        assert_eq!(used, buf.len() - 1);
        assert_eq!(decoded, batch);
        assert_eq!(decoded.commands(), batch.commands());
        // Truncated input is rejected, not mis-parsed.
        assert!(Batch::decode(&buf[1..buf.len() - 1]).is_none());
    }

    #[test]
    fn batch_clone_shares_the_allocation() {
        let batch = Batch::new(vec![Command::new(1, vec![0u8; 1024])]);
        let copy = batch.clone();
        assert!(Arc::ptr_eq(&batch.inner, &copy.inner));
    }

    #[test]
    fn batch_config_default_is_unbatched() {
        let cfg = BatchConfig::default();
        assert_eq!(cfg.max_batch, 1);
        assert_eq!(cfg.max_delay, 0);
        assert_eq!(cfg.window, usize::MAX);
        assert_eq!(BatchConfig::new(0, 5, 0), BatchConfig { max_batch: 1, max_delay: 5, window: 1 });
    }
}
