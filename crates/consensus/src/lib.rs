//! # prever-consensus
//!
//! Replicated-log consensus protocols over the [`prever_sim`] simulator.
//!
//! PReVer's federated deployments need "establishing consensus among all
//! involved data managers" (RC4), and §6 of the paper fixes the baseline
//! set: *"the distributed solutions should be compared in terms of
//! throughput and latency with standard distributed fault-tolerant
//! protocols, e.g., Paxos and PBFT."* This crate implements all three
//! systems the comparison needs:
//!
//! * [`paxos`] — Multi-Paxos with a stable leader, the crash-fault
//!   baseline (the "trusted but unreliable" end of the spectrum);
//! * [`pbft`] — Practical Byzantine Fault Tolerance with the full
//!   three-phase protocol, view changes, and pluggable Byzantine
//!   behaviors for fault-injection testing — the substrate the paper's
//!   permissioned-blockchain infrastructure (Hyperledger Fabric,
//!   SharPer, Qanaat) builds on;
//! * [`sharded`] — a SharPer-style sharded deployment: independent PBFT
//!   clusters per shard with cross-shard transactions executed under a
//!   cross-shard commit barrier (see DESIGN.md for the fidelity note).
//!
//! All protocols expose the same observable: an ordered, executed log of
//! [`Command`]s with per-command decision timestamps, which the benches
//! turn into the throughput/latency series of experiments E3 and E7.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod durable;
pub mod paxos;
pub mod pbft;
pub mod sharded;

/// An opaque replicated command (e.g. an encoded PReVer update).
///
/// Commands carry a client-assigned id so benches can match decisions
/// back to submissions.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Command {
    /// Client-assigned unique id.
    pub id: u64,
    /// Opaque payload.
    pub payload: Vec<u8>,
}

impl Command {
    /// Builds a command.
    pub fn new(id: u64, payload: impl Into<Vec<u8>>) -> Self {
        Command { id, payload: payload.into() }
    }

    /// A content digest used where PBFT messages carry `D(m)`.
    pub fn digest(&self) -> prever_crypto::Digest {
        prever_crypto::sha256::sha256_concat(&[&self.id.to_be_bytes(), &self.payload])
    }
}

/// One executed log entry with its decision time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Decided {
    /// Log position.
    pub slot: u64,
    /// The command.
    pub command: Command,
    /// Virtual time (µs) at which this node learned the decision.
    pub at: u64,
}
