//! SharPer-style sharded consensus.
//!
//! The Separ instantiation (paper §5) "relies on the permissioned
//! blockchain system SharPer to guarantee integrity of the global system
//! state", and Qanaat "provides scalability by partitioning data into
//! data shards" (RC4). This module reproduces that deployment shape:
//!
//! * the replica set is partitioned into shards, each running an
//!   independent [`PbftCore`] instance over its own members;
//! * *intra-shard* transactions involve one shard and commit in one PBFT
//!   round — so throughput scales with the number of shards;
//! * *cross-shard* transactions are ordered by every involved shard and
//!   complete under a **cross-shard commit barrier**: a replica reports a
//!   transaction globally committed only after its own shard executed it
//!   *and* it holds `f + 1` matching shard-committed votes from every
//!   other involved shard (at least one honest witness per shard).
//!
//! Fidelity note (also in DESIGN.md): SharPer proper runs one flattened
//! consensus across involved shards with vector sequence numbers; the
//! barrier construction here has the same message complexity class and
//! the same qualitative behavior — cross-shard transactions cost extra
//! wide-area rounds and coordination, intra-shard transactions scale
//! linearly — which is what experiment E7 measures. Cross-shard
//! transactions in this model never conflict (they are log appends), so
//! no abort path is required.

use crate::pbft::{Byzantine, PbftCore, PbftMsg, NOOP_ID, VIEW_TIMEOUT};
use crate::{BatchConfig, Command, Decided};
use prever_sim::{Actor, Ctx, NodeId, VoteSet};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Shard identifier (dense, 0-based).
pub type ShardId = usize;

/// Messages of the sharded deployment.
#[derive(Clone, Debug)]
pub enum ShardedMsg {
    /// Client request naming the involved shards.
    Request {
        /// The command.
        command: Command,
        /// Involved shards (sorted, deduplicated by the sender).
        involved: Vec<ShardId>,
    },
    /// Intra-shard PBFT traffic.
    Pbft(PbftMsg),
    /// A replica of `shard` reports it executed `tx_id` locally.
    ShardCommitted {
        /// Transaction id.
        tx_id: u64,
        /// The reporting replica's shard.
        shard: ShardId,
    },
    /// A replica asks a shard-mate about a transaction it executed (or
    /// recovered via state transfer) but cannot complete — typically
    /// because it missed the Request fan-out or the other shards' votes
    /// while it was down.
    TxQuery {
        /// Transaction id being asked about.
        tx_id: u64,
    },
    /// Answer to a [`ShardedMsg::TxQuery`]: everything the responder
    /// knows about the transaction.
    TxInfo {
        /// The transaction's command.
        command: Command,
        /// Its involved shards.
        involved: Vec<ShardId>,
        /// Whether the responder has passed the commit barrier for it.
        completed: bool,
    },
}

const TIMER_TICK: u64 = 1;
const TIMER_BATCH: u64 = 2;
const TICK_EVERY: u64 = 25_000;
/// How long a transaction may sit stuck before shard-mates are queried
/// (also the per-transaction re-query interval).
const QUERY_AFTER: u64 = 300_000; // 300 ms

/// Cluster geometry helper.
#[derive(Clone, Copy, Debug)]
pub struct Topology {
    /// Number of shards.
    pub n_shards: usize,
    /// Replicas per shard (3f + 1).
    pub replicas_per_shard: usize,
}

impl Topology {
    /// Total node count.
    pub fn n_nodes(&self) -> usize {
        self.n_shards * self.replicas_per_shard
    }

    /// The shard of a node.
    pub fn shard_of(&self, node: NodeId) -> ShardId {
        node / self.replicas_per_shard
    }

    /// Member node ids of a shard.
    pub fn members(&self, shard: ShardId) -> Vec<NodeId> {
        let lo = shard * self.replicas_per_shard;
        (lo..lo + self.replicas_per_shard).collect()
    }

    /// The f parameter per shard.
    pub fn f(&self) -> usize {
        (self.replicas_per_shard - 1) / 3
    }
}

/// A replica of the sharded deployment.
#[derive(Clone, Debug)]
pub struct ShardedNode {
    topology: Topology,
    shard: ShardId,
    core: PbftCore,
    /// tx_id → involved shards.
    involved: HashMap<u64, Vec<ShardId>>,
    /// Cursor into `core.executed()` for processing new local executions.
    exec_cursor: usize,
    /// (tx_id, shard) → distinct reporting replicas.
    shard_votes: HashMap<(u64, ShardId), VoteSet>,
    /// tx ids this replica's shard has executed locally (ordered, so
    /// the recovery probe iterates deterministically).
    local_done: BTreeSet<u64>,
    /// Shard-mates claiming a transaction completed (recovery path:
    /// `f + 1` such claims adopt the completion without re-collecting
    /// the cross-shard votes).
    completed_votes: HashMap<u64, VoteSet>,
    /// Per-tx probe bookkeeping: when the tx was first seen stuck /
    /// last queried.
    query_at: HashMap<u64, u64>,
    /// Locally executed entries whose involvement is not yet known
    /// (PrePrepare can outrun the Request fan-out).
    deferred: Vec<Decided>,
    /// Globally completed transactions in completion order.
    completed: Vec<Decided>,
    completed_ids: HashSet<u64>,
    /// Earliest armed batch timer (simulator timers cannot be
    /// cancelled, so re-arming is deduplicated).
    batch_timer_at: Option<u64>,
}

impl ShardedNode {
    /// Creates the replica with simulator id `id`.
    pub fn new(id: NodeId, topology: Topology, byz: Byzantine) -> Self {
        let shard = topology.shard_of(id);
        let core = PbftCore::new(id, topology.members(shard), byz);
        ShardedNode {
            topology,
            shard,
            core,
            involved: HashMap::new(),
            exec_cursor: 0,
            shard_votes: HashMap::new(),
            local_done: BTreeSet::new(),
            completed_votes: HashMap::new(),
            query_at: HashMap::new(),
            deferred: Vec::new(),
            completed: Vec::new(),
            completed_ids: HashSet::new(),
            batch_timer_at: None,
        }
    }

    /// Creates the replica with a batching policy on its shard's core.
    pub fn with_batching(id: NodeId, topology: Topology, byz: Byzantine, cfg: BatchConfig) -> Self {
        let mut node = ShardedNode::new(id, topology, byz);
        node.core.set_batch_config(cfg);
        node
    }

    /// This replica's shard.
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// Globally completed transactions (commit-barrier passed).
    pub fn completed(&self) -> &[Decided] {
        &self.completed
    }

    /// Count of completed transactions.
    pub fn completed_count(&self) -> usize {
        self.completed.len()
    }

    /// One-line state summary for harness debugging: completion set,
    /// local executions, and any transactions stuck mid-barrier.
    pub fn debug_summary(&self) -> String {
        let mut completed: Vec<u64> = self.completed_ids.iter().copied().collect();
        completed.sort_unstable();
        let local: Vec<u64> = self.local_done.iter().copied().collect();
        let deferred: Vec<u64> = self.deferred.iter().map(|d| d.command.id).collect();
        let stuck: Vec<String> = self
            .local_done
            .iter()
            .filter(|id| !self.completed_ids.contains(id))
            .map(|id| {
                let votes: Vec<String> = self
                    .involved
                    .get(id)
                    .map(|inv| {
                        inv.iter()
                            .filter(|&&s| s != self.shard)
                            .map(|&s| {
                                let got = self
                                    .shard_votes
                                    .get(&(*id, s))
                                    .map(|v| v.len())
                                    .unwrap_or(0);
                                format!("shard{s}:{got}")
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                format!("{id}[{}]", votes.join(","))
            })
            .collect();
        format!(
            "view={} last_exec={} completed={completed:?} local={local:?} \
             deferred={deferred:?} stuck={stuck:?}",
            self.core.view(),
            self.core.executed().len(),
        )
    }

    fn forward_pbft(&self, out: Vec<(NodeId, PbftMsg)>, ctx: &mut Ctx<ShardedMsg>) {
        for (to, msg) in out {
            ctx.send(to, ShardedMsg::Pbft(msg));
        }
    }

    /// Arms a timer for the earliest pending batch fill-delay expiry
    /// (no-op when the core batches immediately).
    fn arm_batch_timer(&mut self, ctx: &mut Ctx<ShardedMsg>) {
        if let Some(deadline) = self.core.next_batch_deadline() {
            let due = deadline.max(ctx.now() + 1);
            if self.batch_timer_at.is_none_or(|t| t > due) {
                self.batch_timer_at = Some(due);
                ctx.set_timer(due - ctx.now(), TIMER_BATCH);
            }
        }
    }

    /// Re-processes executions that were deferred for missing
    /// involvement metadata.
    fn retry_deferred(&mut self, ctx: &mut Ctx<ShardedMsg>) {
        let still_unknown: Vec<Decided> = {
            let deferred = std::mem::take(&mut self.deferred);
            let (ready, waiting): (Vec<_>, Vec<_>) = deferred
                .into_iter()
                .partition(|d| self.involved.contains_key(&d.command.id));
            for d in ready {
                self.process_execution(d, ctx);
            }
            waiting
        };
        self.deferred = still_unknown;
    }

    /// Processes newly executed local log entries: records them and
    /// broadcasts shard-committed votes for cross-shard transactions.
    /// Entries whose involvement metadata has not arrived yet are
    /// deferred until the Request fan-out catches up.
    fn drain_executions(&mut self, ctx: &mut Ctx<ShardedMsg>) {
        while self.exec_cursor < self.core.executed().len() {
            let d = self.core.executed()[self.exec_cursor].clone();
            self.exec_cursor += 1;
            if d.command.id == NOOP_ID {
                continue;
            }
            self.process_execution(d, ctx);
        }
    }

    fn process_execution(&mut self, d: Decided, ctx: &mut Ctx<ShardedMsg>) {
        let Some(involved) = self.involved.get(&d.command.id).cloned() else {
            self.deferred.push(d);
            return;
        };
        self.local_done.insert(d.command.id);
        self.shard_votes
            .entry((d.command.id, self.shard))
            .or_default()
            .add(ctx.id());
        self.send_shard_votes(d.command.id, &involved, ctx);
        self.try_complete(d.command.id, d.command.clone(), ctx.now());
    }

    fn send_shard_votes(&self, tx_id: u64, involved: &[ShardId], ctx: &mut Ctx<ShardedMsg>) {
        for &s in involved {
            if s == self.shard {
                continue;
            }
            for member in self.topology.members(s) {
                ctx.send(member, ShardedMsg::ShardCommitted { tx_id, shard: self.shard });
            }
        }
    }

    fn try_complete(&mut self, tx_id: u64, command: Command, now: u64) {
        if self.completed_ids.contains(&tx_id) || !self.local_done.contains(&tx_id) {
            return;
        }
        // Unknown involvement: the barrier cannot be evaluated yet.
        let Some(involved) = self.involved.get(&tx_id).cloned() else {
            return;
        };
        let need = self.topology.f() + 1;
        let all_voted = involved.iter().all(|&s| {
            if s == self.shard {
                true
            } else {
                self.shard_votes
                    .get(&(tx_id, s))
                    .is_some_and(|v| v.len() >= need)
            }
        });
        if all_voted {
            self.completed_ids.insert(tx_id);
            let slot = self.completed.len() as u64 + 1;
            self.completed.push(Decided { slot, command, at: now });
            if involved.len() > 1 {
                prever_obs::counter("sharded.completed.cross_shard").inc();
                prever_obs::log!(Debug, "cross-shard tx {tx_id} passed the commit barrier");
            } else {
                prever_obs::counter("sharded.completed.intra_shard").inc();
            }
        }
    }

    /// Recovery probe: queries shard-mates about transactions that have
    /// been stuck (executed-or-deferred but not completed) for longer
    /// than [`QUERY_AFTER`]. Replays every [`QUERY_AFTER`] until the
    /// transaction completes.
    fn probe_stuck(&mut self, ctx: &mut Ctx<ShardedMsg>) {
        let now = ctx.now();
        let mut stuck: Vec<u64> = self.deferred.iter().map(|d| d.command.id).collect();
        stuck.extend(self.local_done.iter().filter(|id| !self.completed_ids.contains(id)));
        stuck.sort_unstable();
        stuck.dedup();
        for tx_id in stuck {
            let since = *self.query_at.entry(tx_id).or_insert(now);
            if now.saturating_sub(since) < QUERY_AFTER {
                continue;
            }
            self.query_at.insert(tx_id, now);
            prever_obs::counter("sharded.tx_queries").inc();
            for member in self.topology.members(self.shard) {
                if member != ctx.id() {
                    ctx.send(member, ShardedMsg::TxQuery { tx_id });
                }
            }
        }
    }
}

impl Actor for ShardedNode {
    type Msg = ShardedMsg;

    fn on_start(&mut self, ctx: &mut Ctx<ShardedMsg>) {
        ctx.set_timer(TICK_EVERY, TIMER_TICK);
    }

    fn on_message(&mut self, from: NodeId, msg: ShardedMsg, ctx: &mut Ctx<ShardedMsg>) {
        let _span = prever_obs::span!(match &msg {
            ShardedMsg::Request { .. } => "sharded.request",
            ShardedMsg::Pbft(_) => "sharded.pbft",
            ShardedMsg::ShardCommitted { .. } => "sharded.shard_committed",
            ShardedMsg::TxQuery { .. } => "sharded.tx_query",
            ShardedMsg::TxInfo { .. } => "sharded.tx_info",
        });
        match msg {
            ShardedMsg::Request { command, involved } => {
                let is_client = from == ctx.id();
                self.involved.entry(command.id).or_insert_with(|| involved.clone());
                if is_client {
                    // Fan the request out to every replica of every
                    // involved shard, so all of them learn the
                    // involvement set (and resubmissions after a
                    // partition reach the other shards again).
                    for &s in &involved {
                        for member in self.topology.members(s) {
                            if member != ctx.id() {
                                ctx.send(
                                    member,
                                    ShardedMsg::Request {
                                        command: command.clone(),
                                        involved: involved.clone(),
                                    },
                                );
                            }
                        }
                    }
                }
                // Involvement may have arrived after the execution.
                self.retry_deferred(ctx);
                if involved.contains(&self.shard) {
                    if self.local_done.contains(&command.id) {
                        // Already executed locally (e.g. a resubmission
                        // after a partition): re-announce our shard vote
                        // so the other shards can pass their barrier.
                        self.send_shard_votes(command.id, &involved, ctx);
                    } else {
                        let out = self.core.on_request(command, ctx.now());
                        self.forward_pbft(out, ctx);
                        self.drain_executions(ctx);
                    }
                }
            }
            ShardedMsg::Pbft(m) => {
                // Wrap forwarded Requests so involvement metadata follows.
                let out = self.core.on_message(from, m, ctx.now());
                self.forward_pbft(out, ctx);
                self.drain_executions(ctx);
            }
            ShardedMsg::ShardCommitted { tx_id, shard } => {
                if self.topology.shard_of(from) != shard {
                    return; // a replica may only vote for its own shard
                }
                self.shard_votes.entry((tx_id, shard)).or_default().add(from);
                if let Some(cmd) = self
                    .core
                    .executed()
                    .iter()
                    .find(|d| d.command.id == tx_id)
                    .map(|d| d.command.clone())
                {
                    self.try_complete(tx_id, cmd, ctx.now());
                }
            }
            ShardedMsg::TxQuery { tx_id } => {
                // Only shard-mates are answered: involvement metadata
                // and completion claims cross shards via the normal
                // Request fan-out and ShardCommitted votes instead.
                if self.topology.shard_of(from) != self.shard || from == ctx.id() {
                    return;
                }
                let Some(involved) = self.involved.get(&tx_id).cloned() else {
                    return;
                };
                let Some(command) = self
                    .core
                    .executed()
                    .iter()
                    .find(|d| d.command.id == tx_id)
                    .map(|d| d.command.clone())
                else {
                    return;
                };
                let completed = self.completed_ids.contains(&tx_id);
                ctx.send(from, ShardedMsg::TxInfo { command, involved, completed });
            }
            ShardedMsg::TxInfo { command, involved, completed } => {
                if self.topology.shard_of(from) != self.shard {
                    return;
                }
                let tx_id = command.id;
                self.involved.entry(tx_id).or_insert_with(|| involved.clone());
                self.retry_deferred(ctx);
                if completed {
                    self.completed_votes.entry(tx_id).or_default().add(from);
                }
                self.try_complete(tx_id, command.clone(), ctx.now());
                // Adoption: f + 1 shard-mates passed the barrier, so at
                // least one honest replica verified the cross-shard
                // votes — adopt the completion rather than waiting for
                // votes the other shards will never re-send.
                let adopted = !self.completed_ids.contains(&tx_id)
                    && self.local_done.contains(&tx_id)
                    && self
                        .completed_votes
                        .get(&tx_id)
                        .is_some_and(|v| v.len() > self.topology.f());
                if adopted {
                    self.completed_ids.insert(tx_id);
                    let slot = self.completed.len() as u64 + 1;
                    self.completed.push(Decided { slot, command, at: ctx.now() });
                    prever_obs::counter("sharded.completed.adopted").inc();
                }
            }
        }
        self.arm_batch_timer(ctx);
    }

    fn on_timer(&mut self, timer: u64, ctx: &mut Ctx<ShardedMsg>) {
        match timer {
            TIMER_TICK => {
                let out = self.core.on_tick(ctx.now(), VIEW_TIMEOUT);
                self.forward_pbft(out, ctx);
                self.drain_executions(ctx);
                self.probe_stuck(ctx);
                ctx.set_timer(TICK_EVERY, TIMER_TICK);
            }
            TIMER_BATCH => {
                self.batch_timer_at = None;
                let out = self.core.on_batch_timer(ctx.now());
                self.forward_pbft(out, ctx);
                self.drain_executions(ctx);
            }
            _ => {}
        }
        self.arm_batch_timer(ctx);
    }
}

/// Builds an honest sharded cluster.
pub fn cluster(topology: Topology) -> Vec<ShardedNode> {
    (0..topology.n_nodes())
        .map(|id| ShardedNode::new(id, topology, Byzantine::Honest))
        .collect()
}

/// Builds an honest sharded cluster whose per-shard cores batch under
/// `cfg` (batches may mix intra- and cross-shard transactions; the
/// commit barrier still applies per transaction after execution).
pub fn cluster_batched(topology: Topology, cfg: BatchConfig) -> Vec<ShardedNode> {
    (0..topology.n_nodes())
        .map(|id| ShardedNode::with_batching(id, topology, Byzantine::Honest, cfg))
        .collect()
}

/// A cross-shard request helper: submit `command` involving `involved`
/// shards to the primary of the lowest involved shard.
pub fn submit(
    sim: &mut prever_sim::Simulation<ShardedNode>,
    topology: Topology,
    command: Command,
    mut involved: Vec<ShardId>,
    at: u64,
) {
    involved.sort_unstable();
    involved.dedup();
    assert!(!involved.is_empty());
    let home = topology.members(involved[0])[0];
    sim.inject(home, home, ShardedMsg::Request { command, involved }, at);
}

#[cfg(test)]
mod tests {
    use super::*;
    use prever_sim::{NetConfig, Simulation};

    fn topo(shards: usize) -> Topology {
        Topology { n_shards: shards, replicas_per_shard: 4 }
    }

    #[test]
    fn topology_mapping() {
        let t = topo(3);
        assert_eq!(t.n_nodes(), 12);
        assert_eq!(t.shard_of(0), 0);
        assert_eq!(t.shard_of(5), 1);
        assert_eq!(t.shard_of(11), 2);
        assert_eq!(t.members(1), vec![4, 5, 6, 7]);
        assert_eq!(t.f(), 1);
    }

    #[test]
    fn intra_shard_transactions_complete_per_shard() {
        let t = topo(2);
        let mut sim = Simulation::new(cluster(t), NetConfig::default(), 1);
        for i in 0..6u64 {
            let shard = (i % 2) as usize;
            submit(&mut sim, t, Command::new(i, "intra"), vec![shard], i + 1);
        }
        let ok = sim.run_until_pred(3_000_000, |nodes| {
            // Every replica of shard s completes the 3 txs routed to s.
            (0..t.n_nodes()).all(|id| nodes[id].completed_count() >= 3)
        });
        assert!(ok, "intra-shard transactions did not complete");
        // Shard 0 replicas must NOT have executed shard-1 commands.
        let shard0_ids: Vec<u64> =
            sim.node(0).completed().iter().map(|d| d.command.id).collect();
        assert!(shard0_ids.iter().all(|id| id % 2 == 0));
    }

    #[test]
    fn cross_shard_transaction_completes_everywhere() {
        let t = topo(3);
        let mut sim = Simulation::new(cluster(t), NetConfig::default(), 2);
        submit(&mut sim, t, Command::new(7, "cross"), vec![0, 2], 1);
        let ok = sim.run_until_pred(3_000_000, |nodes| {
            t.members(0)
                .into_iter()
                .chain(t.members(2))
                .all(|id| nodes[id].completed_count() >= 1)
        });
        assert!(ok, "cross-shard tx did not complete on involved shards");
        // Uninvolved shard 1 never sees it.
        for id in t.members(1) {
            assert_eq!(sim.node(id).completed_count(), 0);
        }
    }

    #[test]
    fn mixed_workload_all_complete() {
        let t = topo(2);
        let mut sim = Simulation::new(cluster(t), NetConfig::default(), 3);
        // 4 intra (2 per shard) + 2 cross.
        submit(&mut sim, t, Command::new(0, "a"), vec![0], 1);
        submit(&mut sim, t, Command::new(1, "b"), vec![1], 2);
        submit(&mut sim, t, Command::new(2, "c"), vec![0], 3);
        submit(&mut sim, t, Command::new(3, "d"), vec![1], 4);
        submit(&mut sim, t, Command::new(4, "x"), vec![0, 1], 5);
        submit(&mut sim, t, Command::new(5, "y"), vec![0, 1], 6);
        let ok = sim.run_until_pred(5_000_000, |nodes| {
            // Each shard: 2 intra + 2 cross = 4 completions per replica.
            (0..t.n_nodes()).all(|id| nodes[id].completed_count() >= 4)
        });
        assert!(ok, "mixed workload did not complete");
    }

    #[test]
    fn cross_shard_barrier_waits_for_other_shard() {
        let t = topo(2);
        let mut sim = Simulation::new(cluster(t), NetConfig::default(), 4);
        // Partition shard 1 away before submitting a cross-shard tx.
        let groups: Vec<usize> = (0..t.n_nodes()).map(|id| t.shard_of(id)).collect();
        sim.set_partition(groups);
        submit(&mut sim, t, Command::new(9, "blocked"), vec![0, 1], 1);
        sim.run_until(2_000_000);
        // Shard 0 may have ordered it locally, but the barrier must hold.
        for id in t.members(0) {
            assert_eq!(
                sim.node(id).completed_count(),
                0,
                "barrier leaked on node {id}"
            );
        }
        // Heal: the forwarded request and votes flow, tx completes.
        sim.heal_partition();
        // Re-submit (the original fan-out was dropped by the partition).
        let at = sim.now() + 10;
        submit(&mut sim, t, Command::new(9, "blocked"), vec![0, 1], at);
        let ok = sim.run_until_pred(10_000_000, |nodes| {
            t.members(0)
                .into_iter()
                .chain(t.members(1))
                .all(|id| nodes[id].completed_count() >= 1)
        });
        assert!(ok, "tx did not complete after heal");
    }

    #[test]
    fn restarted_replica_recovers_completions_via_peer_queries() {
        // Replica 1 (a shard-0 backup) is replaced by a blank actor
        // mid-run. Its fresh core catches up on the executed history via
        // PBFT state transfer, but the involvement metadata and the
        // other shard's votes are gone — TxQuery/TxInfo probing against
        // shard-mates must recover the completions.
        let t = topo(2);
        let mut sim = Simulation::new(cluster(t), NetConfig::default(), 21);
        // 3 intra-shard-0 txs + 1 cross-shard tx complete everywhere.
        submit(&mut sim, t, Command::new(0, "a"), vec![0], 1);
        submit(&mut sim, t, Command::new(1, "b"), vec![0], 2);
        submit(&mut sim, t, Command::new(2, "c"), vec![0], 3);
        submit(&mut sim, t, Command::new(3, "x"), vec![0, 1], 4);
        assert!(sim.run_until_pred(5_000_000, |nodes| {
            t.members(0).into_iter().all(|id| nodes[id].completed_count() >= 4)
        }));
        // Blank restart of replica 1; new work keeps the shard busy so
        // its core notices the lag and state-transfers.
        sim.restart_with_loss(1, ShardedNode::new(1, t, Byzantine::Honest));
        let at = sim.now() + 10;
        submit(&mut sim, t, Command::new(4, "d"), vec![0], at);
        submit(&mut sim, t, Command::new(5, "e"), vec![0], at + 1);
        let ok = sim.run_until_pred(30_000_000, |nodes| {
            t.members(0).into_iter().all(|id| nodes[id].completed_count() >= 6)
        });
        assert!(ok, "restarted replica failed to recover its completions");
        // Same completion *set* everywhere (order may differ for the
        // recovered replica).
        let expect: HashSet<u64> = (0..6).collect();
        for id in t.members(0) {
            let got: HashSet<u64> =
                sim.node(id).completed().iter().map(|d| d.command.id).collect();
            assert_eq!(got, expect, "node {id} completion set");
        }
    }

    #[test]
    fn batched_shards_complete_mixed_workload() {
        // Same mixed workload as above, but each shard's core cuts
        // multi-command batches; every transaction (intra and cross)
        // must still pass the commit barrier exactly once.
        let t = topo(2);
        let cfg = BatchConfig::new(4, 15_000, 4);
        let mut sim = Simulation::new(cluster_batched(t, cfg), NetConfig::default(), 13);
        // ids 3 and 7 are cross-shard; the rest alternate shards:
        // shard 0 sees {0,2,4,6} intra + {3,7} cross = 6 completions,
        // shard 1 sees {1,5} intra + {3,7} cross = 4 completions.
        for i in 0..8u64 {
            let involved = if i % 4 == 3 { vec![0, 1] } else { vec![(i % 2) as usize] };
            submit(&mut sim, t, Command::new(i, format!("m-{i}")), involved, 1 + i * 20);
        }
        let ok = sim.run_until_pred(10_000_000, |nodes| {
            (0..t.n_nodes()).all(|id| {
                let want = if t.shard_of(id) == 0 { 6 } else { 4 };
                nodes[id].completed_count() >= want
            })
        });
        assert!(ok, "batched sharded workload did not complete");
        // No duplicates on any replica.
        for id in 0..t.n_nodes() {
            let ids: Vec<u64> = sim.node(id).completed().iter().map(|d| d.command.id).collect();
            let mut dedup = ids.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(ids.len(), dedup.len(), "node {id} completed a tx twice");
        }
    }

    #[test]
    fn throughput_scales_with_shards_shape() {
        // Coarse shape check (the real measurement is bench E7): with a
        // pure intra-shard workload, 2 shards complete 2× the work of 1
        // shard in similar virtual time.
        let run = |shards: usize, txs: u64| -> u64 {
            let t = topo(shards);
            let mut sim = Simulation::new(cluster(t), NetConfig::default(), 7);
            for i in 0..txs {
                let shard = (i % shards as u64) as usize;
                submit(&mut sim, t, Command::new(i, "w"), vec![shard], 1 + i);
            }
            let per_shard = txs / shards as u64;
            let done = sim.run_until_pred(20_000_000, |nodes| {
                (0..t.n_nodes()).all(|id| nodes[id].completed_count() as u64 >= per_shard)
            });
            assert!(done);
            sim.now()
        };
        let t1 = run(1, 40);
        let t2 = run(2, 40);
        // Each shard processes half the load; virtual completion time
        // should not be much larger than the single-shard case.
        assert!(
            t2 < t1 * 2,
            "sharding should not slow down intra-shard work: t1={t1} t2={t2}"
        );
    }
}
