//! SharPer-style sharded consensus with cross-shard lock/order/commit.
//!
//! The Separ instantiation (paper §5) "relies on the permissioned
//! blockchain system SharPer to guarantee integrity of the global system
//! state", and Qanaat "provides scalability by partitioning data into
//! data shards" (RC4). This module reproduces that deployment shape:
//!
//! * the replica set is partitioned into shards, each running an
//!   independent [`PbftCore`] instance over its own members;
//! * *intra-shard* transactions involve one shard and commit in one PBFT
//!   round — so throughput scales with the number of shards (and, on the
//!   [`prever_sim::ParallelSim`] runtime, with cores: each shard's
//!   replica group is a `Send` shard core on its own OS thread);
//! * *cross-shard* transactions run a **lock/order/commit** protocol
//!   (SharPer/AHL shape). Every involved shard orders the transaction in
//!   its local log (the lock/order step — log position is the lock; log
//!   appends never conflict, so locking cannot deadlock). Each replica
//!   then sends a `Prepared` certificate vote — carrying the Merkle
//!   digest of the batch that ordered the transaction — to the
//!   *coordinator shard* (the lowest involved shard). A coordinator
//!   replica holding `f + 1` digest-consistent votes from **every**
//!   involved shard submits a *commit decision* into its own shard's
//!   PBFT log; if the certificates do not assemble within
//!   [`CROSS_TIMEOUT`] it submits an *abort decision* instead. The
//!   first decision ordered wins (PBFT dedups by command id), so the
//!   outcome is atomic: no two replicas can resolve the same
//!   transaction differently. Coordinator replicas broadcast the
//!   decided `Outcome` to the other involved shards, whose replicas
//!   finalize on `f + 1` matching outcome votes (one honest witness).
//!
//! A stalled or partitioned shard therefore cannot wedge the others:
//! the coordinator aborts after the timeout, survivors resolve, and the
//! stalled shard learns the abort on heal by re-announcing `Prepared`
//! (the coordinator replies with the recorded outcome).
//!
//! Fidelity note (also in DESIGN.md §12): SharPer proper runs one
//! flattened consensus across involved shards with vector sequence
//! numbers; the construction here has the same message complexity class
//! and the same qualitative behavior — cross-shard transactions cost
//! extra wide-area rounds and can abort under faults, intra-shard
//! transactions scale linearly — which is what experiment E7 measures.

use crate::pbft::{Byzantine, PbftCore, PbftMsg, NOOP_ID, VIEW_TIMEOUT};
use crate::{BatchConfig, Command};
use prever_crypto::Digest;
use prever_sim::{Actor, Ctx, NodeId, VoteSet};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Arc;

/// Shard identifier (dense, 0-based).
pub type ShardId = usize;

/// High bit tagging cross-shard *decision* commands in a coordinator
/// shard's log. Application transaction ids must stay below this.
pub const DECIDE_BIT: u64 = 1 << 63;

/// How long a coordinator replica waits for the full set of involved-
/// shard certificates before submitting an abort decision.
pub const CROSS_TIMEOUT: u64 = 600_000; // 600 ms

/// Messages of the sharded deployment.
///
/// `Command` and the involvement list are `Arc`-shared: the request
/// fan-out sends the same payload to every replica of every involved
/// shard, so by-value messages would deep-copy the payload per
/// destination (see the allocation test in `tests/alloc.rs`).
#[derive(Clone, Debug)]
pub enum ShardedMsg {
    /// Client request naming the involved shards.
    Request {
        /// The command (shared, not deep-copied per destination).
        command: Arc<Command>,
        /// Involved shards (sorted, deduplicated by the sender).
        involved: Arc<[ShardId]>,
    },
    /// Intra-shard PBFT traffic.
    Pbft(PbftMsg),
    /// Lock/order certificate vote: a replica of `shard` ordered and
    /// executed `tx_id` in the batch with Merkle digest `digest`.
    /// Addressed to the coordinator shard's replicas.
    Prepared {
        /// Transaction id.
        tx_id: u64,
        /// The reporting replica's shard.
        shard: ShardId,
        /// Merkle digest of the local batch that ordered the tx.
        digest: Digest,
    },
    /// A coordinator-shard replica announces the decided outcome
    /// (ordered through the coordinator shard's own PBFT log).
    Outcome {
        /// Transaction id.
        tx_id: u64,
        /// true = commit, false = abort.
        commit: bool,
        /// Involved shards (so a replica that missed the request fan-
        /// out can still finalize).
        involved: Arc<[ShardId]>,
    },
    /// A replica asks a shard-mate about a transaction it executed (or
    /// recovered via state transfer) but cannot resolve — typically
    /// because it missed the Request fan-out or the outcome while it
    /// was down.
    TxQuery {
        /// Transaction id being asked about.
        tx_id: u64,
    },
    /// Answer to a [`ShardedMsg::TxQuery`]: everything the responder
    /// knows about the transaction (no payload — the asker recovers
    /// commands via PBFT state transfer).
    TxInfo {
        /// Transaction id.
        tx_id: u64,
        /// Its involved shards.
        involved: Arc<[ShardId]>,
        /// Whether the responder completed (committed) it.
        completed: bool,
        /// Whether the responder recorded a global abort for it.
        aborted: bool,
    },
}

const TIMER_TICK: u64 = 1;
const TIMER_BATCH: u64 = 2;
const TICK_EVERY: u64 = 25_000;
/// How long a transaction may sit stuck before shard-mates are queried
/// (also the per-transaction re-query/re-announce interval).
const QUERY_AFTER: u64 = 300_000; // 300 ms

/// Cluster geometry helper.
#[derive(Clone, Copy, Debug)]
pub struct Topology {
    /// Number of shards.
    pub n_shards: usize,
    /// Replicas per shard (3f + 1).
    pub replicas_per_shard: usize,
}

impl Topology {
    /// Total node count.
    pub fn n_nodes(&self) -> usize {
        self.n_shards * self.replicas_per_shard
    }

    /// The shard of a node.
    pub fn shard_of(&self, node: NodeId) -> ShardId {
        node / self.replicas_per_shard
    }

    /// Member node ids of a shard.
    pub fn members(&self, shard: ShardId) -> Vec<NodeId> {
        let lo = shard * self.replicas_per_shard;
        (lo..lo + self.replicas_per_shard).collect()
    }

    /// The f parameter per shard.
    pub fn f(&self) -> usize {
        (self.replicas_per_shard - 1) / 3
    }

    /// The shard → node-shard assignment vector for
    /// [`prever_sim::ParallelSim`].
    pub fn shard_map(&self) -> Vec<usize> {
        (0..self.n_nodes()).map(|id| self.shard_of(id)).collect()
    }
}

/// The coordinator shard of an involvement set: the lowest involved
/// shard (the list is kept sorted).
fn coordinator_of(involved: &[ShardId]) -> ShardId {
    involved[0]
}

/// A globally resolved *commit* in completion order. Carries ids only:
/// completions used to clone the full command (payload included) out of
/// the log, which the allocation audit flagged — the command stays
/// available in `PbftCore::executed()` for anyone who needs bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Completion {
    /// Transaction id.
    pub tx_id: u64,
    /// Completion slot on this replica (1-based, dense).
    pub slot: u64,
    /// Virtual time of completion.
    pub at: u64,
}

/// A replica of the sharded deployment.
#[derive(Clone, Debug)]
pub struct ShardedNode {
    topology: Topology,
    shard: ShardId,
    core: PbftCore,
    /// tx_id → involved shards.
    involved: HashMap<u64, Arc<[ShardId]>>,
    /// Cursor into `core.executed()` for processing new local executions.
    exec_cursor: usize,
    /// Cursor into `core.executed_batches()` for batch-level accounting
    /// (committed-batch counter, per-tx batch digests).
    batch_cursor: usize,
    /// tx_id → Merkle digest of the local batch that ordered it.
    ordered_digest: HashMap<u64, Digest>,
    /// tx ids this replica's shard has executed locally (ordered, so
    /// the recovery probe iterates deterministically).
    local_done: BTreeSet<u64>,
    /// Coordinator bookkeeping: (tx_id, shard) → distinct certificate
    /// voters, plus the digest the shard's certificate is bound to.
    prepared_votes: HashMap<(u64, ShardId), VoteSet>,
    prepared_digest: HashMap<(u64, ShardId), Digest>,
    /// Cross-shard transactions this coordinator replica is watching
    /// for timeout: tx_id → first-seen time.
    watchdog: BTreeMap<u64, u64>,
    /// Decision commands this replica already submitted to its own
    /// shard's log (commit or abort — at most one per tx).
    decision_submitted: HashSet<u64>,
    /// Decided outcomes known to this replica (true = commit).
    outcome: HashMap<u64, bool>,
    /// Participant bookkeeping: (tx_id, commit) → coordinator-shard
    /// replicas announcing that outcome.
    outcome_votes: HashMap<(u64, bool), VoteSet>,
    /// Outcomes decided before the involvement set was known (state
    /// transfer can replay a decision first); announced on the tick.
    announce_pending: BTreeSet<u64>,
    /// Shard-mates claiming a transaction completed/aborted (recovery:
    /// `f + 1` claims adopt the resolution without re-running the
    /// cross-shard exchange).
    completed_claims: HashMap<u64, VoteSet>,
    aborted_claims: HashMap<u64, VoteSet>,
    /// tx_id → when this replica first saw it (commit-latency metric
    /// and coordinator timeout base).
    first_seen: HashMap<u64, u64>,
    /// Per-tx probe bookkeeping: when the tx was last queried.
    query_at: HashMap<u64, u64>,
    /// Locally executed entries whose involvement is not yet known
    /// (PrePrepare can outrun the Request fan-out): (tx_id, at).
    deferred: Vec<(u64, u64)>,
    /// Globally committed transactions in completion order.
    completed: Vec<Completion>,
    completed_ids: HashSet<u64>,
    /// Globally aborted transactions.
    aborted_ids: BTreeSet<u64>,
    /// Earliest armed batch timer (simulator timers cannot be
    /// cancelled, so re-arming is deduplicated).
    batch_timer_at: Option<u64>,
}

// Shard cores cross thread boundaries on the parallel runtime.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<ShardedNode>();
    assert_send::<ShardedMsg>();
};

impl ShardedNode {
    /// Creates the replica with simulator id `id`.
    pub fn new(id: NodeId, topology: Topology, byz: Byzantine) -> Self {
        let shard = topology.shard_of(id);
        let core = PbftCore::new(id, topology.members(shard), byz);
        ShardedNode {
            topology,
            shard,
            core,
            involved: HashMap::new(),
            exec_cursor: 0,
            batch_cursor: 0,
            ordered_digest: HashMap::new(),
            local_done: BTreeSet::new(),
            prepared_votes: HashMap::new(),
            prepared_digest: HashMap::new(),
            watchdog: BTreeMap::new(),
            decision_submitted: HashSet::new(),
            outcome: HashMap::new(),
            outcome_votes: HashMap::new(),
            announce_pending: BTreeSet::new(),
            completed_claims: HashMap::new(),
            aborted_claims: HashMap::new(),
            first_seen: HashMap::new(),
            query_at: HashMap::new(),
            deferred: Vec::new(),
            completed: Vec::new(),
            completed_ids: HashSet::new(),
            aborted_ids: BTreeSet::new(),
            batch_timer_at: None,
        }
    }

    /// Creates the replica with a batching policy on its shard's core.
    pub fn with_batching(id: NodeId, topology: Topology, byz: Byzantine, cfg: BatchConfig) -> Self {
        let mut node = ShardedNode::new(id, topology, byz);
        node.core.set_batch_config(cfg);
        node
    }

    /// This replica's shard.
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// Globally committed transactions in completion order.
    pub fn completed(&self) -> &[Completion] {
        &self.completed
    }

    /// Count of committed transactions.
    pub fn completed_count(&self) -> usize {
        self.completed.len()
    }

    /// Globally aborted transaction ids.
    pub fn aborted(&self) -> &BTreeSet<u64> {
        &self.aborted_ids
    }

    /// Count of aborted transactions.
    pub fn aborted_count(&self) -> usize {
        self.aborted_ids.len()
    }

    /// Committed + aborted.
    pub fn resolved_count(&self) -> usize {
        self.completed.len() + self.aborted_ids.len()
    }

    /// True iff this replica resolved the transaction (either way).
    pub fn is_resolved(&self, tx_id: u64) -> bool {
        self.completed_ids.contains(&tx_id) || self.aborted_ids.contains(&tx_id)
    }

    /// The resolution if known: `Some(true)` committed, `Some(false)`
    /// aborted.
    pub fn outcome_of(&self, tx_id: u64) -> Option<bool> {
        if self.completed_ids.contains(&tx_id) {
            Some(true)
        } else if self.aborted_ids.contains(&tx_id) {
            Some(false)
        } else {
            None
        }
    }

    /// One-line state summary for harness debugging: resolution sets,
    /// local executions, and any transactions stuck mid-protocol.
    pub fn debug_summary(&self) -> String {
        let mut completed: Vec<u64> = self.completed_ids.iter().copied().collect();
        completed.sort_unstable();
        let aborted: Vec<u64> = self.aborted_ids.iter().copied().collect();
        let deferred: Vec<u64> = self.deferred.iter().map(|(id, _)| *id).collect();
        let stuck: Vec<String> = self
            .local_done
            .iter()
            .filter(|id| !self.is_resolved(**id))
            .map(|id| {
                let votes: Vec<String> = self
                    .involved
                    .get(id)
                    .map(|inv| {
                        inv.iter()
                            .map(|&s| {
                                let got = self
                                    .prepared_votes
                                    .get(&(*id, s))
                                    .map(|v| v.len())
                                    .unwrap_or(0);
                                format!("shard{s}:{got}")
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                format!("{id}[{}]", votes.join(","))
            })
            .collect();
        format!(
            "view={} last_exec={} completed={completed:?} aborted={aborted:?} \
             deferred={deferred:?} stuck={stuck:?}",
            self.core.view(),
            self.core.executed().len(),
        )
    }

    fn forward_pbft(&self, out: Vec<(NodeId, PbftMsg)>, ctx: &mut Ctx<ShardedMsg>) {
        for (to, msg) in out {
            ctx.send(to, ShardedMsg::Pbft(msg));
        }
    }

    /// Arms a timer for the earliest pending batch fill-delay expiry
    /// (no-op when the core batches immediately).
    fn arm_batch_timer(&mut self, ctx: &mut Ctx<ShardedMsg>) {
        if let Some(deadline) = self.core.next_batch_deadline() {
            let due = deadline.max(ctx.now() + 1);
            if self.batch_timer_at.is_none_or(|t| t > due) {
                self.batch_timer_at = Some(due);
                ctx.set_timer(due - ctx.now(), TIMER_BATCH);
            }
        }
    }

    /// Re-processes executions that were deferred for missing
    /// involvement metadata.
    fn retry_deferred(&mut self, ctx: &mut Ctx<ShardedMsg>) {
        let (ready, waiting): (Vec<_>, Vec<_>) = std::mem::take(&mut self.deferred)
            .into_iter()
            .partition(|(id, _)| self.involved.contains_key(id));
        self.deferred = waiting;
        for (id, at) in ready {
            self.process_execution(id, at, ctx);
        }
    }

    /// Processes newly executed local log entries. Batch-level pass
    /// first (commit counter + per-tx batch digests), then the per-
    /// command pass: intra-shard txs complete immediately, cross-shard
    /// txs announce `Prepared` certificates, decision commands resolve
    /// outcomes on the coordinator shard.
    fn drain_executions(&mut self, ctx: &mut Ctx<ShardedMsg>) {
        while self.batch_cursor < self.core.executed_batches().len() {
            let (digest, ids): (Digest, Vec<u64>) = {
                let (_, batch, _) = &self.core.executed_batches()[self.batch_cursor];
                (
                    batch.digest(),
                    batch.commands().iter().map(|c| c.id).filter(|&id| id != NOOP_ID).collect(),
                )
            };
            self.batch_cursor += 1;
            prever_obs::counter("sharded.batch.committed").inc();
            prever_obs::counter(&format!("sharded.batch.committed.shard{}", self.shard)).inc();
            for id in ids {
                if id & DECIDE_BIT == 0 {
                    self.ordered_digest.insert(id, digest);
                }
            }
        }
        while self.exec_cursor < self.core.executed().len() {
            let (id, at, commit_decision) = {
                let d = &self.core.executed()[self.exec_cursor];
                (d.command.id, d.at, d.command.payload.first() == Some(&b'c'))
            };
            self.exec_cursor += 1;
            if id == NOOP_ID {
                continue;
            }
            if id & DECIDE_BIT != 0 {
                self.handle_decision(id & !DECIDE_BIT, commit_decision, at, ctx);
                continue;
            }
            self.process_execution(id, at, ctx);
        }
    }

    fn process_execution(&mut self, tx_id: u64, at: u64, ctx: &mut Ctx<ShardedMsg>) {
        let Some(involved) = self.involved.get(&tx_id).cloned() else {
            self.deferred.push((tx_id, at));
            return;
        };
        self.local_done.insert(tx_id);
        self.first_seen.entry(tx_id).or_insert(at);
        if involved.len() == 1 {
            self.complete(tx_id, ctx.now(), false);
            return;
        }
        // The local log position is the lock (SharPer): this shard has
        // now ordered the cross-shard tx in its own log.
        if prever_obs::trace::active() {
            prever_obs::trace::event(
                self.core.id() as u64,
                at,
                prever_obs::TraceCtx::for_command(tx_id).child("exec", self.core.id() as u64),
                "cross-lock",
                tx_id,
            );
        }
        self.watch_if_coordinator(tx_id, &involved, at);
        match self.outcome.get(&tx_id).copied() {
            Some(true) => self.complete(tx_id, ctx.now(), true),
            // Globally aborted before we ordered it locally: the local
            // log append is harmless (appends never conflict), the tx
            // just never completes.
            Some(false) => {}
            None => {
                let digest = self.ordered_digest.get(&tx_id).copied().unwrap_or(Digest::ZERO);
                self.announce_prepared(tx_id, &involved, digest, ctx);
            }
        }
    }

    /// Sends this replica's `Prepared` certificate vote to every
    /// coordinator-shard replica (recording it directly when this
    /// replica is itself a coordinator-shard member).
    fn announce_prepared(
        &mut self,
        tx_id: u64,
        involved: &Arc<[ShardId]>,
        digest: Digest,
        ctx: &mut Ctx<ShardedMsg>,
    ) {
        let coord = coordinator_of(involved);
        for member in self.topology.members(coord) {
            if member == ctx.id() {
                self.record_prepared(tx_id, self.shard, digest, member);
                self.try_decide(tx_id, ctx);
            } else {
                ctx.send(member, ShardedMsg::Prepared { tx_id, shard: self.shard, digest });
            }
        }
    }

    /// Coordinator-side: records one certificate vote. Votes for a
    /// shard must agree on the batch digest; a vote conflicting with
    /// the first recorded digest is discarded (Byzantine or stale).
    fn record_prepared(&mut self, tx_id: u64, shard: ShardId, digest: Digest, from: NodeId) {
        let bound = *self.prepared_digest.entry((tx_id, shard)).or_insert(digest);
        if bound != digest {
            prever_obs::counter("sharded.prepared.digest_mismatch").inc();
            return;
        }
        self.prepared_votes.entry((tx_id, shard)).or_default().add(from);
    }

    /// Starts the coordinator watchdog for a cross-shard tx if this
    /// replica belongs to the coordinator shard.
    fn watch_if_coordinator(&mut self, tx_id: u64, involved: &Arc<[ShardId]>, now: u64) {
        if involved.len() > 1
            && coordinator_of(involved) == self.shard
            && !self.outcome.contains_key(&tx_id)
        {
            self.watchdog.entry(tx_id).or_insert(now);
        }
    }

    /// Coordinator-side: submits a commit decision once every involved
    /// shard has `f + 1` digest-consistent certificate votes.
    fn try_decide(&mut self, tx_id: u64, ctx: &mut Ctx<ShardedMsg>) {
        if self.outcome.contains_key(&tx_id) || self.decision_submitted.contains(&tx_id) {
            return;
        }
        let Some(involved) = self.involved.get(&tx_id).cloned() else {
            return;
        };
        if involved.len() < 2 || coordinator_of(&involved) != self.shard {
            return;
        }
        let need = self.topology.f() + 1;
        let certified = involved
            .iter()
            .all(|&s| self.prepared_votes.get(&(tx_id, s)).is_some_and(|v| v.len() >= need));
        if certified {
            self.submit_decision(tx_id, true, ctx);
        }
    }

    /// Orders a commit/abort decision through the coordinator shard's
    /// own PBFT log. The first decision to be ordered wins: PBFT dedups
    /// by command id, so a later conflicting submission is dropped at
    /// the primary and the outcome stays atomic.
    fn submit_decision(&mut self, tx_id: u64, commit: bool, ctx: &mut Ctx<ShardedMsg>) {
        self.decision_submitted.insert(tx_id);
        let payload: &[u8] = if commit { b"c" } else { b"a" };
        // Decisions are latency-critical — every participant shard is
        // blocked on the outcome — so cut the batch (and the
        // backup→primary relay) immediately instead of letting the
        // decision wait out the fill delay in a partial batch.
        let out = self.core.on_urgent_request(Command::new(DECIDE_BIT | tx_id, payload), ctx.now());
        self.forward_pbft(out, ctx);
        self.arm_batch_timer(ctx);
    }

    /// A decision command executed in this (coordinator-shard)
    /// replica's log: record the outcome, resolve locally, announce to
    /// the other involved shards.
    fn handle_decision(&mut self, tx_id: u64, commit: bool, at: u64, ctx: &mut Ctx<ShardedMsg>) {
        if self.outcome.contains_key(&tx_id) {
            return;
        }
        self.outcome.insert(tx_id, commit);
        self.watchdog.remove(&tx_id);
        self.first_seen.entry(tx_id).or_insert(at);
        if prever_obs::trace::active() {
            prever_obs::trace::event(
                self.core.id() as u64,
                at,
                prever_obs::TraceCtx::for_command(tx_id).child("cross-lock", self.core.id() as u64),
                "cross-decide",
                tx_id,
            );
        }
        self.apply_outcome(tx_id, commit, ctx.now());
        self.announce_outcome(tx_id, ctx);
    }

    /// Broadcasts the decided outcome to every replica of every other
    /// involved shard (deferred until involvement is known — state
    /// transfer can replay the decision before the request fan-out).
    fn announce_outcome(&mut self, tx_id: u64, ctx: &mut Ctx<ShardedMsg>) {
        let Some(commit) = self.outcome.get(&tx_id).copied() else {
            return;
        };
        let Some(involved) = self.involved.get(&tx_id).cloned() else {
            self.announce_pending.insert(tx_id);
            return;
        };
        self.announce_pending.remove(&tx_id);
        for &s in involved.iter() {
            if s == self.shard {
                continue;
            }
            for member in self.topology.members(s) {
                ctx.send(
                    member,
                    ShardedMsg::Outcome { tx_id, commit, involved: involved.clone() },
                );
            }
        }
    }

    /// Applies a decided outcome locally: commit completes (now or when
    /// the local execution catches up), abort is final immediately.
    fn apply_outcome(&mut self, tx_id: u64, commit: bool, now: u64) {
        self.watchdog.remove(&tx_id);
        if commit {
            if self.local_done.contains(&tx_id) {
                self.complete(tx_id, now, true);
            }
        } else if !self.completed_ids.contains(&tx_id) && self.aborted_ids.insert(tx_id) {
            prever_obs::counter("sharded.cross_shard.aborts").inc();
            prever_obs::log!(Debug, "cross-shard tx {tx_id} aborted");
        }
    }

    fn complete(&mut self, tx_id: u64, now: u64, cross: bool) {
        if self.completed_ids.contains(&tx_id) || self.aborted_ids.contains(&tx_id) {
            return;
        }
        self.completed_ids.insert(tx_id);
        let slot = self.completed.len() as u64 + 1;
        self.completed.push(Completion { tx_id, slot, at: now });
        if cross {
            let seen = self.first_seen.get(&tx_id).copied().unwrap_or(now);
            prever_obs::counter("sharded.completed.cross_shard").inc();
            prever_obs::histogram("sharded.cross_shard.commit_latency")
                .record(now.saturating_sub(seen));
            if prever_obs::trace::active() {
                let me = self.core.id() as u64;
                prever_obs::trace::event(
                    me,
                    now,
                    prever_obs::TraceCtx::for_command(tx_id).child("cross-decide", me),
                    "cross-outcome",
                    tx_id,
                );
            }
            prever_obs::log!(Debug, "cross-shard tx {tx_id} committed");
        } else {
            prever_obs::counter("sharded.completed.intra_shard").inc();
        }
    }

    /// Recovery probe: queries shard-mates about transactions stuck
    /// (executed-or-deferred but unresolved) longer than
    /// [`QUERY_AFTER`], and re-announces `Prepared` for stuck cross-
    /// shard txs so a (re)connected coordinator can decide or replay
    /// the recorded outcome. Replays every [`QUERY_AFTER`] until the
    /// transaction resolves.
    fn probe_stuck(&mut self, ctx: &mut Ctx<ShardedMsg>) {
        let now = ctx.now();
        let mut stuck: Vec<u64> = self.deferred.iter().map(|(id, _)| *id).collect();
        stuck.extend(self.local_done.iter().filter(|id| !self.is_resolved(**id)));
        stuck.sort_unstable();
        stuck.dedup();
        for tx_id in stuck {
            let since = *self.query_at.entry(tx_id).or_insert(now);
            if now.saturating_sub(since) < QUERY_AFTER {
                continue;
            }
            self.query_at.insert(tx_id, now);
            prever_obs::counter("sharded.tx_queries").inc();
            for member in self.topology.members(self.shard) {
                if member != ctx.id() {
                    ctx.send(member, ShardedMsg::TxQuery { tx_id });
                }
            }
            if let Some(involved) = self.involved.get(&tx_id).cloned() {
                if involved.len() > 1
                    && self.local_done.contains(&tx_id)
                    && !self.outcome.contains_key(&tx_id)
                {
                    let digest =
                        self.ordered_digest.get(&tx_id).copied().unwrap_or(Digest::ZERO);
                    self.announce_prepared(tx_id, &involved, digest, ctx);
                }
            }
        }
    }

    /// Coordinator watchdog: certificates that failed to assemble
    /// within [`CROSS_TIMEOUT`] get an abort decision, so a stalled
    /// involved shard cannot wedge the survivors.
    fn check_timeouts(&mut self, ctx: &mut Ctx<ShardedMsg>) {
        let now = ctx.now();
        let expired: Vec<u64> = self
            .watchdog
            .iter()
            .filter(|(id, seen)| {
                now.saturating_sub(**seen) >= CROSS_TIMEOUT
                    && !self.decision_submitted.contains(*id)
                    && !self.outcome.contains_key(*id)
            })
            .map(|(id, _)| *id)
            .collect();
        for tx_id in expired {
            prever_obs::log!(
                Debug,
                "coordinator timeout on cross-shard tx {tx_id}: submitting abort"
            );
            self.submit_decision(tx_id, false, ctx);
        }
        // Outcomes whose announcement waited on involvement metadata.
        let pending: Vec<u64> = self
            .announce_pending
            .iter()
            .filter(|id| self.involved.contains_key(id))
            .copied()
            .collect();
        for tx_id in pending {
            self.announce_outcome(tx_id, ctx);
        }
    }
}

impl Actor for ShardedNode {
    type Msg = ShardedMsg;

    fn on_start(&mut self, ctx: &mut Ctx<ShardedMsg>) {
        ctx.set_timer(TICK_EVERY, TIMER_TICK);
    }

    fn on_message(&mut self, from: NodeId, msg: ShardedMsg, ctx: &mut Ctx<ShardedMsg>) {
        let _span = prever_obs::span!(match &msg {
            ShardedMsg::Request { .. } => "sharded.request",
            ShardedMsg::Pbft(_) => "sharded.pbft",
            ShardedMsg::Prepared { .. } => "sharded.prepared",
            ShardedMsg::Outcome { .. } => "sharded.outcome",
            ShardedMsg::TxQuery { .. } => "sharded.tx_query",
            ShardedMsg::TxInfo { .. } => "sharded.tx_info",
        });
        match msg {
            ShardedMsg::Request { command, involved } => {
                let is_client = from == ctx.id();
                let tx_id = command.id;
                debug_assert!(
                    tx_id & DECIDE_BIT == 0,
                    "application tx ids must stay below DECIDE_BIT"
                );
                self.involved.entry(tx_id).or_insert_with(|| involved.clone());
                self.first_seen.entry(tx_id).or_insert(ctx.now());
                self.watch_if_coordinator(tx_id, &involved, ctx.now());
                if is_client {
                    // Fan the request out to every replica of every
                    // involved shard, so all of them learn the
                    // involvement set (and resubmissions after a
                    // partition reach the other shards again). The
                    // command is Arc-shared: one payload, N pointers.
                    for &s in involved.iter() {
                        for member in self.topology.members(s) {
                            if member != ctx.id() {
                                ctx.send(
                                    member,
                                    ShardedMsg::Request {
                                        command: command.clone(),
                                        involved: involved.clone(),
                                    },
                                );
                            }
                        }
                    }
                }
                // Involvement may have arrived after the execution.
                self.retry_deferred(ctx);
                if involved.contains(&self.shard) {
                    if self.outcome.get(&tx_id) == Some(&false) {
                        // Aborted: final. A resubmission does not
                        // resurrect the tx (ids are unique).
                    } else if self.local_done.contains(&tx_id) {
                        // Already ordered locally (e.g. a resubmission
                        // after a partition): re-announce the
                        // certificate so a reconnected coordinator can
                        // decide — or reply with the recorded outcome.
                        if involved.len() > 1 && !self.completed_ids.contains(&tx_id) {
                            let digest = self
                                .ordered_digest
                                .get(&tx_id)
                                .copied()
                                .unwrap_or(Digest::ZERO);
                            self.announce_prepared(tx_id, &involved, digest, ctx);
                        }
                    } else {
                        let out = self.core.on_request((*command).clone(), ctx.now());
                        self.forward_pbft(out, ctx);
                        self.drain_executions(ctx);
                    }
                }
            }
            ShardedMsg::Pbft(m) => {
                let out = self.core.on_message(from, m, ctx.now());
                self.forward_pbft(out, ctx);
                self.drain_executions(ctx);
            }
            ShardedMsg::Prepared { tx_id, shard, digest } => {
                if self.topology.shard_of(from) != shard {
                    return; // a replica may only vote for its own shard
                }
                if let Some(&commit) = self.outcome.get(&tx_id) {
                    // Already decided: replay the outcome to the asker
                    // (covers healed shards whose votes arrive late).
                    if let Some(involved) = self.involved.get(&tx_id).cloned() {
                        ctx.send(from, ShardedMsg::Outcome { tx_id, commit, involved });
                    }
                    return;
                }
                if let Some(involved) = self.involved.get(&tx_id).cloned() {
                    self.watch_if_coordinator(tx_id, &involved, ctx.now());
                }
                self.first_seen.entry(tx_id).or_insert(ctx.now());
                self.record_prepared(tx_id, shard, digest, from);
                self.try_decide(tx_id, ctx);
            }
            ShardedMsg::Outcome { tx_id, commit, involved } => {
                // Only the coordinator shard announces outcomes.
                if involved.len() < 2 || self.topology.shard_of(from) != coordinator_of(&involved)
                {
                    return;
                }
                self.involved.entry(tx_id).or_insert_with(|| involved.clone());
                self.retry_deferred(ctx);
                if self.outcome.contains_key(&tx_id) {
                    return;
                }
                let need = self.topology.f() + 1;
                let votes = self.outcome_votes.entry((tx_id, commit)).or_default();
                votes.add(from);
                if votes.len() >= need {
                    // f + 1 coordinator-shard replicas agree: at least
                    // one honest one executed the ordered decision.
                    self.outcome.insert(tx_id, commit);
                    self.apply_outcome(tx_id, commit, ctx.now());
                }
            }
            ShardedMsg::TxQuery { tx_id } => {
                // Only shard-mates are answered: involvement metadata
                // and resolution claims cross shards via the Request
                // fan-out, Prepared votes, and Outcome announcements.
                if self.topology.shard_of(from) != self.shard || from == ctx.id() {
                    return;
                }
                let Some(involved) = self.involved.get(&tx_id).cloned() else {
                    return;
                };
                let completed = self.completed_ids.contains(&tx_id);
                let aborted = self.aborted_ids.contains(&tx_id);
                if !completed && !aborted && !self.core.has_executed(tx_id) {
                    return;
                }
                ctx.send(from, ShardedMsg::TxInfo { tx_id, involved, completed, aborted });
            }
            ShardedMsg::TxInfo { tx_id, involved, completed, aborted } => {
                if self.topology.shard_of(from) != self.shard {
                    return;
                }
                self.involved.entry(tx_id).or_insert_with(|| involved.clone());
                self.retry_deferred(ctx);
                if completed {
                    self.completed_claims.entry(tx_id).or_default().add(from);
                }
                if aborted {
                    self.aborted_claims.entry(tx_id).or_default().add(from);
                }
                if self.is_resolved(tx_id) {
                    return;
                }
                let f = self.topology.f();
                // Adoption: f + 1 shard-mates resolved it, so at least
                // one honest replica verified the decision — adopt the
                // resolution rather than waiting for votes the other
                // shards will never re-send.
                if self.local_done.contains(&tx_id)
                    && self.completed_claims.get(&tx_id).is_some_and(|v| v.len() > f)
                {
                    self.outcome.entry(tx_id).or_insert(true);
                    self.complete(tx_id, ctx.now(), involved.len() > 1);
                    prever_obs::counter("sharded.completed.adopted").inc();
                } else if self.aborted_claims.get(&tx_id).is_some_and(|v| v.len() > f) {
                    self.outcome.entry(tx_id).or_insert(false);
                    self.apply_outcome(tx_id, false, ctx.now());
                }
            }
        }
        self.arm_batch_timer(ctx);
    }

    fn on_timer(&mut self, timer: u64, ctx: &mut Ctx<ShardedMsg>) {
        match timer {
            TIMER_TICK => {
                let out = self.core.on_tick(ctx.now(), VIEW_TIMEOUT);
                self.forward_pbft(out, ctx);
                self.drain_executions(ctx);
                self.probe_stuck(ctx);
                self.check_timeouts(ctx);
                ctx.set_timer(TICK_EVERY, TIMER_TICK);
            }
            TIMER_BATCH => {
                self.batch_timer_at = None;
                let out = self.core.on_batch_timer(ctx.now());
                self.forward_pbft(out, ctx);
                self.drain_executions(ctx);
            }
            _ => {}
        }
        self.arm_batch_timer(ctx);
    }
}

/// Builds an honest sharded cluster.
pub fn cluster(topology: Topology) -> Vec<ShardedNode> {
    (0..topology.n_nodes())
        .map(|id| ShardedNode::new(id, topology, Byzantine::Honest))
        .collect()
}

/// Builds an honest sharded cluster whose per-shard cores batch under
/// `cfg` (batches may mix intra- and cross-shard transactions; the
/// cross-shard protocol still applies per transaction after execution).
pub fn cluster_batched(topology: Topology, cfg: BatchConfig) -> Vec<ShardedNode> {
    (0..topology.n_nodes())
        .map(|id| ShardedNode::with_batching(id, topology, Byzantine::Honest, cfg))
        .collect()
}

/// Summary of a replica for [`prever_sim::ParallelSim`] run-loop
/// predicates (probes cross the thread boundary; actors do not).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardProbe {
    /// Committed transactions.
    pub completed: usize,
    /// Aborted transactions.
    pub aborted: usize,
}

/// The probe function for sharded parallel runs.
pub fn probe(node: &ShardedNode) -> ShardProbe {
    ShardProbe { completed: node.completed_count(), aborted: node.aborted_count() }
}

/// Builds the request message + its home (submission target) replica.
fn request_for(
    topology: Topology,
    command: Command,
    mut involved: Vec<ShardId>,
) -> (NodeId, ShardedMsg) {
    involved.sort_unstable();
    involved.dedup();
    assert!(!involved.is_empty());
    assert!(
        command.id & DECIDE_BIT == 0 && command.id != NOOP_ID,
        "application tx ids must stay below DECIDE_BIT"
    );
    let home = topology.members(involved[0])[0];
    (home, ShardedMsg::Request { command: Arc::new(command), involved: involved.into() })
}

/// A cross-shard request helper: submit `command` involving `involved`
/// shards to the primary of the lowest involved shard.
pub fn submit(
    sim: &mut prever_sim::Simulation<ShardedNode>,
    topology: Topology,
    command: Command,
    involved: Vec<ShardId>,
    at: u64,
) {
    let (home, msg) = request_for(topology, command, involved);
    sim.inject(home, home, msg, at);
}

/// [`submit`] for the shard-per-thread parallel runtime.
pub fn submit_parallel(
    sim: &mut prever_sim::ParallelSim<ShardedNode, ShardProbe>,
    topology: Topology,
    command: Command,
    involved: Vec<ShardId>,
    at: u64,
) {
    let (home, msg) = request_for(topology, command, involved);
    sim.inject(home, home, msg, at);
}

/// Builds a parallel (shard-per-thread) simulation of an honest
/// batched cluster with the standard [`probe`].
pub fn parallel_cluster(
    topology: Topology,
    batch: Option<BatchConfig>,
    cfg: prever_sim::ParallelConfig,
) -> prever_sim::ParallelSim<ShardedNode, ShardProbe> {
    let nodes = match batch {
        Some(b) => cluster_batched(topology, b),
        None => cluster(topology),
    };
    prever_sim::ParallelSim::new(nodes, topology.shard_map(), cfg, probe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prever_sim::{NetConfig, ParallelConfig, ParallelFaultPlan, Simulation};

    fn topo(shards: usize) -> Topology {
        Topology { n_shards: shards, replicas_per_shard: 4 }
    }

    #[test]
    fn topology_mapping() {
        let t = topo(3);
        assert_eq!(t.n_nodes(), 12);
        assert_eq!(t.shard_of(0), 0);
        assert_eq!(t.shard_of(5), 1);
        assert_eq!(t.shard_of(11), 2);
        assert_eq!(t.members(1), vec![4, 5, 6, 7]);
        assert_eq!(t.f(), 1);
        assert_eq!(t.shard_map()[4], 1);
    }

    #[test]
    fn intra_shard_transactions_complete_per_shard() {
        let t = topo(2);
        let mut sim = Simulation::new(cluster(t), NetConfig::default(), 1);
        for i in 0..6u64 {
            let shard = (i % 2) as usize;
            submit(&mut sim, t, Command::new(i, "intra"), vec![shard], i + 1);
        }
        let ok = sim.run_until_pred(3_000_000, |nodes| {
            // Every replica of shard s completes the 3 txs routed to s.
            (0..t.n_nodes()).all(|id| nodes[id].completed_count() >= 3)
        });
        assert!(ok, "intra-shard transactions did not complete");
        // Shard 0 replicas must NOT have executed shard-1 commands.
        let shard0_ids: Vec<u64> = sim.node(0).completed().iter().map(|c| c.tx_id).collect();
        assert!(shard0_ids.iter().all(|id| id % 2 == 0));
    }

    #[test]
    fn cross_shard_transaction_commits_everywhere() {
        let t = topo(3);
        let mut sim = Simulation::new(cluster(t), NetConfig::default(), 2);
        submit(&mut sim, t, Command::new(7, "cross"), vec![0, 2], 1);
        let ok = sim.run_until_pred(3_000_000, |nodes| {
            t.members(0)
                .into_iter()
                .chain(t.members(2))
                .all(|id| nodes[id].completed_count() >= 1)
        });
        assert!(ok, "cross-shard tx did not commit on involved shards");
        // Uninvolved shard 1 never sees it.
        for id in t.members(1) {
            assert_eq!(sim.node(id).completed_count(), 0);
        }
        // Nobody aborted it.
        for id in 0..t.n_nodes() {
            assert_eq!(sim.node(id).aborted_count(), 0);
        }
    }

    #[test]
    fn mixed_workload_all_commit() {
        let t = topo(2);
        let mut sim = Simulation::new(cluster(t), NetConfig::default(), 3);
        // 4 intra (2 per shard) + 2 cross.
        submit(&mut sim, t, Command::new(0, "a"), vec![0], 1);
        submit(&mut sim, t, Command::new(1, "b"), vec![1], 2);
        submit(&mut sim, t, Command::new(2, "c"), vec![0], 3);
        submit(&mut sim, t, Command::new(3, "d"), vec![1], 4);
        submit(&mut sim, t, Command::new(4, "x"), vec![0, 1], 5);
        submit(&mut sim, t, Command::new(5, "y"), vec![0, 1], 6);
        let ok = sim.run_until_pred(5_000_000, |nodes| {
            // Each shard: 2 intra + 2 cross = 4 completions per replica.
            (0..t.n_nodes()).all(|id| nodes[id].completed_count() >= 4)
        });
        assert!(ok, "mixed workload did not commit");
    }

    #[test]
    fn partitioned_shard_aborts_cleanly_on_survivors() {
        // Shard 1 is partitioned away before a cross-shard tx is
        // submitted. The coordinator (shard 0) cannot assemble shard
        // 1's certificate, times out, and aborts — the survivors are
        // not wedged and can process new work. After the heal, shard 1
        // learns the abort by re-announcing its certificate.
        let t = topo(2);
        let mut sim = Simulation::new(cluster(t), NetConfig::default(), 4);
        let groups: Vec<usize> = (0..t.n_nodes()).map(|id| t.shard_of(id)).collect();
        sim.set_partition(groups);
        submit(&mut sim, t, Command::new(9, "doomed"), vec![0, 1], 1);
        // Coordinator aborts after CROSS_TIMEOUT.
        let ok = sim.run_until_pred(30_000_000, |nodes| {
            t.members(0).into_iter().all(|id| nodes[id].aborted_count() >= 1)
        });
        assert!(ok, "coordinator did not abort the stalled cross-shard tx");
        for id in t.members(0) {
            assert_eq!(sim.node(id).completed_count(), 0, "abort must not complete");
            assert_eq!(sim.node(id).outcome_of(9), Some(false));
        }
        // Survivors are not wedged: an intra-shard tx still commits.
        let at = sim.now() + 10;
        submit(&mut sim, t, Command::new(10, "alive"), vec![0], at);
        let ok = sim.run_until_pred(40_000_000, |nodes| {
            t.members(0).into_iter().all(|id| nodes[id].completed_count() >= 1)
        });
        assert!(ok, "survivor shard wedged after the abort");
        // Heal. The original fan-out to shard 1 was dropped by the
        // partition, so the client resubmits; shard 1 orders the tx,
        // announces its certificate, and the coordinator replies with
        // the recorded abort.
        sim.heal_partition();
        let at = sim.now() + 10;
        submit(&mut sim, t, Command::new(9, "doomed"), vec![0, 1], at);
        let ok = sim.run_until_pred(90_000_000, |nodes| {
            t.members(1).into_iter().all(|id| nodes[id].outcome_of(9) == Some(false))
        });
        assert!(ok, "healed shard did not learn the abort");
        // Outcome agreement everywhere.
        for id in 0..t.n_nodes() {
            assert_eq!(sim.node(id).outcome_of(9), Some(false), "node {id} outcome");
        }
    }

    #[test]
    fn slow_shard_within_timeout_still_commits() {
        // A partition that heals well before CROSS_TIMEOUT: the
        // certificates assemble late but in time, so the tx commits —
        // the timeout only fires for genuinely stalled shards.
        let t = topo(2);
        let mut sim = Simulation::new(cluster(t), NetConfig::default(), 5);
        let groups: Vec<usize> = (0..t.n_nodes()).map(|id| t.shard_of(id)).collect();
        sim.set_partition(groups);
        submit(&mut sim, t, Command::new(11, "late"), vec![0, 1], 1);
        sim.run_until(100_000); // well under CROSS_TIMEOUT
        sim.heal_partition();
        // Re-submit: the original fan-out to shard 1 was dropped.
        let at = sim.now() + 10;
        submit(&mut sim, t, Command::new(11, "late"), vec![0, 1], at);
        let ok = sim.run_until_pred(30_000_000, |nodes| {
            (0..t.n_nodes()).all(|id| nodes[id].completed_count() >= 1)
        });
        assert!(ok, "tx did not commit after an in-time heal");
        for id in 0..t.n_nodes() {
            assert_eq!(sim.node(id).aborted_count(), 0);
        }
    }

    #[test]
    fn restarted_replica_recovers_resolutions_via_peer_queries() {
        // Replica 1 (a shard-0 backup) is replaced by a blank actor
        // mid-run. Its fresh core catches up on the executed history via
        // PBFT state transfer, but the involvement metadata and the
        // outcomes are gone — TxQuery/TxInfo probing against shard-mates
        // must recover the resolutions.
        let t = topo(2);
        let mut sim = Simulation::new(cluster(t), NetConfig::default(), 21);
        submit(&mut sim, t, Command::new(0, "a"), vec![0], 1);
        submit(&mut sim, t, Command::new(1, "b"), vec![0], 2);
        submit(&mut sim, t, Command::new(2, "c"), vec![0], 3);
        submit(&mut sim, t, Command::new(3, "x"), vec![0, 1], 4);
        assert!(sim.run_until_pred(5_000_000, |nodes| {
            t.members(0).into_iter().all(|id| nodes[id].completed_count() >= 4)
        }));
        // Blank restart of replica 1; new work keeps the shard busy so
        // its core notices the lag and state-transfers.
        sim.restart_with_loss(1, ShardedNode::new(1, t, Byzantine::Honest));
        let at = sim.now() + 10;
        submit(&mut sim, t, Command::new(4, "d"), vec![0], at);
        submit(&mut sim, t, Command::new(5, "e"), vec![0], at + 1);
        let ok = sim.run_until_pred(30_000_000, |nodes| {
            t.members(0).into_iter().all(|id| nodes[id].completed_count() >= 6)
        });
        assert!(ok, "restarted replica failed to recover its completions");
        // Same completion *set* everywhere (order may differ for the
        // recovered replica).
        let expect: HashSet<u64> = (0..6).collect();
        for id in t.members(0) {
            let got: HashSet<u64> = sim.node(id).completed().iter().map(|c| c.tx_id).collect();
            assert_eq!(got, expect, "node {id} completion set");
        }
    }

    #[test]
    fn batched_shards_complete_mixed_workload() {
        // Each shard's core cuts multi-command batches; every
        // transaction (intra and cross) must still resolve exactly once.
        let t = topo(2);
        let cfg = BatchConfig::new(4, 15_000, 4);
        let mut sim = Simulation::new(cluster_batched(t, cfg), NetConfig::default(), 13);
        // ids 3 and 7 are cross-shard; the rest alternate shards:
        // shard 0 sees {0,2,4,6} intra + {3,7} cross = 6 completions,
        // shard 1 sees {1,5} intra + {3,7} cross = 4 completions.
        for i in 0..8u64 {
            let involved = if i % 4 == 3 { vec![0, 1] } else { vec![(i % 2) as usize] };
            submit(&mut sim, t, Command::new(i, format!("m-{i}")), involved, 1 + i * 20);
        }
        let ok = sim.run_until_pred(10_000_000, |nodes| {
            (0..t.n_nodes()).all(|id| {
                let want = if t.shard_of(id) == 0 { 6 } else { 4 };
                nodes[id].completed_count() >= want
            })
        });
        assert!(ok, "batched sharded workload did not complete");
        // No duplicates on any replica.
        for id in 0..t.n_nodes() {
            let ids: Vec<u64> = sim.node(id).completed().iter().map(|c| c.tx_id).collect();
            let mut dedup = ids.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(ids.len(), dedup.len(), "node {id} completed a tx twice");
        }
    }

    #[test]
    fn parallel_runtime_commits_mixed_workload() {
        // The same protocol on the shard-per-thread runtime: 3 shards
        // on 3 OS threads, intra + cross work, everything commits.
        let t = topo(3);
        let mut sim = parallel_cluster(t, None, ParallelConfig { seed: 31, ..Default::default() });
        for i in 0..9u64 {
            let involved = match i % 3 {
                0 => vec![0],
                1 => vec![1],
                _ => vec![(i % 2) as usize, 2],
            };
            submit_parallel(&mut sim, t, Command::new(i, "p"), involved, 1 + i * 10);
        }
        assert_eq!(sim.n_threads(), 3);
        let per_node_want = |id: NodeId| -> usize {
            let s = t.shard_of(id);
            (0..9u64)
                .filter(|i| match i % 3 {
                    0 => s == 0,
                    1 => s == 1,
                    _ => s == 2 || s == (i % 2) as usize,
                })
                .count()
        };
        let ok = sim.run_until_probe(20_000_000, |p| {
            (0..t.n_nodes()).all(|id| p[id].completed >= per_node_want(id))
        });
        assert!(ok, "parallel mixed workload did not commit");
        let nodes = sim.into_nodes();
        for (id, node) in nodes.iter().enumerate() {
            assert_eq!(node.aborted_count(), 0, "node {id} spuriously aborted");
        }
    }

    #[test]
    fn parallel_runs_are_bit_identical() {
        let run = || {
            let t = topo(3);
            let mut sim =
                parallel_cluster(t, Some(BatchConfig::new(4, 15_000, 4)), ParallelConfig {
                    seed: 77,
                    ..Default::default()
                });
            for i in 0..12u64 {
                let involved = if i % 4 == 3 { vec![0, 2] } else { vec![(i % 3) as usize] };
                submit_parallel(&mut sim, t, Command::new(i, "d"), involved, 1 + i * 30);
            }
            sim.run_until(4_000_000);
            let stats = sim.stats();
            let nodes = sim.into_nodes();
            let views: Vec<u64> = nodes.iter().map(|n| n.core.view()).collect();
            let completions: Vec<Vec<Completion>> =
                nodes.iter().map(|n| n.completed().to_vec()).collect();
            (stats, views, completions)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "parallel sharded runs must be bit-identical");
    }

    #[test]
    fn parallel_partitioned_shard_aborts_and_heals() {
        // Mid-commit partition on the parallel runtime: shard 1 drops
        // off after ordering locally; the coordinator aborts, survivors
        // keep working, and the healed shard converges to the abort.
        let t = topo(2);
        let mut sim = parallel_cluster(t, None, ParallelConfig { seed: 41, ..Default::default() });
        sim.set_fault_plan(
            ParallelFaultPlan::new()
                .partition_at(2_000, vec![0, 1])
                .heal_at(1_500_000),
        );
        submit_parallel(&mut sim, t, Command::new(5, "doomed"), vec![0, 1], 1);
        let ok = sim.run_until_probe(5_000_000, |p| {
            t.members(0).into_iter().all(|id| p[id].aborted >= 1)
        });
        assert!(ok, "coordinator shard did not abort under partition");
        let ok = sim.run_until_probe(20_000_000, |p| {
            t.members(1).into_iter().all(|id| p[id].aborted >= 1)
        });
        assert!(ok, "healed shard did not converge to the abort");
        let nodes = sim.into_nodes();
        for (id, node) in nodes.iter().enumerate() {
            assert_eq!(node.outcome_of(5), Some(false), "node {id} outcome");
            assert_eq!(node.completed_count(), 0);
        }
    }

    #[test]
    fn throughput_scales_with_shards_shape() {
        // Coarse shape check (the real measurement is bench E7): with a
        // pure intra-shard workload, 2 shards complete 2× the work of 1
        // shard in similar virtual time.
        let run = |shards: usize, txs: u64| -> u64 {
            let t = topo(shards);
            let mut sim = Simulation::new(cluster(t), NetConfig::default(), 7);
            for i in 0..txs {
                let shard = (i % shards as u64) as usize;
                submit(&mut sim, t, Command::new(i, "w"), vec![shard], 1 + i);
            }
            let per_shard = txs / shards as u64;
            let done = sim.run_until_pred(20_000_000, |nodes| {
                (0..t.n_nodes()).all(|id| nodes[id].completed_count() as u64 >= per_shard)
            });
            assert!(done);
            sim.now()
        };
        let t1 = run(1, 40);
        let t2 = run(2, 40);
        assert!(
            t2 < t1 * 2,
            "sharding should not slow down intra-shard work: t1={t1} t2={t2}"
        );
    }
}
