//! Multi-Paxos with a stable leader.
//!
//! The crash-fault-tolerant baseline of experiment E3 (paper §6 names
//! Paxos explicitly). One ballot-ordered leader drives phase 2 for a
//! sequence of slots after winning phase 1 once; followers forward client
//! requests to the leader and monitor it with heartbeats, electing a new
//! leader (higher ballot) on silence.
//!
//! Ordering is batched: the leader accumulates forwarded commands into a
//! [`Batch`] under a [`BatchConfig`] fill policy (max size / max delay)
//! and runs **one accept round per batch**, with at most `window` batches
//! in flight concurrently. The default config (batch 1, no delay) degrades
//! to the classic one-command-per-slot protocol.
//!
//! Ballot numbering: `ballot = round * n + node_id`, so every node owns an
//! unbounded supply of unique ballots and `ballot % n` identifies the
//! would-be leader.

use crate::{Batch, BatchConfig, Command, Decided};
use prever_sim::{Actor, Ctx, NodeId, VoteSet};
use std::collections::{BTreeMap, VecDeque};

/// Paxos protocol messages.
#[derive(Clone, Debug)]
pub enum PaxosMsg {
    /// A client submits commands (injected by the harness or forwarded).
    ClientRequest(Batch),
    /// Phase 1a.
    Prepare {
        /// Proposer's ballot.
        ballot: u64,
    },
    /// Phase 1b: promise not to accept lower ballots; reports previously
    /// accepted (slot, ballot, batch) triples.
    Promise {
        /// The promised ballot.
        ballot: u64,
        /// Previously accepted values.
        accepted: Vec<(u64, u64, Batch)>,
    },
    /// Phase 2a.
    Accept {
        /// Leader's ballot.
        ballot: u64,
        /// Slot being decided.
        slot: u64,
        /// Proposed batch.
        batch: Batch,
    },
    /// Phase 2b.
    Accepted {
        /// Ballot of the acceptance.
        ballot: u64,
        /// Slot.
        slot: u64,
    },
    /// Decision broadcast (learners).
    Decide {
        /// Slot.
        slot: u64,
        /// Decided batch.
        batch: Batch,
    },
    /// Leader liveness beacon; carries the decision frontier so
    /// followers can detect gaps from dropped Decide messages.
    Heartbeat {
        /// Leader's ballot.
        ballot: u64,
        /// One past the highest slot the leader has decided.
        decided_up_to: u64,
    },
    /// A follower asks the leader to re-send specific decisions.
    LearnRequest {
        /// Slots the follower is missing.
        missing: Vec<u64>,
    },
}

impl PaxosMsg {
    /// Wraps a single command as a client request (harness convenience).
    pub fn request(command: Command) -> PaxosMsg {
        PaxosMsg::ClientRequest(Batch::single(command))
    }

    /// The span name timing this message kind's handler (wall-clock
    /// handling time recorded into the histogram of the same name).
    /// Public so harnesses (e.g. the chaos trace) can label messages.
    pub fn span_name(&self) -> &'static str {
        match self {
            PaxosMsg::ClientRequest(_) => "paxos.client_request",
            PaxosMsg::Prepare { .. } => "paxos.prepare",
            PaxosMsg::Promise { .. } => "paxos.promise",
            PaxosMsg::Accept { .. } => "paxos.accept",
            PaxosMsg::Accepted { .. } => "paxos.accepted",
            PaxosMsg::Decide { .. } => "paxos.decide",
            PaxosMsg::Heartbeat { .. } => "paxos.heartbeat",
            PaxosMsg::LearnRequest { .. } => "paxos.learn_request",
        }
    }
}

const TIMER_HEARTBEAT: u64 = 1;
const TIMER_LEADER_TIMEOUT: u64 = 2;
const TIMER_BATCH: u64 = 3;

const HEARTBEAT_EVERY: u64 = 20_000; // 20 ms
const LEADER_TIMEOUT: u64 = 100_000; // 100 ms
/// First election-timer firing (node 0's timer wins a clean start).
const ELECTION_BASE: u64 = 10_000; // 10 ms
/// Per-id election stagger (avoids dueling proposers).
const ELECTION_STAGGER: u64 = 10_000; // 10 ms

/// Per-slot acceptor state.
#[derive(Clone, Debug)]
struct AcceptedEntry {
    ballot: u64,
    batch: Batch,
}

/// A Multi-Paxos node (proposer + acceptor + learner).
#[derive(Clone, Debug)]
pub struct PaxosNode {
    id: NodeId,
    n: usize,
    /// Highest ballot promised (acceptor).
    promised: u64,
    /// Accepted values per slot (acceptor).
    accepted: BTreeMap<u64, AcceptedEntry>,
    /// Decided log (learner).
    decided: BTreeMap<u64, Batch>,
    /// Decision times for the bench (one entry per command).
    decided_log: Vec<Decided>,
    /// Leader state: Some(ballot) once phase 1 is complete.
    leading: Option<u64>,
    /// Ballot this node is currently trying to win (phase 1 in flight).
    campaigning: Option<u64>,
    promises: VoteSet,
    /// Values learned from promises during the campaign.
    campaign_accepted: BTreeMap<u64, AcceptedEntry>,
    /// Next free slot when leading.
    next_slot: u64,
    /// Client commands awaiting proposal.
    backlog: Vec<Command>,
    /// Commands accumulating toward the next proposed batch (leader),
    /// with arrival time for the fill-delay cut.
    accum: VecDeque<(Command, u64)>,
    /// Batch fill/pipelining policy.
    cfg: BatchConfig,
    /// Per-slot accept votes when leading.
    votes: BTreeMap<u64, VoteSet>,
    /// In-flight proposals (slot → batch) when leading.
    proposing: BTreeMap<u64, Batch>,
    /// Last heartbeat seen from a leader (ballot).
    seen_ballot: u64,
    heard_from_leader: bool,
}

impl PaxosNode {
    /// Creates node `id` of `n`.
    pub fn new(id: NodeId, n: usize) -> Self {
        PaxosNode {
            id,
            n,
            promised: 0,
            accepted: BTreeMap::new(),
            decided: BTreeMap::new(),
            decided_log: Vec::new(),
            leading: None,
            campaigning: None,
            promises: VoteSet::new(),
            campaign_accepted: BTreeMap::new(),
            next_slot: 0,
            backlog: Vec::new(),
            accum: VecDeque::new(),
            cfg: BatchConfig::default(),
            votes: BTreeMap::new(),
            proposing: BTreeMap::new(),
            seen_ballot: 0,
            heard_from_leader: false,
        }
    }

    /// Creates node `id` of `n` with a batching policy.
    pub fn with_batching(id: NodeId, n: usize, cfg: BatchConfig) -> Self {
        let mut node = PaxosNode::new(id, n);
        node.cfg = cfg;
        node
    }

    /// Sets the batch fill/pipelining policy.
    pub fn set_batch_config(&mut self, cfg: BatchConfig) {
        self.cfg = cfg;
    }

    /// The decided log (slot-ordered, possibly with gaps while running).
    pub fn decided(&self) -> &BTreeMap<u64, Batch> {
        &self.decided
    }

    /// Decided command ids in slot order (flattens batches).
    pub fn decided_ids(&self) -> Vec<u64> {
        self.decided
            .values()
            .flat_map(|b| b.commands().iter().map(|c| c.id))
            .collect()
    }

    /// Decision events in arrival order (bench latency extraction).
    pub fn decided_log(&self) -> &[Decided] {
        &self.decided_log
    }

    /// True iff this node currently believes it leads.
    pub fn is_leader(&self) -> bool {
        self.leading.is_some()
    }

    fn majority(&self) -> usize {
        self.n / 2 + 1
    }

    fn start_campaign(&mut self, ctx: &mut Ctx<PaxosMsg>) {
        // Next ballot owned by this node above everything seen.
        let round = self.seen_ballot / self.n as u64 + 1;
        let ballot = round * self.n as u64 + self.id as u64;
        self.campaigning = Some(ballot);
        self.promises = VoteSet::new();
        self.campaign_accepted.clear();
        self.seen_ballot = ballot;
        // Self-promise.
        self.handle_prepare_locally(ballot);
        self.promises.add(self.id);
        for (slot, e) in &self.accepted {
            self.campaign_accepted.insert(*slot, e.clone());
        }
        ctx.broadcast(PaxosMsg::Prepare { ballot });
    }

    fn handle_prepare_locally(&mut self, ballot: u64) {
        if ballot > self.promised {
            self.promised = ballot;
        }
    }

    fn become_leader(&mut self, ballot: u64, ctx: &mut Ctx<PaxosMsg>) {
        prever_obs::log!(Info, "node {} leads with ballot {ballot}", self.id);
        prever_obs::counter("paxos.leader_elections").inc();
        self.campaigning = None;
        self.leading = Some(ballot);
        // Re-propose every accepted-but-undecided value we learned.
        let mut max_slot = self.decided.keys().next_back().copied().map(|s| s + 1).unwrap_or(0);
        let to_repropose: Vec<(u64, Batch)> = self
            .campaign_accepted
            .iter()
            .filter(|(slot, _)| !self.decided.contains_key(*slot))
            .map(|(slot, e)| (*slot, e.batch.clone()))
            .collect();
        for (slot, _) in &to_repropose {
            max_slot = max_slot.max(slot + 1);
        }
        self.next_slot = max_slot;
        for (slot, batch) in to_repropose {
            self.propose_at(slot, batch, ctx);
        }
        // Propose the backlog (retained until decided), chunked by the
        // batch policy; `force` skips the fill delay so inherited work
        // ships immediately.
        for command in self.backlog.clone() {
            self.enqueue(command, ctx.now());
        }
        self.flush(ctx, true);
        ctx.set_timer(HEARTBEAT_EVERY, TIMER_HEARTBEAT);
    }

    /// Queues a command toward the next proposed batch (leader side).
    fn enqueue(&mut self, command: Command, now: u64) {
        if self.already_known(&command) || self.accum.iter().any(|(c, _)| c.id == command.id) {
            return;
        }
        if prever_obs::trace::active() {
            prever_obs::trace::event(self.id as u64, now, command.trace, "queue", command.id);
        }
        self.accum.push_back((command, now));
    }

    /// Cuts and proposes batches from the accumulator. A batch is cut when
    /// it is full or its oldest command has waited `max_delay`, subject to
    /// the in-flight `window`.
    fn flush(&mut self, ctx: &mut Ctx<PaxosMsg>, force: bool) {
        if self.leading.is_none() {
            return;
        }
        let now = ctx.now();
        while !self.accum.is_empty() && self.proposing.len() < self.cfg.window {
            let full = self.accum.len() >= self.cfg.max_batch;
            let oldest = self.accum.front().map(|(_, since)| *since).unwrap_or(now);
            let aged = self.cfg.max_delay == 0 || now.saturating_sub(oldest) >= self.cfg.max_delay;
            if !(full || aged || force) {
                break;
            }
            let take = self.accum.len().min(self.cfg.max_batch);
            let mut commands: Vec<Command> = self.accum.drain(..take).map(|(c, _)| c).collect();
            // Re-filter: a command may have been decided (via another
            // leader's Decide) since it was queued.
            commands.retain(|c| !self.already_known(c));
            if commands.is_empty() {
                continue;
            }
            prever_obs::histogram("consensus.batch.size").record(commands.len() as u64);
            prever_obs::histogram("consensus.batch.fill_delay").record(now.saturating_sub(oldest));
            let slot = self.next_slot;
            self.next_slot += 1;
            if prever_obs::trace::active() {
                for c in &commands {
                    prever_obs::trace::event(self.id as u64, now, c.trace, "batch-cut", slot);
                }
            }
            self.propose_at(slot, Batch::new(commands), ctx);
        }
    }

    /// Earliest virtual time a queued command's fill delay expires, if a
    /// batch timer is needed at all.
    fn next_batch_deadline(&self) -> Option<u64> {
        if self.leading.is_none() || self.cfg.max_delay == 0 {
            return None;
        }
        self.accum.front().map(|(_, since)| since + self.cfg.max_delay)
    }

    fn arm_batch_timer(&self, ctx: &mut Ctx<PaxosMsg>) {
        if let Some(deadline) = self.next_batch_deadline() {
            let due = deadline.max(ctx.now() + 1);
            ctx.set_timer(due - ctx.now(), TIMER_BATCH);
        }
    }

    fn propose_at(&mut self, slot: u64, batch: Batch, ctx: &mut Ctx<PaxosMsg>) {
        let ballot = self.leading.expect("propose_at requires leadership");
        self.proposing.insert(slot, batch.clone());
        let mut votes = VoteSet::new();
        votes.add(self.id); // self-accept below
        self.votes.insert(slot, votes);
        self.accepted.insert(slot, AcceptedEntry { ballot, batch: batch.clone() });
        ctx.broadcast(PaxosMsg::Accept { ballot, slot, batch });
    }

    fn decide(&mut self, slot: u64, batch: Batch, ctx: &mut Ctx<PaxosMsg>) {
        if self.decided.contains_key(&slot) {
            return;
        }
        prever_obs::counter("paxos.decided").inc();
        self.backlog.retain(|c| !batch.contains_id(c.id));
        self.accum.retain(|(c, _)| !batch.contains_id(c.id));
        for command in batch.commands() {
            if prever_obs::trace::active() {
                let me = self.id as u64;
                prever_obs::trace::event(
                    me,
                    ctx.now(),
                    command.trace.child("batch-cut", me),
                    "commit-quorum",
                    slot,
                );
                prever_obs::trace::event(
                    me,
                    ctx.now(),
                    command.trace.child("commit-quorum", me),
                    "exec",
                    slot,
                );
            }
            self.decided_log.push(Decided { slot, command: command.clone(), at: ctx.now() });
        }
        self.decided.insert(slot, batch);
        self.votes.remove(&slot);
        self.proposing.remove(&slot);
        // A decision frees a pipeline window slot.
        self.flush(ctx, false);
    }

    /// True iff the command is already decided or being proposed.
    fn already_known(&self, command: &Command) -> bool {
        self.decided.values().any(|b| b.contains_id(command.id))
            || self.proposing.values().any(|b| b.contains_id(command.id))
    }
}

impl Actor for PaxosNode {
    type Msg = PaxosMsg;

    fn on_start(&mut self, ctx: &mut Ctx<PaxosMsg>) {
        // Leader election is purely timeout-driven: every node arms a
        // staggered election timer, and the first to fire without having
        // heard from a leader (or promised to a campaigner) campaigns.
        // Node 0 normally wins only because its timer fires first — if
        // it is down at start, node 1's timer elects node 1, and so on.
        ctx.set_timer(ELECTION_BASE + (self.id as u64) * ELECTION_STAGGER, TIMER_LEADER_TIMEOUT);
    }

    fn on_message(&mut self, from: NodeId, msg: PaxosMsg, ctx: &mut Ctx<PaxosMsg>) {
        let _span = prever_obs::span!(msg.span_name());
        match msg {
            PaxosMsg::ClientRequest(batch) => {
                if self.leading.is_some() {
                    for command in batch.commands() {
                        self.enqueue(command.clone(), ctx.now());
                    }
                    self.flush(ctx, false);
                    self.arm_batch_timer(ctx);
                } else {
                    // Retain until decided (the leader may crash with the
                    // forwarded copy), and forward to the believed leader.
                    for command in batch.commands() {
                        if self.already_known(command) {
                            continue;
                        }
                        if !self.backlog.iter().any(|c| c.id == command.id) {
                            self.backlog.push(command.clone());
                        }
                    }
                    let believed = (self.seen_ballot % self.n as u64) as NodeId;
                    if believed != self.id && self.seen_ballot > 0 {
                        ctx.send(believed, PaxosMsg::ClientRequest(batch));
                    }
                }
            }
            PaxosMsg::Prepare { ballot } => {
                if ballot > self.promised {
                    self.promised = ballot;
                    self.seen_ballot = self.seen_ballot.max(ballot);
                    // A live campaign counts as leadership activity:
                    // without this, every promiser's own election timer
                    // would fire during the campaign and start a duel.
                    self.heard_from_leader = true;
                    // Stepping down if we led under a lower ballot.
                    if self.leading.is_some_and(|b| b < ballot) {
                        self.leading = None;
                    }
                    let accepted = self
                        .accepted
                        .iter()
                        .map(|(slot, e)| (*slot, e.ballot, e.batch.clone()))
                        .collect();
                    ctx.send(from, PaxosMsg::Promise { ballot, accepted });
                }
            }
            PaxosMsg::Promise { ballot, accepted } => {
                if self.campaigning != Some(ballot) {
                    return;
                }
                for (slot, b, batch) in accepted {
                    let replace = self
                        .campaign_accepted
                        .get(&slot)
                        .is_none_or(|e| e.ballot < b);
                    if replace {
                        self.campaign_accepted.insert(slot, AcceptedEntry { ballot: b, batch });
                    }
                }
                if self.promises.add(from) && self.promises.len() >= self.majority() {
                    self.become_leader(ballot, ctx);
                }
            }
            PaxosMsg::Accept { ballot, slot, batch } => {
                if ballot >= self.promised {
                    self.promised = ballot;
                    self.seen_ballot = self.seen_ballot.max(ballot);
                    self.heard_from_leader = true;
                    if self.leading.is_some_and(|b| b < ballot) {
                        self.leading = None;
                    }
                    self.accepted.insert(slot, AcceptedEntry { ballot, batch });
                    ctx.send(from, PaxosMsg::Accepted { ballot, slot });
                }
            }
            PaxosMsg::Accepted { ballot, slot } => {
                if self.leading != Some(ballot) {
                    return;
                }
                let Some(votes) = self.votes.get_mut(&slot) else {
                    return;
                };
                votes.add(from);
                if votes.len() >= self.majority() {
                    if let Some(batch) = self.proposing.get(&slot).cloned() {
                        ctx.broadcast(PaxosMsg::Decide { slot, batch: batch.clone() });
                        self.decide(slot, batch, ctx);
                    }
                }
            }
            PaxosMsg::Decide { slot, batch } => {
                self.heard_from_leader = true;
                self.decide(slot, batch, ctx);
            }
            PaxosMsg::Heartbeat { ballot, decided_up_to } => {
                if ballot >= self.seen_ballot {
                    self.seen_ballot = ballot;
                    self.heard_from_leader = true;
                    if self.leading.is_some_and(|b| b < ballot) {
                        self.leading = None;
                    }
                    if self.leading.is_none() {
                        let leader = (ballot % self.n as u64) as NodeId;
                        // Re-forward undecided backlog to the live
                        // leader (kept locally until a Decide arrives).
                        let undecided: Vec<Command> = self
                            .backlog
                            .iter()
                            .filter(|c| !self.already_known(c))
                            .cloned()
                            .collect();
                        if !undecided.is_empty() {
                            ctx.send(leader, PaxosMsg::ClientRequest(Batch::new(undecided)));
                        }
                        // Ask for decisions lost to the network.
                        let missing: Vec<u64> = (0..decided_up_to)
                            .filter(|s| !self.decided.contains_key(s))
                            .take(64)
                            .collect();
                        if !missing.is_empty() {
                            ctx.send(leader, PaxosMsg::LearnRequest { missing });
                        }
                    }
                }
            }
            PaxosMsg::LearnRequest { missing } => {
                for slot in missing {
                    if let Some(batch) = self.decided.get(&slot).cloned() {
                        ctx.send(from, PaxosMsg::Decide { slot, batch });
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, timer: u64, ctx: &mut Ctx<PaxosMsg>) {
        match timer {
            TIMER_HEARTBEAT => {
                if let Some(ballot) = self.leading {
                    let decided_up_to =
                        self.decided.keys().next_back().map(|s| s + 1).unwrap_or(0);
                    ctx.broadcast(PaxosMsg::Heartbeat { ballot, decided_up_to });
                    // Retransmit undecided proposals: with a lossy
                    // network, dropped Accept/Accepted messages would
                    // otherwise stall their slots forever. Acceptors
                    // treat re-Accepts idempotently.
                    for (slot, batch) in self.proposing.clone() {
                        ctx.broadcast(PaxosMsg::Accept { ballot, slot, batch });
                    }
                    ctx.set_timer(HEARTBEAT_EVERY, TIMER_HEARTBEAT);
                }
            }
            TIMER_LEADER_TIMEOUT => {
                let am_leader = self.leading.is_some();
                // A stalled campaign (no majority reachable) is restarted
                // with a fresh, higher ballot rather than waited on.
                if !am_leader && !self.heard_from_leader {
                    self.start_campaign(ctx);
                }
                self.heard_from_leader = false;
                // Stagger re-arm by id to avoid dueling proposers.
                ctx.set_timer(
                    LEADER_TIMEOUT + (self.id as u64) * ELECTION_STAGGER,
                    TIMER_LEADER_TIMEOUT,
                );
            }
            TIMER_BATCH => {
                self.flush(ctx, false);
                self.arm_batch_timer(ctx);
            }
            _ => {}
        }
    }
}

/// Builds an `n`-node Paxos cluster.
pub fn cluster(n: usize) -> Vec<PaxosNode> {
    (0..n).map(|id| PaxosNode::new(id, n)).collect()
}

/// Builds an `n`-node Paxos cluster with a batching policy.
pub fn cluster_batched(n: usize, cfg: BatchConfig) -> Vec<PaxosNode> {
    (0..n).map(|id| PaxosNode::with_batching(id, n, cfg)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prever_sim::{NetConfig, Simulation};

    fn run_cluster(
        n: usize,
        commands: usize,
        seed: u64,
        f: impl FnOnce(&mut Simulation<PaxosNode>),
    ) -> Simulation<PaxosNode> {
        let mut sim = Simulation::new(cluster(n), NetConfig::default(), seed);
        // Let leadership settle.
        sim.run_until(50_000);
        for i in 0..commands {
            let target = i % n;
            sim.inject(
                target,
                target,
                PaxosMsg::request(Command::new(i as u64, format!("cmd-{i}"))),
                sim.now() + 1 + i as u64 * 100,
            );
        }
        f(&mut sim);
        sim
    }

    fn all_decided(sim: &Simulation<PaxosNode>, n_cmds: usize, live: &[usize]) {
        // Every live node decides the same log covering all commands.
        let reference = sim.node(live[0]).decided().clone();
        let mut seen = sim.node(live[0]).decided_ids();
        assert!(seen.len() >= n_cmds, "only {} of {} decided", seen.len(), n_cmds);
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), n_cmds, "some commands missing or duplicated");
        for &id in live {
            assert_eq!(sim.node(id).decided(), &reference, "node {id} diverged");
        }
    }

    #[test]
    fn decides_commands_on_clean_run() {
        let n = 5;
        let sim_done = {
            let mut sim = run_cluster(n, 20, 1, |sim| {
                let ok = sim.run_until_pred(2_000_000, |nodes| {
                    nodes.iter().all(|nd| nd.decided_ids().len() >= 20)
                });
                assert!(ok, "not all nodes decided in time");
            });
            sim.run_until(sim.now() + 10_000);
            sim
        };
        all_decided(&sim_done, 20, &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn nodes_agree_on_order() {
        let mut sim = run_cluster(3, 30, 7, |sim| {
            assert!(sim.run_until_pred(2_000_000, |nodes| {
                nodes.iter().all(|nd| nd.decided_ids().len() >= 30)
            }));
        });
        sim.run_until(sim.now() + 10_000);
        let a = sim.node(0).decided_ids();
        let b = sim.node(1).decided_ids();
        let c = sim.node(2).decided_ids();
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn survives_leader_crash() {
        let n = 5;
        let mut sim = Simulation::new(cluster(n), NetConfig::default(), 3);
        sim.run_until(50_000);
        // First batch through the initial leader.
        for i in 0..5u64 {
            sim.inject(1, 1, PaxosMsg::request(Command::new(i, "pre")), sim.now() + 1 + i);
        }
        assert!(sim.run_until_pred(1_000_000, |nodes| nodes[1].decided_ids().len() >= 5));
        // Find and crash the leader.
        let leader = (0..n).find(|&i| sim.node(i).is_leader()).expect("a leader exists");
        sim.crash(leader);
        // New commands must still get decided by the survivors.
        let submit_to = (leader + 1) % n;
        for i in 5..10u64 {
            sim.inject(
                submit_to,
                submit_to,
                PaxosMsg::request(Command::new(i, "post")),
                sim.now() + 1000 + i,
            );
        }
        let ok = sim.run_until_pred(5_000_000, move |nodes| {
            (0..n).filter(|&i| i != leader).all(|i| {
                let ids: std::collections::HashSet<u64> =
                    nodes[i].decided_ids().into_iter().collect();
                (0..10).all(|c| ids.contains(&c))
            })
        });
        assert!(ok, "survivors failed to decide post-crash commands");
        // Safety: pre-crash decisions preserved identically.
        let live: Vec<usize> = (0..n).filter(|&i| i != leader).collect();
        let reference = sim.node(live[0]).decided().clone();
        for &i in &live {
            assert_eq!(sim.node(i).decided(), &reference);
        }
    }

    #[test]
    fn elects_a_leader_when_node_zero_is_down_from_the_start() {
        // The old code bootstrapped leadership unconditionally at node 0;
        // with node 0 dead before its first event, the cluster would
        // have stayed leaderless forever. Timeout-driven election must
        // promote a survivor instead.
        let n = 5;
        let mut sim = Simulation::new(cluster(n), NetConfig::default(), 17);
        sim.crash(0);
        for i in 0..5u64 {
            sim.inject(
                2,
                2,
                PaxosMsg::request(Command::new(i, format!("cmd-{i}"))),
                1_000 + i * 100,
            );
        }
        let ok = sim.run_until_pred(5_000_000, |nodes| {
            (1..5).all(|i| nodes[i].decided_ids().len() >= 5)
        });
        assert!(ok, "survivors never decided without node 0");
        assert!(
            (1..n).any(|i| sim.node(i).is_leader()),
            "a survivor must hold leadership"
        );
        let reference = sim.node(1).decided().clone();
        for i in 2..n {
            assert_eq!(sim.node(i).decided(), &reference, "node {i} diverged");
        }
    }

    #[test]
    fn minority_partition_makes_no_progress() {
        let n = 5;
        let mut sim = Simulation::new(cluster(n), NetConfig::default(), 9);
        sim.run_until(50_000);
        // Partition nodes {0,1} away from {2,3,4}.
        sim.set_partition(vec![0, 0, 1, 1, 1]);
        // Submit to the minority side (where the initial leader 0 lives).
        for i in 0..3u64 {
            sim.inject(0, 0, PaxosMsg::request(Command::new(i, "x")), sim.now() + 1 + i);
        }
        sim.run_until(sim.now() + 400_000);
        // Minority cannot decide new commands (node 1 sees nothing new).
        assert_eq!(sim.node(1).decided_ids().len(), 0);
        // Majority side elects its own leader and can process commands.
        for i in 10..13u64 {
            sim.inject(2, 2, PaxosMsg::request(Command::new(i, "y")), sim.now() + 1 + i);
        }
        let ok = sim.run_until_pred(5_000_000, |nodes| nodes[3].decided_ids().len() >= 3);
        assert!(ok, "majority partition failed to decide");
    }

    #[test]
    fn deterministic_across_runs() {
        let run = |seed| {
            let mut sim = run_cluster(3, 10, seed, |sim| {
                sim.run_until(3_000_000);
            });
            sim.run_until(3_100_000);
            sim.node(0)
                .decided_log()
                .iter()
                .map(|d| (d.slot, d.command.id, d.at))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn batched_leader_decides_all_with_fewer_slots() {
        let n = 5;
        let cfg = BatchConfig::new(8, 10_000, 4);
        let mut sim = Simulation::new(cluster_batched(n, cfg), NetConfig::default(), 11);
        sim.run_until(50_000);
        for i in 0..64u64 {
            let target = (i % n as u64) as usize;
            sim.inject(
                target,
                target,
                PaxosMsg::request(Command::new(i, format!("b-{i}"))),
                sim.now() + 1 + i * 50,
            );
        }
        let ok = sim.run_until_pred(5_000_000, |nodes| {
            nodes.iter().all(|nd| nd.decided_ids().len() >= 64)
        });
        assert!(ok, "batched cluster failed to decide all commands");
        sim.run_until(sim.now() + 50_000);
        let mut ids = sim.node(0).decided_ids();
        let slots = sim.node(0).decided().len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 64, "commands lost or duplicated under batching");
        assert!(slots < 64, "batching should use fewer slots than commands ({slots})");
        assert!(
            sim.node(0).decided().values().any(|b| b.len() > 1),
            "expected at least one multi-command batch"
        );
        let reference = sim.node(0).decided().clone();
        for i in 1..n {
            assert_eq!(sim.node(i).decided(), &reference, "node {i} diverged");
        }
    }
}
