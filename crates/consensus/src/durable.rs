//! Durable consensus state over the ledger journal.
//!
//! A [`DurableLog`] models a replica's disk: a hash-chained
//! [`prever_ledger::Journal`] that survives a crash-with-state-loss. A
//! replica appends two kinds of records while running:
//!
//! * **Exec** — one per executed command, in sequence order. Replaying
//!   the exec records rebuilds the executed history (and hence the
//!   chained state digest) of everything the replica had applied before
//!   it died.
//! * **Bind** — a `(seq, view, digest)` vote binding, written *before*
//!   the replica's prepare vote for that slot leaves the outbox. After a
//!   restart the bindings stop the recovered replica from voting for a
//!   *different* command at a sequence it already voted on in the same
//!   or an older view — the classic amnesia hazard that turns a correct
//!   replica into an accidental equivocator.
//! * **Prep** — a `(seq, view, command)` prepared certificate, written
//!   when a slot reaches the prepared predicate and *before* the commit
//!   vote leaves. A commit vote claims "I hold a prepared certificate";
//!   if the replica then restarts with amnesia, a subsequent view
//!   change could otherwise no-op-fill a slot that committed at a
//!   single correct replica on the strength of this replica's vote —
//!   replaying the Prep records lets the recovered replica re-assert
//!   the certificates it once claimed.
//!
//! The journal's hash chain is verified on replay
//! ([`prever_ledger::Journal::verify_chain`]), so a corrupted "disk" is
//! detected rather than silently trusted.
//!
//! The log is held behind `Rc<RefCell<…>>` so the simulation harness can
//! keep a handle to the same "disk" across a [`FaultEvent::RestartWithLoss`]
//! (the node factory passes the surviving log to the replacement actor).
//! This makes the nodes `!Send`, which is fine: the simulator is
//! single-threaded by design.
//!
//! [`FaultEvent::RestartWithLoss`]: prever_sim::FaultEvent::RestartWithLoss

use crate::Command;
use bytes::Bytes;
use prever_crypto::Digest;
use prever_ledger::{Journal, LedgerError};
use std::cell::RefCell;
use std::rc::Rc;

const TAG_EXEC: u8 = 0x01;
const TAG_BIND: u8 = 0x02;
const TAG_PREP: u8 = 0x03;

/// A shared, hash-chained durable log (one per replica "disk").
#[derive(Clone, Debug, Default)]
pub struct DurableLog {
    inner: Rc<RefCell<Journal>>,
}

/// State decoded from a [`DurableLog`] replay.
#[derive(Clone, Debug, Default)]
pub struct ReplayedState {
    /// Executed commands as `(seq, command, decided_at)`, in append
    /// (= sequence) order.
    pub entries: Vec<(u64, Command, u64)>,
    /// Vote bindings as `(seq, view, digest)`, in append order.
    pub bindings: Vec<(u64, u64, Digest)>,
    /// Prepared certificates as `(seq, view, command)`, in append order.
    pub prepared: Vec<(u64, u64, Command)>,
}

impl DurableLog {
    /// A fresh, empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of records appended so far.
    pub fn len(&self) -> usize {
        self.inner.borrow().len()
    }

    /// True iff nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().is_empty()
    }

    /// Appends an executed command at `seq`, decided at virtual time `at`.
    pub fn append_exec(&self, seq: u64, command: &Command, at: u64) {
        let mut buf = Vec::with_capacity(17 + command.payload.len());
        buf.push(TAG_EXEC);
        buf.extend_from_slice(&seq.to_be_bytes());
        buf.extend_from_slice(&command.id.to_be_bytes());
        buf.extend_from_slice(&command.payload);
        self.inner.borrow_mut().append(at, Bytes::from(buf));
    }

    /// Appends a `(seq, view, digest)` vote binding.
    pub fn append_bind(&self, seq: u64, view: u64, digest: &Digest) {
        let mut buf = Vec::with_capacity(49);
        buf.push(TAG_BIND);
        buf.extend_from_slice(&seq.to_be_bytes());
        buf.extend_from_slice(&view.to_be_bytes());
        buf.extend_from_slice(digest.as_bytes());
        self.inner.borrow_mut().append(0, Bytes::from(buf));
    }

    /// Appends a `(seq, view, command)` prepared certificate.
    pub fn append_prep(&self, seq: u64, view: u64, command: &Command) {
        let mut buf = Vec::with_capacity(25 + command.payload.len());
        buf.push(TAG_PREP);
        buf.extend_from_slice(&seq.to_be_bytes());
        buf.extend_from_slice(&view.to_be_bytes());
        buf.extend_from_slice(&command.id.to_be_bytes());
        buf.extend_from_slice(&command.payload);
        self.inner.borrow_mut().append(0, Bytes::from(buf));
    }

    /// The ledger digest over everything appended so far.
    pub fn digest(&self) -> prever_ledger::LedgerDigest {
        self.inner.borrow().digest()
    }

    /// Verifies the hash chain and decodes the surviving records.
    ///
    /// Returns [`LedgerError::TamperDetected`] if the chain fails
    /// verification or a record is malformed — a replica must refuse to
    /// rejoin from a disk it cannot trust.
    pub fn replay(&self) -> Result<ReplayedState, LedgerError> {
        let journal = self.inner.borrow();
        let digest = journal.digest();
        Journal::verify_chain(journal.entries(), &digest)?;
        let mut state = ReplayedState::default();
        for entry in journal.entries() {
            let p = &entry.payload;
            match p.first() {
                Some(&TAG_EXEC) if p.len() >= 17 => {
                    let seq = u64::from_be_bytes(p[1..9].try_into().unwrap());
                    let id = u64::from_be_bytes(p[9..17].try_into().unwrap());
                    let command = Command::new(id, p[17..].to_vec());
                    state.entries.push((seq, command, entry.timestamp));
                }
                Some(&TAG_BIND) if p.len() == 49 => {
                    let seq = u64::from_be_bytes(p[1..9].try_into().unwrap());
                    let view = u64::from_be_bytes(p[9..17].try_into().unwrap());
                    let mut d = [0u8; 32];
                    d.copy_from_slice(&p[17..49]);
                    state.bindings.push((seq, view, Digest(d)));
                }
                Some(&TAG_PREP) if p.len() >= 25 => {
                    let seq = u64::from_be_bytes(p[1..9].try_into().unwrap());
                    let view = u64::from_be_bytes(p[9..17].try_into().unwrap());
                    let id = u64::from_be_bytes(p[17..25].try_into().unwrap());
                    let command = Command::new(id, p[25..].to_vec());
                    state.prepared.push((seq, view, command));
                }
                _ => return Err(LedgerError::TamperDetected("malformed durable record")),
            }
        }
        Ok(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_roundtrips_execs_and_bindings() {
        let log = DurableLog::new();
        assert!(log.is_empty());
        let c1 = Command::new(7, b"alpha".to_vec());
        let c2 = Command::new(9, b"beta".to_vec());
        log.append_bind(1, 0, &c1.digest());
        log.append_prep(1, 0, &c1);
        log.append_exec(1, &c1, 1234);
        log.append_bind(2, 3, &c2.digest());
        log.append_prep(2, 3, &c2);
        log.append_exec(2, &c2, 5678);
        assert_eq!(log.len(), 6);

        let replayed = log.replay().expect("chain verifies");
        assert_eq!(
            replayed.entries,
            vec![(1, c1.clone(), 1234), (2, c2.clone(), 5678)]
        );
        assert_eq!(
            replayed.bindings,
            vec![(1, 0, c1.digest()), (2, 3, c2.digest())]
        );
        assert_eq!(
            replayed.prepared,
            vec![(1, 0, c1.clone()), (2, 3, c2.clone())]
        );
    }

    #[test]
    fn clones_share_the_same_disk() {
        let log = DurableLog::new();
        let survivor = log.clone();
        log.append_exec(1, &Command::new(1, b"x".to_vec()), 1);
        assert_eq!(survivor.len(), 1);
        assert_eq!(survivor.replay().unwrap().entries.len(), 1);
    }

    #[test]
    fn replay_rejects_malformed_records() {
        let log = DurableLog::new();
        log.inner.borrow_mut().append(0, Bytes::from_static(&[0x7f, 0x00]));
        assert!(matches!(
            log.replay(),
            Err(LedgerError::TamperDetected("malformed durable record"))
        ));
    }
}
