//! Durable consensus state over a crash-consistent persistent journal.
//!
//! A [`DurableLog`] models a replica's disk — since PR 4 not as an
//! always-intact in-memory journal but as a
//! [`prever_ledger::PersistentJournal`] over a pair of simulated disks
//! ([`DurableMedia`]): a CRC-framed WAL plus a snapshot medium, with a
//! write-back cache whose unflushed bytes die (or tear) on crash. A
//! replica appends three kinds of records while running:
//!
//! * **Exec** — one per executed *batch*, in batch-sequence order
//!   (since DESIGN.md §11 the batch is the unit of agreement, so it is
//!   also the unit of durability: one record and at most one flush
//!   barrier per ordering round instead of per command). Replaying the
//!   exec records rebuilds the executed history (and hence the chained
//!   state digest) of everything the replica had applied before it
//!   died.
//! * **Bind** — a `(seq, view, digest)` vote binding, written *before*
//!   the replica's prepare vote for that slot leaves the outbox. After a
//!   restart the bindings stop the recovered replica from voting for a
//!   *different* command at a sequence it already voted on in the same
//!   or an older view — the classic amnesia hazard that turns a correct
//!   replica into an accidental equivocator.
//! * **Prep** — a `(seq, view, batch)` prepared certificate, written
//!   when a slot reaches the prepared predicate and *before* the commit
//!   vote leaves. A commit vote claims "I hold a prepared certificate";
//!   if the replica then restarts with amnesia, a subsequent view
//!   change could otherwise no-op-fill a slot that committed at a
//!   single correct replica on the strength of this replica's vote —
//!   replaying the Prep records lets the recovered replica re-assert
//!   the certificates it once claimed.
//!
//! ## Flush discipline
//!
//! Bind and Prep records are **flushed before the corresponding vote
//! leaves** — their whole point is to outlive a crash that happens after
//! the vote is on the wire; an unflushed binding is no binding at all.
//! Exec records are redundant with the cluster (a recovered replica can
//! re-fetch executed history via state transfer), so they may ride a
//! [`FlushPolicy`]: `Always` flushes per append, `Every(n)` leaves them
//! in the write-back cache until every n-th
//! [`DurableLog::commit_dispatch`] — the group-commit point the owning
//! node calls once per simulator dispatch.
//!
//! On recovery ([`DurableLog::recover`]) the journal is rebuilt from
//! the last valid snapshot plus WAL tail replay; a torn tail is
//! truncated (those records were never acked), while corruption of
//! durable bytes fails loudly. The rebuilt hash chain is then verified
//! again on [`DurableLog::replay`]
//! ([`prever_ledger::Journal::verify_chain`]), so a corrupted "disk" is
//! detected rather than silently trusted.
//!
//! The log is held behind `Rc<RefCell<…>>` so the simulation harness can
//! keep a handle to the same "disk" across a [`FaultEvent::RestartWithLoss`]
//! (the node factory recovers a fresh log from the surviving
//! [`DurableMedia`]). This makes the nodes `!Send`, which is fine: the
//! simulator is single-threaded by design.
//!
//! [`FaultEvent::RestartWithLoss`]: prever_sim::FaultEvent::RestartWithLoss

use crate::Batch;
use bytes::Bytes;
use prever_crypto::Digest;
use prever_ledger::{Journal, LedgerError, PersistReport, PersistentJournal};
use prever_storage::SharedDisk;
use std::cell::RefCell;
use std::rc::Rc;

const TAG_EXEC: u8 = 0x01;
const TAG_BIND: u8 = 0x02;
const TAG_PREP: u8 = 0x03;

/// When exec records reach the platter (bind/prep records always flush
/// immediately — see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushPolicy {
    /// Flush after every exec append (safest, most barriers).
    Always,
    /// Group commit: flush pending exec records on every n-th
    /// [`DurableLog::commit_dispatch`]. `Every(0)` behaves as `Every(1)`.
    Every(u64),
}

/// The pair of simulated disks backing one replica: WAL + snapshot
/// medium. The chaos harness owns this across restarts and injects
/// crashes/corruption into it; the replica's [`DurableLog`] holds
/// cloned handles to the same state.
#[derive(Clone, Debug)]
pub struct DurableMedia {
    /// The write-ahead-log disk.
    pub wal: SharedDisk,
    /// The snapshot disk.
    pub snap: SharedDisk,
}

impl DurableMedia {
    /// Fresh media; `seed` drives the disks' torn-write/corruption RNG.
    pub fn new(seed: u64) -> Self {
        DurableMedia {
            wal: SharedDisk::new(seed),
            snap: SharedDisk::new(seed ^ 0x5eed_5eed_5eed_5eed),
        }
    }

    /// Crash both disks with torn-write semantics; returns bytes lost.
    pub fn crash(&self) -> u64 {
        self.wal.crash() + self.snap.crash()
    }

    /// Crash both disks dropping the entire write-back cache.
    pub fn crash_dropping_cache(&self) -> u64 {
        self.wal.crash_dropping_cache() + self.snap.crash_dropping_cache()
    }

    /// Corrupts one seeded flushed sector of the WAL disk.
    pub fn corrupt(&self) -> bool {
        self.wal.corrupt_random_flushed_sector()
    }

    /// Wipes both disks (a disk swap after detected corruption).
    pub fn wipe(&self) {
        self.wal.wipe();
        self.snap.wipe();
    }
}

#[derive(Debug)]
struct Inner {
    pj: PersistentJournal<SharedDisk>,
    policy: FlushPolicy,
    dispatches: u64,
}

/// A shared, hash-chained, crash-consistent durable log (one per
/// replica "disk").
#[derive(Clone, Debug)]
pub struct DurableLog {
    inner: Rc<RefCell<Inner>>,
}

impl Default for DurableLog {
    fn default() -> Self {
        Self::on(&DurableMedia::new(0))
    }
}

/// State decoded from a [`DurableLog`] replay.
#[derive(Clone, Debug, Default)]
pub struct ReplayedState {
    /// Executed batches as `(batch seq, batch, decided_at)`, in append
    /// (= sequence) order.
    pub entries: Vec<(u64, Batch, u64)>,
    /// Vote bindings as `(seq, view, digest)`, in append order.
    pub bindings: Vec<(u64, u64, Digest)>,
    /// Prepared certificates as `(seq, view, batch)`, in append order.
    pub prepared: Vec<(u64, u64, Batch)>,
}

impl DurableLog {
    /// A fresh, empty log on its own private media.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh log over existing (empty) media whose handles the caller
    /// keeps for fault injection.
    pub fn on(media: &DurableMedia) -> Self {
        DurableLog {
            inner: Rc::new(RefCell::new(Inner {
                pj: PersistentJournal::create(media.wal.clone(), media.snap.clone()),
                policy: FlushPolicy::Always,
                dispatches: 0,
            })),
        }
    }

    /// Reopens a log from whatever survived on `media` after a crash:
    /// snapshot load + WAL tail replay (torn tail truncated), then the
    /// caller typically [`Self::replay`]s it into a recovering node.
    ///
    /// Fails loudly on corrupted durable bytes.
    pub fn recover(media: &DurableMedia) -> Result<(Self, PersistReport), LedgerError> {
        let (pj, report) = PersistentJournal::recover(media.wal.clone(), media.snap.clone())?;
        Ok((
            DurableLog {
                inner: Rc::new(RefCell::new(Inner {
                    pj,
                    policy: FlushPolicy::Always,
                    dispatches: 0,
                })),
            },
            report,
        ))
    }

    /// Sets the exec-record flush policy (chainable).
    pub fn with_policy(self, policy: FlushPolicy) -> Self {
        self.inner.borrow_mut().policy = policy;
        self
    }

    /// Number of records appended so far.
    pub fn len(&self) -> usize {
        self.inner.borrow().pj.len() as usize
    }

    /// True iff nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().pj.is_empty()
    }

    /// Records known durable — the acked watermark the durability
    /// invariant is checked against.
    pub fn flushed_records(&self) -> u64 {
        self.inner.borrow().pj.flushed_entries()
    }

    /// Appends an executed batch at batch sequence `seq`, decided at
    /// virtual time `at`. One record per ordering round; durability
    /// governed by the [`FlushPolicy`].
    pub fn append_exec(&self, seq: u64, batch: &Batch, at: u64) {
        let mut buf = Vec::with_capacity(13);
        buf.push(TAG_EXEC);
        buf.extend_from_slice(&seq.to_be_bytes());
        batch.encode_into(&mut buf);
        let mut inner = self.inner.borrow_mut();
        inner.pj.append(at, Bytes::from(buf));
        if inner.policy == FlushPolicy::Always {
            inner.pj.flush();
        }
    }

    /// Appends a `(seq, view, digest)` vote binding — flushed
    /// immediately, before the vote may leave.
    pub fn append_bind(&self, seq: u64, view: u64, digest: &Digest) {
        let mut buf = Vec::with_capacity(49);
        buf.push(TAG_BIND);
        buf.extend_from_slice(&seq.to_be_bytes());
        buf.extend_from_slice(&view.to_be_bytes());
        buf.extend_from_slice(digest.as_bytes());
        let mut inner = self.inner.borrow_mut();
        inner.pj.append(0, Bytes::from(buf));
        inner.pj.flush();
    }

    /// Appends a `(seq, view, batch)` prepared certificate — flushed
    /// immediately, before the commit vote may leave.
    pub fn append_prep(&self, seq: u64, view: u64, batch: &Batch) {
        let mut buf = Vec::with_capacity(21);
        buf.push(TAG_PREP);
        buf.extend_from_slice(&seq.to_be_bytes());
        buf.extend_from_slice(&view.to_be_bytes());
        batch.encode_into(&mut buf);
        let mut inner = self.inner.borrow_mut();
        inner.pj.append(0, Bytes::from(buf));
        inner.pj.flush();
    }

    /// The group-commit point: the owning node calls this once per
    /// simulator dispatch; pending exec records are flushed according to
    /// the [`FlushPolicy`].
    pub fn commit_dispatch(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.dispatches += 1;
        let due = match inner.policy {
            FlushPolicy::Always => true,
            FlushPolicy::Every(n) => inner.dispatches.is_multiple_of(n.max(1)),
        };
        if due && inner.pj.flushed_entries() < inner.pj.len() {
            inner.pj.flush();
        }
    }

    /// Forces everything staged to disk.
    pub fn flush(&self) {
        self.inner.borrow_mut().pj.flush();
    }

    /// Snapshot + WAL truncation (also a durability point).
    pub fn compact(&self) {
        self.inner.borrow_mut().pj.compact();
    }

    /// The ledger digest over everything appended so far.
    pub fn digest(&self) -> prever_ledger::LedgerDigest {
        self.inner.borrow().pj.journal().digest()
    }

    /// The digest as of the first `size` records (prefix-consistency
    /// checks in the chaos harness).
    pub fn digest_at(&self, size: u64) -> Result<prever_ledger::LedgerDigest, LedgerError> {
        self.inner.borrow().pj.journal().digest_at(size)
    }

    /// Verifies the hash chain and decodes the surviving records.
    ///
    /// Returns [`LedgerError::TamperDetected`] if the chain fails
    /// verification or a record is malformed — a replica must refuse to
    /// rejoin from a disk it cannot trust.
    pub fn replay(&self) -> Result<ReplayedState, LedgerError> {
        let inner = self.inner.borrow();
        let journal = inner.pj.journal();
        let digest = journal.digest();
        Journal::verify_chain(journal.entries(), &digest)?;
        let mut state = ReplayedState::default();
        for entry in journal.entries() {
            let p = &entry.payload;
            let malformed = LedgerError::TamperDetected("malformed durable record");
            match p.first() {
                Some(&TAG_EXEC) if p.len() >= 13 => {
                    let seq = u64::from_be_bytes(p[1..9].try_into().unwrap());
                    let Some((batch, used)) = Batch::decode(&p[9..]) else {
                        return Err(malformed);
                    };
                    if used != p.len() - 9 {
                        return Err(malformed);
                    }
                    state.entries.push((seq, batch, entry.timestamp));
                }
                Some(&TAG_BIND) if p.len() == 49 => {
                    let seq = u64::from_be_bytes(p[1..9].try_into().unwrap());
                    let view = u64::from_be_bytes(p[9..17].try_into().unwrap());
                    let mut d = [0u8; 32];
                    d.copy_from_slice(&p[17..49]);
                    state.bindings.push((seq, view, Digest(d)));
                }
                Some(&TAG_PREP) if p.len() >= 21 => {
                    let seq = u64::from_be_bytes(p[1..9].try_into().unwrap());
                    let view = u64::from_be_bytes(p[9..17].try_into().unwrap());
                    let Some((batch, used)) = Batch::decode(&p[17..]) else {
                        return Err(malformed);
                    };
                    if used != p.len() - 17 {
                        return Err(malformed);
                    }
                    state.prepared.push((seq, view, batch));
                }
                _ => return Err(LedgerError::TamperDetected("malformed durable record")),
            }
        }
        Ok(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Command;

    #[test]
    fn replay_roundtrips_execs_and_bindings() {
        let log = DurableLog::new();
        assert!(log.is_empty());
        // A multi-command batch exercises the length-framed encoding.
        let b1 = Batch::new(vec![
            Command::new(7, b"alpha".to_vec()),
            Command::new(8, b"".to_vec()),
        ]);
        let b2 = Batch::single(Command::new(9, b"beta".to_vec()));
        log.append_bind(1, 0, &b1.digest());
        log.append_prep(1, 0, &b1);
        log.append_exec(1, &b1, 1234);
        log.append_bind(2, 3, &b2.digest());
        log.append_prep(2, 3, &b2);
        log.append_exec(2, &b2, 5678);
        assert_eq!(log.len(), 6);
        assert_eq!(log.flushed_records(), 6, "Always policy flushes everything");

        let replayed = log.replay().expect("chain verifies");
        assert_eq!(
            replayed.entries,
            vec![(1, b1.clone(), 1234), (2, b2.clone(), 5678)]
        );
        assert_eq!(
            replayed.entries[0].1.commands(),
            b1.commands(),
            "batch contents round-trip"
        );
        assert_eq!(
            replayed.bindings,
            vec![(1, 0, b1.digest()), (2, 3, b2.digest())]
        );
        assert_eq!(
            replayed.prepared,
            vec![(1, 0, b1.clone()), (2, 3, b2.clone())]
        );
    }

    #[test]
    fn clones_share_the_same_disk() {
        let log = DurableLog::new();
        let survivor = log.clone();
        log.append_exec(1, &Batch::single(Command::new(1, b"x".to_vec())), 1);
        assert_eq!(survivor.len(), 1);
        assert_eq!(survivor.replay().unwrap().entries.len(), 1);
    }

    #[test]
    fn replay_rejects_malformed_records() {
        let log = DurableLog::new();
        log.inner
            .borrow_mut()
            .pj
            .append(0, Bytes::from_static(&[0x7f, 0x00]));
        assert!(matches!(
            log.replay(),
            Err(LedgerError::TamperDetected("malformed durable record"))
        ));
    }

    #[test]
    fn crash_recovery_keeps_flushed_records() {
        let media = DurableMedia::new(42);
        let log = DurableLog::on(&media).with_policy(FlushPolicy::Every(4));
        let b = |i: u64| Batch::single(Command::new(i, format!("cmd-{i}").into_bytes()));
        log.append_bind(1, 0, &b(1).digest()); // flushed
        log.append_exec(1, &b(1), 10); // staged
        log.append_exec(2, &b(2), 20); // staged
        assert_eq!(log.flushed_records(), 1);
        media.crash_dropping_cache();
        let (rec, report) = DurableLog::recover(&media).unwrap();
        assert_eq!(rec.len(), 1, "only the flushed binding survives");
        assert_eq!(report.frames_replayed, 1);
        let replayed = rec.replay().unwrap();
        assert_eq!(replayed.bindings.len(), 1);
        assert!(replayed.entries.is_empty());
    }

    #[test]
    fn commit_dispatch_groups_exec_flushes() {
        let media = DurableMedia::new(7);
        let log = DurableLog::on(&media).with_policy(FlushPolicy::Every(2));
        let b = Batch::single(Command::new(1, b"x".to_vec()));
        log.append_exec(1, &b, 1);
        log.commit_dispatch(); // dispatch 1 of 2: still pending
        assert_eq!(log.flushed_records(), 0);
        log.append_exec(2, &b, 2);
        log.commit_dispatch(); // dispatch 2: flush
        assert_eq!(log.flushed_records(), 2);
    }

    #[test]
    fn recovery_after_compaction_keeps_full_history() {
        let media = DurableMedia::new(9);
        let log = DurableLog::on(&media);
        let b = |i: u64| Batch::single(Command::new(i, format!("cmd-{i}").into_bytes()));
        for i in 1..=5 {
            log.append_exec(i, &b(i), i * 10);
        }
        log.compact();
        for i in 6..=8 {
            log.append_exec(i, &b(i), i * 10);
        }
        let digest = log.digest();
        media.crash(); // everything relevant already flushed (Always)
        let (rec, report) = DurableLog::recover(&media).unwrap();
        assert_eq!(rec.len(), 8);
        assert_eq!(rec.digest(), digest);
        assert_eq!(report.snapshot_entries, 5);
        assert_eq!(rec.replay().unwrap().entries.len(), 8);
    }

    #[test]
    fn corrupted_media_fail_recovery_loudly() {
        let media = DurableMedia::new(11);
        let log = DurableLog::on(&media);
        for i in 1..=20 {
            log.append_exec(i, &Batch::single(Command::new(i, vec![0xab; 40])), i);
        }
        log.flush();
        assert!(media.corrupt());
        assert!(matches!(
            DurableLog::recover(&media),
            Err(LedgerError::TamperDetected(_))
        ));
    }
}
