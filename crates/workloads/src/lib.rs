//! # prever-workloads
//!
//! Workload generators for PReVer's evaluation.
//!
//! §6 of the paper fixes the methodology: *"comparisons should be
//! performed with respect to non-private solutions using standardized
//! database benchmarks like TPC and YCSB."* This crate provides
//! from-scratch generators preserving the access-pattern and
//! transaction-mix characteristics of those suites (DESIGN.md documents
//! the substitution for the official kits), plus domain generators for
//! the paper's four motivating applications (§2):
//!
//! * [`ycsb`] — YCSB core workloads A–F with Zipfian/uniform/latest key
//!   distributions;
//! * [`tpcc`] — TPC-C-lite: the new-order transaction path over
//!   warehouses/districts/customers;
//! * [`crowdworking`] — multi-platform task completions under FLSA
//!   (Fig. 1c);
//! * [`domain`] — sustainability reports (Fig. 1a), conference
//!   registrations (Fig. 1b), and supply-chain shipments (Fig. 1d).
//!
//! All generators are deterministic given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crowdworking;
pub mod domain;
pub mod tpcc;
pub mod ycsb;

pub use crowdworking::{CrowdworkingWorkload, TaskCompletion};
pub use ycsb::{YcsbOp, YcsbWorkload, YcsbWorkloadKind};

use rand::Rng;

/// A Zipfian generator over `[0, n)` with parameter `theta`
/// (Gray et al.; YCSB's default skew is θ = 0.99).
#[derive(Clone, Debug)]
pub struct Zipfian {
    n: usize,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipfian {
    /// Builds a generator over `n` items with skew `theta ∈ (0, 1)`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipfian needs at least one item");
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0, 1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian { n, theta, alpha, zetan, eta, zeta2 }
    }

    fn zeta(n: usize, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Next sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let spread = self.eta * u - self.eta + 1.0;
        ((self.n as f64) * spread.powf(self.alpha)) as usize % self.n
    }

    /// Number of items.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The ζ(2, θ) constant (exposed for tests).
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn zipfian_is_skewed() {
        let mut rng = StdRng::seed_from_u64(1);
        let z = Zipfian::new(1000, 0.99);
        let mut counts = vec![0u64; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Hot head: the top item dominates.
        let head = counts[0];
        let tail: u64 = counts[500..].iter().sum();
        assert!(head > 5_000, "head {head}");
        assert!(head as f64 > tail as f64 * 0.5, "head {head} vs tail {tail}");
        // Everything in range.
        assert_eq!(counts.iter().sum::<u64>(), 100_000);
    }

    #[test]
    fn zipfian_low_theta_is_flatter() {
        let mut rng = StdRng::seed_from_u64(2);
        let skewed = Zipfian::new(100, 0.99);
        let flat = Zipfian::new(100, 0.1);
        let head_freq = |z: &Zipfian, rng: &mut StdRng| {
            let mut head = 0;
            for _ in 0..20_000 {
                if z.sample(rng) == 0 {
                    head += 1;
                }
            }
            head
        };
        let hs = head_freq(&skewed, &mut rng);
        let hf = head_freq(&flat, &mut rng);
        assert!(hs > hf * 2, "skewed head {hs} vs flat head {hf}");
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn zipfian_rejects_bad_theta() {
        Zipfian::new(10, 1.5);
    }
}
