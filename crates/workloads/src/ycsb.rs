//! YCSB core workloads A–F.
//!
//! Operation mixes follow the YCSB core-workload definitions:
//!
//! | Workload | Mix |
//! |---|---|
//! | A | 50% read / 50% update |
//! | B | 95% read / 5% update |
//! | C | 100% read |
//! | D | 95% read (latest) / 5% insert |
//! | E | 95% scan / 5% insert |
//! | F | 50% read / 50% read-modify-write |

use crate::Zipfian;
use rand::Rng;

/// The six core workloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum YcsbWorkloadKind {
    /// Update-heavy.
    A,
    /// Read-mostly.
    B,
    /// Read-only.
    C,
    /// Read-latest.
    D,
    /// Short-range scans.
    E,
    /// Read-modify-write.
    F,
}

/// One generated operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum YcsbOp {
    /// Point read.
    Read(u64),
    /// Full-record update.
    Update(u64, Vec<u8>),
    /// Insert of a new record.
    Insert(u64, Vec<u8>),
    /// Range scan of `len` records from `start`.
    Scan(u64, usize),
    /// Read-modify-write.
    ReadModifyWrite(u64, Vec<u8>),
}

impl YcsbOp {
    /// True for operations that mutate.
    pub fn is_write(&self) -> bool {
        !matches!(self, YcsbOp::Read(_) | YcsbOp::Scan(_, _))
    }
}

/// The workload generator.
#[derive(Clone, Debug)]
pub struct YcsbWorkload {
    kind: YcsbWorkloadKind,
    zipf: Zipfian,
    record_count: u64,
    inserted: u64,
    value_size: usize,
}

impl YcsbWorkload {
    /// A workload over `record_count` preloaded records with Zipfian
    /// skew `theta` and `value_size`-byte values.
    pub fn new(kind: YcsbWorkloadKind, record_count: u64, theta: f64, value_size: usize) -> Self {
        YcsbWorkload {
            kind,
            zipf: Zipfian::new(record_count as usize, theta),
            record_count,
            inserted: 0,
            value_size,
        }
    }

    /// Keys to preload before running the operation stream.
    pub fn preload_keys(&self) -> impl Iterator<Item = u64> {
        0..self.record_count
    }

    /// The value payload for preloading/updates.
    pub fn value<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<u8> {
        let mut v = vec![0u8; self.value_size];
        rng.fill(&mut v[..]);
        v
    }

    fn key<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match self.kind {
            // Workload D reads the *latest* keys.
            YcsbWorkloadKind::D => {
                let newest = self.record_count + self.inserted;
                let back = self.zipf.sample(rng) as u64;
                newest.saturating_sub(back + 1)
            }
            _ => self.zipf.sample(rng) as u64,
        }
    }

    /// Generates the next operation.
    pub fn next_op<R: Rng + ?Sized>(&mut self, rng: &mut R) -> YcsbOp {
        let p: f64 = rng.gen();
        match self.kind {
            YcsbWorkloadKind::A => {
                if p < 0.5 {
                    YcsbOp::Read(self.key(rng))
                } else {
                    YcsbOp::Update(self.key(rng), self.value(rng))
                }
            }
            YcsbWorkloadKind::B => {
                if p < 0.95 {
                    YcsbOp::Read(self.key(rng))
                } else {
                    YcsbOp::Update(self.key(rng), self.value(rng))
                }
            }
            YcsbWorkloadKind::C => YcsbOp::Read(self.key(rng)),
            YcsbWorkloadKind::D => {
                if p < 0.95 {
                    YcsbOp::Read(self.key(rng))
                } else {
                    self.inserted += 1;
                    YcsbOp::Insert(self.record_count + self.inserted - 1, self.value(rng))
                }
            }
            YcsbWorkloadKind::E => {
                if p < 0.95 {
                    let len = rng.gen_range(1..=100);
                    YcsbOp::Scan(self.key(rng), len)
                } else {
                    self.inserted += 1;
                    YcsbOp::Insert(self.record_count + self.inserted - 1, self.value(rng))
                }
            }
            YcsbWorkloadKind::F => {
                if p < 0.5 {
                    YcsbOp::Read(self.key(rng))
                } else {
                    YcsbOp::ReadModifyWrite(self.key(rng), self.value(rng))
                }
            }
        }
    }

    /// Generates a batch of `n` operations.
    pub fn batch<R: Rng + ?Sized>(&mut self, n: usize, rng: &mut R) -> Vec<YcsbOp> {
        (0..n).map(|_| self.next_op(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn mix(kind: YcsbWorkloadKind) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(1);
        let mut w = YcsbWorkload::new(kind, 1000, 0.99, 16);
        let ops = w.batch(10_000, &mut rng);
        let writes = ops.iter().filter(|o| o.is_write()).count() as f64 / ops.len() as f64;
        let scans = ops
            .iter()
            .filter(|o| matches!(o, YcsbOp::Scan(_, _)))
            .count() as f64
            / ops.len() as f64;
        (writes, scans)
    }

    #[test]
    fn workload_mixes_match_spec() {
        let (wa, _) = mix(YcsbWorkloadKind::A);
        assert!((wa - 0.5).abs() < 0.03, "A writes {wa}");
        let (wb, _) = mix(YcsbWorkloadKind::B);
        assert!((wb - 0.05).abs() < 0.02, "B writes {wb}");
        let (wc, _) = mix(YcsbWorkloadKind::C);
        assert_eq!(wc, 0.0);
        let (_, se) = mix(YcsbWorkloadKind::E);
        assert!((se - 0.95).abs() < 0.02, "E scans {se}");
        let (wf, _) = mix(YcsbWorkloadKind::F);
        assert!((wf - 0.5).abs() < 0.03, "F writes {wf}");
    }

    #[test]
    fn inserts_use_fresh_keys() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut w = YcsbWorkload::new(YcsbWorkloadKind::D, 100, 0.9, 8);
        let mut insert_keys = Vec::new();
        for _ in 0..5_000 {
            if let YcsbOp::Insert(k, _) = w.next_op(&mut rng) {
                insert_keys.push(k);
            }
        }
        assert!(!insert_keys.is_empty());
        let mut sorted = insert_keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), insert_keys.len(), "insert keys must be unique");
        assert!(insert_keys.iter().all(|&k| k >= 100));
    }

    #[test]
    fn keys_within_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut w = YcsbWorkload::new(YcsbWorkloadKind::A, 50, 0.99, 8);
        for _ in 0..1000 {
            match w.next_op(&mut rng) {
                YcsbOp::Read(k) | YcsbOp::Update(k, _) => assert!(k < 50),
                _ => {}
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut w = YcsbWorkload::new(YcsbWorkloadKind::A, 100, 0.99, 8);
            w.batch(100, &mut rng)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
