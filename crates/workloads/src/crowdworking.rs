//! The multi-platform crowdworking workload (paper §2.3, §5).
//!
//! A stream of task completions: Zipf-popular workers splitting time
//! across platforms, with hours drawn so a tunable fraction of workers
//! pushes against the FLSA bound (the interesting regime for regulation
//! enforcement).

use crate::Zipfian;
use rand::Rng;

/// One completed task — the paper's §5 update: "(task completed, time
/// spent, requester, platform)".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskCompletion {
    /// Task id.
    pub id: u64,
    /// Worker (data producer & owner).
    pub worker: String,
    /// Platform that brokered the task (data manager).
    pub platform: usize,
    /// Requester who posted the task.
    pub requester: String,
    /// Hours worked (1–8).
    pub hours: u64,
    /// Completion timestamp (seconds).
    pub ts: u64,
}

/// Generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct CrowdworkingConfig {
    /// Worker population.
    pub workers: usize,
    /// Number of platforms.
    pub platforms: usize,
    /// Requester population.
    pub requesters: usize,
    /// Worker-popularity skew (θ): busy workers complete most tasks and
    /// are the ones that hit the 40-hour bound.
    pub worker_skew: f64,
    /// Mean seconds between consecutive completions.
    pub mean_interarrival: u64,
}

impl Default for CrowdworkingConfig {
    fn default() -> Self {
        CrowdworkingConfig {
            workers: 100,
            platforms: 2,
            requesters: 50,
            worker_skew: 0.9,
            mean_interarrival: 3600,
        }
    }
}

/// The workload generator.
#[derive(Clone, Debug)]
pub struct CrowdworkingWorkload {
    /// Configuration in force.
    pub config: CrowdworkingConfig,
    worker_zipf: Zipfian,
    next_id: u64,
    clock: u64,
}

impl CrowdworkingWorkload {
    /// Creates a generator.
    pub fn new(config: CrowdworkingConfig) -> Self {
        CrowdworkingWorkload {
            worker_zipf: Zipfian::new(config.workers, config.worker_skew),
            config,
            next_id: 0,
            clock: 0,
        }
    }

    /// Generates the next task completion.
    pub fn next_task<R: Rng + ?Sized>(&mut self, rng: &mut R) -> TaskCompletion {
        self.next_id += 1;
        // Exponential-ish interarrival via geometric sampling.
        self.clock += 1 + rng.gen_range(0..=2 * self.config.mean_interarrival);
        TaskCompletion {
            id: self.next_id,
            worker: format!("worker-{}", self.worker_zipf.sample(rng)),
            platform: rng.gen_range(0..self.config.platforms),
            requester: format!("requester-{}", rng.gen_range(0..self.config.requesters)),
            hours: rng.gen_range(1..=8),
            ts: self.clock,
        }
    }

    /// Generates a batch of `n` completions (timestamps increasing).
    pub fn batch<R: Rng + ?Sized>(&mut self, n: usize, rng: &mut R) -> Vec<TaskCompletion> {
        (0..n).map(|_| self.next_task(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use std::collections::HashMap;

    #[test]
    fn tasks_are_well_formed_and_ordered() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut w = CrowdworkingWorkload::new(CrowdworkingConfig::default());
        let tasks = w.batch(500, &mut rng);
        let mut last = 0;
        for t in &tasks {
            assert!(t.hours >= 1 && t.hours <= 8);
            assert!(t.platform < 2);
            assert!(t.ts > last);
            last = t.ts;
        }
    }

    #[test]
    fn busy_workers_dominate() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut w = CrowdworkingWorkload::new(CrowdworkingConfig {
            workers: 50,
            worker_skew: 0.95,
            ..Default::default()
        });
        let tasks = w.batch(5000, &mut rng);
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for t in &tasks {
            *counts.entry(t.worker.as_str()).or_default() += 1;
        }
        let max = counts.values().max().copied().unwrap();
        assert!(max > 5000 / 50 * 3, "hottest worker should be ≫ uniform share, got {max}");
    }

    #[test]
    fn workers_use_multiple_platforms() {
        // The premise of the application: the same worker appears on
        // more than one platform.
        let mut rng = StdRng::seed_from_u64(3);
        let mut w = CrowdworkingWorkload::new(CrowdworkingConfig::default());
        let tasks = w.batch(2000, &mut rng);
        let mut platforms: HashMap<&str, std::collections::HashSet<usize>> = HashMap::new();
        for t in &tasks {
            platforms.entry(t.worker.as_str()).or_default().insert(t.platform);
        }
        let multi = platforms.values().filter(|s| s.len() > 1).count();
        assert!(multi > 10, "workers on multiple platforms: {multi}");
    }
}
