//! TPC-C-lite: the new-order transaction path.
//!
//! A reduced TPC-C preserving what matters for E10: per-warehouse
//! partitioning (→ shardable), the new-order item mix (1% remote
//! warehouse accesses in full TPC-C — configurable here as the
//! cross-shard knob), and order lines as the regulated updates.

use rand::Rng;

/// Scale configuration.
#[derive(Clone, Copy, Debug)]
pub struct TpccConfig {
    /// Number of warehouses (the TPC-C scale unit).
    pub warehouses: usize,
    /// Districts per warehouse.
    pub districts: usize,
    /// Customers per district.
    pub customers: usize,
    /// Item catalog size.
    pub items: usize,
    /// Probability an order line references a remote warehouse
    /// (TPC-C spec: 0.01).
    pub remote_prob: f64,
}

impl Default for TpccConfig {
    fn default() -> Self {
        TpccConfig { warehouses: 4, districts: 10, customers: 3000, items: 1000, remote_prob: 0.01 }
    }
}

/// One order line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OrderLine {
    /// Item ordered.
    pub item: u64,
    /// Supplying warehouse (usually the home warehouse).
    pub supply_warehouse: usize,
    /// Quantity (1–10).
    pub quantity: u64,
}

/// A new-order transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NewOrder {
    /// Transaction id.
    pub id: u64,
    /// Home warehouse.
    pub warehouse: usize,
    /// District within the warehouse.
    pub district: usize,
    /// Ordering customer.
    pub customer: u64,
    /// 5–15 order lines.
    pub lines: Vec<OrderLine>,
    /// Logical timestamp.
    pub ts: u64,
}

impl NewOrder {
    /// Warehouses this transaction touches (home + remote suppliers).
    pub fn touched_warehouses(&self) -> Vec<usize> {
        let mut ws = vec![self.warehouse];
        for l in &self.lines {
            if !ws.contains(&l.supply_warehouse) {
                ws.push(l.supply_warehouse);
            }
        }
        ws.sort_unstable();
        ws
    }

    /// True iff any line supplies from a remote warehouse.
    pub fn is_cross_warehouse(&self) -> bool {
        self.lines.iter().any(|l| l.supply_warehouse != self.warehouse)
    }

    /// Total quantity across lines (the regulated aggregate in E10's
    /// credit-limit constraint).
    pub fn total_quantity(&self) -> u64 {
        self.lines.iter().map(|l| l.quantity).sum()
    }
}

/// The new-order generator.
#[derive(Clone, Debug)]
pub struct TpccWorkload {
    /// The configuration in force.
    pub config: TpccConfig,
    next_id: u64,
    clock: u64,
}

impl TpccWorkload {
    /// Creates a generator.
    pub fn new(config: TpccConfig) -> Self {
        TpccWorkload { config, next_id: 0, clock: 0 }
    }

    /// Generates the next new-order transaction.
    pub fn next_order<R: Rng + ?Sized>(&mut self, rng: &mut R) -> NewOrder {
        self.next_id += 1;
        self.clock += rng.gen_range(1..=100);
        let warehouse = rng.gen_range(0..self.config.warehouses);
        let n_lines = rng.gen_range(5..=15);
        let lines = (0..n_lines)
            .map(|_| {
                let remote = self.config.warehouses > 1 && rng.gen::<f64>() < self.config.remote_prob;
                let supply_warehouse = if remote {
                    // Any warehouse other than home.
                    let mut w = rng.gen_range(0..self.config.warehouses - 1);
                    if w >= warehouse {
                        w += 1;
                    }
                    w
                } else {
                    warehouse
                };
                OrderLine {
                    item: rng.gen_range(0..self.config.items as u64),
                    supply_warehouse,
                    quantity: rng.gen_range(1..=10),
                }
            })
            .collect();
        NewOrder {
            id: self.next_id,
            warehouse,
            district: rng.gen_range(0..self.config.districts),
            customer: rng.gen_range(0..self.config.customers as u64),
            lines,
            ts: self.clock,
        }
    }

    /// Generates a batch of `n` orders.
    pub fn batch<R: Rng + ?Sized>(&mut self, n: usize, rng: &mut R) -> Vec<NewOrder> {
        (0..n).map(|_| self.next_order(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn orders_are_well_formed() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut w = TpccWorkload::new(TpccConfig::default());
        let mut last_ts = 0;
        for _ in 0..1000 {
            let o = w.next_order(&mut rng);
            assert!(o.warehouse < 4);
            assert!(o.district < 10);
            assert!((5..=15).contains(&o.lines.len()));
            assert!(o.lines.iter().all(|l| l.quantity >= 1 && l.quantity <= 10));
            assert!(o.ts > last_ts);
            last_ts = o.ts;
        }
    }

    #[test]
    fn remote_probability_controls_cross_warehouse_rate() {
        let mut rng = StdRng::seed_from_u64(2);
        let rate = |p: f64, rng: &mut StdRng| {
            let mut w = TpccWorkload::new(TpccConfig { remote_prob: p, ..Default::default() });
            let orders = w.batch(2000, rng);
            orders.iter().filter(|o| o.is_cross_warehouse()).count() as f64 / 2000.0
        };
        assert_eq!(rate(0.0, &mut rng), 0.0);
        let r01 = rate(0.01, &mut rng);
        // ~10 lines/order → P(cross) ≈ 1-(0.99)^10 ≈ 0.096.
        assert!(r01 > 0.04 && r01 < 0.2, "rate {r01}");
        let r50 = rate(0.5, &mut rng);
        assert!(r50 > 0.9, "rate {r50}");
    }

    #[test]
    fn touched_warehouses_sorted_unique() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut w = TpccWorkload::new(TpccConfig { remote_prob: 0.5, ..Default::default() });
        for _ in 0..200 {
            let o = w.next_order(&mut rng);
            let t = o.touched_warehouses();
            let mut s = t.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(t, s);
            assert!(t.contains(&o.warehouse));
        }
    }

    #[test]
    fn single_warehouse_never_cross() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut w = TpccWorkload::new(TpccConfig {
            warehouses: 1,
            remote_prob: 0.9,
            ..Default::default()
        });
        assert!(w.batch(500, &mut rng).iter().all(|o| !o.is_cross_warehouse()));
    }
}
