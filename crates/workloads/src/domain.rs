//! Domain workloads for the remaining Figure-1 applications:
//! sustainability certification (a), conference registration (b), and
//! supply-chain shipments (d).

use rand::Rng;

/// An environmental-statistics update (Fig. 1a): an organization
/// reports a change in a regulated metric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EmissionReport {
    /// Report id.
    pub id: u64,
    /// Reporting organization.
    pub org: String,
    /// Metric name ("co2-tons", "kwh", …).
    pub metric: &'static str,
    /// Amount added this period.
    pub amount: u64,
    /// Reporting timestamp.
    pub ts: u64,
}

/// Generates a stream of emission reports for `orgs` organizations;
/// amounts are small enough that most orgs stay within `bound` but a
/// tunable fraction exceed it.
pub fn emission_stream<R: Rng + ?Sized>(
    orgs: usize,
    reports: usize,
    bound: u64,
    rng: &mut R,
) -> Vec<EmissionReport> {
    let _span = prever_obs::span!("workloads.emission_stream");
    let metrics = ["co2-tons", "kwh", "water-m3"];
    let mut clock = 0u64;
    let stream: Vec<EmissionReport> = (0..reports)
        .map(|i| {
            clock += rng.gen_range(100..10_000);
            EmissionReport {
                id: i as u64 + 1,
                org: format!("org-{}", rng.gen_range(0..orgs)),
                metric: metrics[rng.gen_range(0..metrics.len())],
                amount: rng.gen_range(1..=(bound / 4).max(2)),
                ts: clock,
            }
        })
        .collect();
    prever_obs::counter("workloads.emissions.generated").add(stream.len() as u64);
    prever_obs::log!(Debug, "generated {} emission reports across {orgs} orgs", stream.len());
    stream
}

/// A conference registration attempt (Fig. 1b).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Registration {
    /// The participant's real identity (seen only by the credential
    /// authority).
    pub identity: String,
    /// Public alias chosen for the attendee list.
    pub alias: String,
    /// Whether this person actually holds a valid vaccination record.
    pub vaccinated: bool,
    /// Registration timestamp.
    pub ts: u64,
}

/// Generates `n` registration attempts, `vaccinated_fraction` of which
/// hold valid credentials.
pub fn registration_stream<R: Rng + ?Sized>(
    n: usize,
    vaccinated_fraction: f64,
    rng: &mut R,
) -> Vec<Registration> {
    let _span = prever_obs::span!("workloads.registration_stream");
    let mut clock = 0u64;
    let stream: Vec<Registration> = (0..n)
        .map(|i| {
            clock += rng.gen_range(1..600);
            Registration {
                identity: format!("person-{i:04}"),
                alias: format!("attendee-{:06x}", rng.gen::<u32>() & 0xff_ffff),
                vaccinated: rng.gen::<f64>() < vaccinated_fraction,
                ts: clock,
            }
        })
        .collect();
    prever_obs::counter("workloads.registrations.generated").add(stream.len() as u64);
    prever_obs::log!(Debug, "generated {} registration attempts", stream.len());
    stream
}

/// A supply-chain shipment between enterprises (Fig. 1d).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Shipment {
    /// Shipment id.
    pub id: u64,
    /// Sending enterprise.
    pub from: usize,
    /// Receiving enterprise.
    pub to: usize,
    /// Units shipped.
    pub quantity: u64,
    /// Shipment timestamp.
    pub ts: u64,
}

/// Generates a shipment stream across `enterprises` parties, quantities
/// in `1..=max_quantity`.
pub fn shipment_stream<R: Rng + ?Sized>(
    enterprises: usize,
    shipments: usize,
    max_quantity: u64,
    rng: &mut R,
) -> Vec<Shipment> {
    assert!(enterprises >= 2);
    let _span = prever_obs::span!("workloads.shipment_stream");
    let mut clock = 0u64;
    let stream: Vec<Shipment> = (0..shipments)
        .map(|i| {
            clock += rng.gen_range(60..3600);
            let from = rng.gen_range(0..enterprises);
            let mut to = rng.gen_range(0..enterprises - 1);
            if to >= from {
                to += 1;
            }
            Shipment {
                id: i as u64 + 1,
                from,
                to,
                quantity: rng.gen_range(1..=max_quantity),
                ts: clock,
            }
        })
        .collect();
    prever_obs::counter("workloads.shipments.generated").add(stream.len() as u64);
    prever_obs::log!(Debug, "generated {} shipments across {enterprises} enterprises", stream.len());
    stream
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn emission_stream_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let reports = emission_stream(5, 200, 100, &mut rng);
        assert_eq!(reports.len(), 200);
        assert!(reports.windows(2).all(|w| w[0].ts < w[1].ts));
        assert!(reports.iter().all(|r| r.amount >= 1 && r.amount <= 25));
        let orgs: std::collections::HashSet<&str> =
            reports.iter().map(|r| r.org.as_str()).collect();
        assert!(orgs.len() > 2);
    }

    #[test]
    fn registration_stream_fraction() {
        let mut rng = StdRng::seed_from_u64(2);
        let regs = registration_stream(1000, 0.8, &mut rng);
        let vaccinated = regs.iter().filter(|r| r.vaccinated).count();
        assert!((vaccinated as f64 / 1000.0 - 0.8).abs() < 0.05);
        // Aliases don't embed identity.
        assert!(regs.iter().all(|r| !r.alias.contains("person")));
    }

    #[test]
    fn shipments_never_self_loop() {
        let mut rng = StdRng::seed_from_u64(3);
        let ships = shipment_stream(4, 500, 50, &mut rng);
        assert!(ships.iter().all(|s| s.from != s.to));
        assert!(ships.iter().all(|s| s.from < 4 && s.to < 4));
    }
}
