//! Private updates on public data: k-anonymous write batches.
//!
//! RC3's second gap: "while PIR techniques are designed primarily to
//! support private retrieval of information, in PReVer, these
//! techniques need to be extended to support updates." The paper's
//! conference application makes the need concrete — the attendance list
//! is public, but *which* registration an update corresponds to should
//! not be linkable to the submitting participant.
//!
//! The construction here is the deployable baseline: a writer hides its
//! real write among `k − 1` dummy writes sampled uniformly from the
//! database, shuffles the batch, and submits it. A dummy write rewrites
//! a record with its current value (a no-op in content but
//! indistinguishable on the wire), so the server's posterior over "which
//! position changed" has support of size `k`. The anonymity set size is
//! the privacy parameter the E5 bench sweeps.

use crate::xor::XorServer;
use crate::{PirError, Result};
use rand::seq::SliceRandom;
use rand::Rng;

/// One write in a batch: position and new content.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Write {
    /// Target record index.
    pub index: usize,
    /// New record content.
    pub record: Vec<u8>,
}

/// A k-anonymous write batch as submitted to the server(s).
#[derive(Clone, Debug)]
pub struct WriteBatch {
    writes: Vec<Write>,
}

impl WriteBatch {
    /// Builds a batch hiding `real` among `k − 1` dummy rewrites sampled
    /// from `current` (the public database contents).
    ///
    /// `k` must be ≥ 1 and ≤ the database size.
    pub fn build<R: Rng + ?Sized>(
        real: Write,
        current: &[Vec<u8>],
        k: usize,
        rng: &mut R,
    ) -> Result<Self> {
        let n = current.len();
        if k == 0 {
            return Err(PirError::BadBatch("k must be at least 1"));
        }
        if k > n {
            return Err(PirError::BadBatch("k exceeds database size"));
        }
        if real.index >= n {
            return Err(PirError::IndexOutOfRange { index: real.index, size: n });
        }
        // Sample k − 1 distinct dummy positions ≠ real.index.
        let mut positions: Vec<usize> = (0..n).filter(|&i| i != real.index).collect();
        positions.shuffle(rng);
        let mut writes: Vec<Write> = positions
            .into_iter()
            .take(k - 1)
            .map(|i| Write { index: i, record: current[i].clone() })
            .collect();
        writes.push(real);
        writes.shuffle(rng);
        Ok(WriteBatch { writes })
    }

    /// The batch's writes in submission order.
    pub fn writes(&self) -> &[Write] {
        &self.writes
    }

    /// Anonymity-set size.
    pub fn k(&self) -> usize {
        self.writes.len()
    }

    /// Applies the batch to a server replica.
    pub fn apply(&self, server: &mut XorServer) -> Result<()> {
        for w in &self.writes {
            server.write(w.index, w.record.clone())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn records(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("rec-{i:03}-xx").into_bytes()).collect()
    }

    #[test]
    fn batch_contains_real_write_and_k_minus_1_dummies() {
        let mut rng = StdRng::seed_from_u64(1);
        let db = records(20);
        let real = Write { index: 7, record: b"rec-007-NW".to_vec() };
        let batch = WriteBatch::build(real.clone(), &db, 5, &mut rng).unwrap();
        assert_eq!(batch.k(), 5);
        assert_eq!(batch.writes().iter().filter(|w| **w == real).count(), 1);
        // Dummies rewrite current content.
        for w in batch.writes() {
            if w.index != 7 {
                assert_eq!(w.record, db[w.index]);
            }
        }
        // Distinct positions.
        let mut idx: Vec<usize> = batch.writes().iter().map(|w| w.index).collect();
        idx.sort_unstable();
        idx.dedup();
        assert_eq!(idx.len(), 5);
    }

    #[test]
    fn applying_batch_changes_only_the_real_record() {
        let mut rng = StdRng::seed_from_u64(2);
        let db = records(10);
        let size = db[0].len();
        let mut server = XorServer::new(db.clone(), size).unwrap();
        let real = Write { index: 3, record: b"rec-003-NW".to_vec() };
        let batch = WriteBatch::build(real, &db, 4, &mut rng).unwrap();
        batch.apply(&mut server).unwrap();
        for (i, original) in db.iter().enumerate() {
            let expected = if i == 3 { b"rec-003-NW".to_vec() } else { original.clone() };
            assert_eq!(server.record(i).unwrap(), expected.as_slice(), "record {i}");
        }
    }

    #[test]
    fn batch_order_is_shuffled() {
        // The real write must not systematically be last.
        let mut rng = StdRng::seed_from_u64(3);
        let db = records(30);
        let mut last_count = 0;
        for _ in 0..50 {
            let real = Write { index: 4, record: b"rec-004-ZZ".to_vec() };
            let batch = WriteBatch::build(real.clone(), &db, 10, &mut rng).unwrap();
            if batch.writes().last() == Some(&real) {
                last_count += 1;
            }
        }
        assert!(last_count < 20, "real write placed last {last_count}/50 times");
    }

    #[test]
    fn parameter_validation() {
        let mut rng = StdRng::seed_from_u64(4);
        let db = records(5);
        let real = Write { index: 0, record: db[0].clone() };
        assert!(matches!(
            WriteBatch::build(real.clone(), &db, 0, &mut rng),
            Err(PirError::BadBatch(_))
        ));
        assert!(matches!(
            WriteBatch::build(real.clone(), &db, 6, &mut rng),
            Err(PirError::BadBatch(_))
        ));
        let oob = Write { index: 9, record: db[0].clone() };
        assert!(matches!(
            WriteBatch::build(oob, &db, 2, &mut rng),
            Err(PirError::IndexOutOfRange { .. })
        ));
    }

    #[test]
    fn k_equals_one_is_a_plain_write() {
        let mut rng = StdRng::seed_from_u64(5);
        let db = records(5);
        let real = Write { index: 2, record: b"rec-002-!!".to_vec() };
        let batch = WriteBatch::build(real.clone(), &db, 1, &mut rng).unwrap();
        assert_eq!(batch.writes(), &[real]);
    }
}
