//! # prever-pir
//!
//! Private information retrieval — and private *updates* — over public
//! databases.
//!
//! Research Challenge 3: *"Enable a data manager to verify updates
//! against constraints over public data and execute the updates with
//! sound privacy guarantees on the updates."* The paper notes two gaps
//! in classic PIR it wants closed: computational capability beyond
//! single-item retrieval, and update support. This crate provides:
//!
//! * [`xor`] — two-server information-theoretic XOR PIR (Chor et al.),
//!   the fast path when two non-colluding servers host replicas;
//! * [`matrix`] — the square-root-communication matrix layout over the
//!   same two-server scheme (upload O(√n) instead of O(n));
//! * [`cpir`] — single-server computational PIR over Paillier, the
//!   paper's "recent attempts to improve the performance of PIR"
//!   lineage (XPIR/SealPIR use lattice HE; Paillier exercises the same
//!   homomorphic-dot-product structure with the crypto we built);
//! * [`private_update`] — the update extension: k-anonymous private
//!   writes, where the real write hides inside a batch of `k − 1`
//!   indistinguishable dummy writes (the conference-participation
//!   application: registering reveals *that* someone registered, not
//!   *who* among the batch).
//!
//! All servers report operation counts so E5 can chart query/update cost
//! against database size.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpir;
pub mod matrix;
pub mod private_update;
pub mod xor;

/// Errors from the PIR layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PirError {
    /// Index beyond the database size.
    IndexOutOfRange {
        /// Requested index.
        index: usize,
        /// Database size.
        size: usize,
    },
    /// Record length did not match the database's record size.
    RecordSizeMismatch {
        /// Provided length.
        got: usize,
        /// Required length.
        expected: usize,
    },
    /// Query vector malformed (wrong length).
    MalformedQuery,
    /// Underlying cryptographic failure.
    Crypto(prever_crypto::CryptoError),
    /// Batch parameters invalid (k larger than database, zero k…).
    BadBatch(&'static str),
}

impl From<prever_crypto::CryptoError> for PirError {
    fn from(e: prever_crypto::CryptoError) -> Self {
        PirError::Crypto(e)
    }
}

impl std::fmt::Display for PirError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PirError::IndexOutOfRange { index, size } => {
                write!(f, "index {index} out of range for database of {size}")
            }
            PirError::RecordSizeMismatch { got, expected } => {
                write!(f, "record of {got} bytes, database stores {expected}")
            }
            PirError::MalformedQuery => write!(f, "malformed query vector"),
            PirError::Crypto(e) => write!(f, "crypto error: {e}"),
            PirError::BadBatch(w) => write!(f, "bad batch: {w}"),
        }
    }
}

impl std::error::Error for PirError {}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, PirError>;
