//! Two-server information-theoretic XOR PIR (Chor–Goldreich–Kushilevitz–
//! Sudan).
//!
//! The client picks a uniformly random subset `S ⊆ [n]` and sends its
//! characteristic vector to server 1 and `S ⊕ {i}` to server 2. Each
//! server XORs the selected records; the client XORs the two responses
//! to recover record `i`. Either server alone sees a uniformly random
//! subset — information-theoretic privacy as long as the servers do not
//! collude.

use crate::{PirError, Result};
use rand::Rng;

/// One replica server of the 2-server scheme.
#[derive(Clone, Debug)]
pub struct XorServer {
    records: Vec<Vec<u8>>,
    record_size: usize,
    /// XOR operations performed (cost accounting for E5).
    pub ops: u64,
}

impl XorServer {
    /// Builds a server over `records`, all of `record_size` bytes.
    pub fn new(records: Vec<Vec<u8>>, record_size: usize) -> Result<Self> {
        for r in &records {
            if r.len() != record_size {
                return Err(PirError::RecordSizeMismatch { got: r.len(), expected: record_size });
            }
        }
        Ok(XorServer { records, record_size, ops: 0 })
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Record size in bytes.
    pub fn record_size(&self) -> usize {
        self.record_size
    }

    /// Answers a query: XOR of the records whose bit is set.
    pub fn answer(&mut self, query: &[bool]) -> Result<Vec<u8>> {
        if query.len() != self.records.len() {
            return Err(PirError::MalformedQuery);
        }
        let mut out = vec![0u8; self.record_size];
        for (bit, record) in query.iter().zip(&self.records) {
            if *bit {
                self.ops += 1;
                for (o, b) in out.iter_mut().zip(record) {
                    *o ^= b;
                }
            }
        }
        Ok(out)
    }

    /// Applies a (public) write: replaces record `index`.
    pub fn write(&mut self, index: usize, record: Vec<u8>) -> Result<()> {
        if index >= self.records.len() {
            return Err(PirError::IndexOutOfRange { index, size: self.records.len() });
        }
        if record.len() != self.record_size {
            return Err(PirError::RecordSizeMismatch {
                got: record.len(),
                expected: self.record_size,
            });
        }
        self.records[index] = record;
        Ok(())
    }

    /// Appends a record (public append; both replicas must apply it).
    pub fn append(&mut self, record: Vec<u8>) -> Result<usize> {
        if record.len() != self.record_size {
            return Err(PirError::RecordSizeMismatch {
                got: record.len(),
                expected: self.record_size,
            });
        }
        self.records.push(record);
        Ok(self.records.len() - 1)
    }

    /// Direct (non-private) read, for verification in tests.
    pub fn record(&self, index: usize) -> Option<&[u8]> {
        self.records.get(index).map(|r| r.as_slice())
    }
}

/// A client query: the two vectors to send to the two servers.
#[derive(Clone, Debug)]
pub struct XorQuery {
    /// Vector for server 1 (random subset).
    pub q1: Vec<bool>,
    /// Vector for server 2 (subset ⊕ target index).
    pub q2: Vec<bool>,
}

impl XorQuery {
    /// Builds a query for record `index` in a database of `n` records.
    pub fn build<R: Rng + ?Sized>(index: usize, n: usize, rng: &mut R) -> Result<Self> {
        if index >= n {
            return Err(PirError::IndexOutOfRange { index, size: n });
        }
        let q1: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
        let mut q2 = q1.clone();
        q2[index] = !q2[index];
        Ok(XorQuery { q1, q2 })
    }

    /// Combines the two server responses into the requested record.
    pub fn combine(&self, r1: &[u8], r2: &[u8]) -> Result<Vec<u8>> {
        if r1.len() != r2.len() {
            return Err(PirError::MalformedQuery);
        }
        Ok(r1.iter().zip(r2).map(|(a, b)| a ^ b).collect())
    }
}

/// End-to-end convenience: privately reads record `index` from the two
/// replicas.
pub fn retrieve<R: Rng + ?Sized>(
    s1: &mut XorServer,
    s2: &mut XorServer,
    index: usize,
    rng: &mut R,
) -> Result<Vec<u8>> {
    let query = XorQuery::build(index, s1.len(), rng)?;
    let r1 = s1.answer(&query.q1)?;
    let r2 = s2.answer(&query.q2)?;
    query.combine(&r1, &r2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn db(n: usize) -> (XorServer, XorServer) {
        let records: Vec<Vec<u8>> = (0..n)
            .map(|i| format!("attendee-{i:04}").into_bytes())
            .collect();
        let size = records[0].len();
        (
            XorServer::new(records.clone(), size).unwrap(),
            XorServer::new(records, size).unwrap(),
        )
    }

    #[test]
    fn retrieves_every_record() {
        let mut rng = StdRng::seed_from_u64(1);
        let (mut s1, mut s2) = db(17);
        for i in 0..17 {
            let got = retrieve(&mut s1, &mut s2, i, &mut rng).unwrap();
            assert_eq!(got, format!("attendee-{i:04}").into_bytes());
        }
    }

    #[test]
    fn rejects_bad_indices_and_sizes() {
        let mut rng = StdRng::seed_from_u64(2);
        let (mut s1, mut s2) = db(4);
        assert!(matches!(
            retrieve(&mut s1, &mut s2, 4, &mut rng),
            Err(PirError::IndexOutOfRange { .. })
        ));
        assert!(matches!(
            XorServer::new(vec![vec![1, 2], vec![3]], 2),
            Err(PirError::RecordSizeMismatch { .. })
        ));
        assert!(matches!(s1.answer(&[true; 3]), Err(PirError::MalformedQuery)));
    }

    #[test]
    fn queries_are_individually_uniform() {
        // Each single server's view must not determine the target: build
        // many queries for the same index and check the vector for
        // server 1 varies (it is a uniform random subset).
        let mut rng = StdRng::seed_from_u64(3);
        let q1s: Vec<Vec<bool>> = (0..16)
            .map(|_| XorQuery::build(5, 32, &mut rng).unwrap().q1)
            .collect();
        let distinct: std::collections::HashSet<&Vec<bool>> = q1s.iter().collect();
        assert!(distinct.len() > 10, "server-1 views should be near-unique");
        // And q1/q2 differ exactly at the target.
        let q = XorQuery::build(5, 32, &mut rng).unwrap();
        let diffs: Vec<usize> =
            (0..32).filter(|&i| q.q1[i] != q.q2[i]).collect();
        assert_eq!(diffs, vec![5]);
    }

    #[test]
    fn updates_are_visible_to_subsequent_queries() {
        let mut rng = StdRng::seed_from_u64(4);
        let (mut s1, mut s2) = db(8);
        let new = b"updated-r-3!!".to_vec();
        s1.write(3, new.clone()).unwrap();
        s2.write(3, new.clone()).unwrap();
        assert_eq!(retrieve(&mut s1, &mut s2, 3, &mut rng).unwrap(), new);
        // Other records untouched.
        assert_eq!(
            retrieve(&mut s1, &mut s2, 4, &mut rng).unwrap(),
            "attendee-0004".to_string().into_bytes()
        );
    }

    #[test]
    fn append_grows_database() {
        let mut rng = StdRng::seed_from_u64(5);
        let (mut s1, mut s2) = db(4);
        let rec = b"attendee-9999".to_vec();
        let i1 = s1.append(rec.clone()).unwrap();
        let i2 = s2.append(rec.clone()).unwrap();
        assert_eq!(i1, i2);
        assert_eq!(retrieve(&mut s1, &mut s2, i1, &mut rng).unwrap(), rec);
    }

    #[test]
    fn server_work_scales_with_subset_size() {
        let mut rng = StdRng::seed_from_u64(6);
        let (mut s1, mut s2) = db(64);
        retrieve(&mut s1, &mut s2, 0, &mut rng).unwrap();
        // Expected subset size ≈ n/2.
        assert!(s1.ops > 16 && s1.ops < 48, "ops = {}", s1.ops);
    }
}
