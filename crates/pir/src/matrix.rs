//! Square-root-communication XOR PIR: the matrix layout.
//!
//! Classic communication balancing (Chor et al. §4): arrange `n`
//! records as a `rows × cols` matrix. The client's query selects a
//! random *row subset* (√n bits up instead of n); each server answers
//! with the XOR of the selected rows — a full matrix row (√n records)
//! down. The client XORs the responses to recover the target row and
//! picks its column. Total communication O(√n · record) instead of
//! O(n) upload — the practical-performance lever the paper's RC3
//! discussion ("many attempts to improve the performance of PIR")
//! refers to, at its simplest.

use crate::{PirError, Result};
use rand::Rng;

/// One replica server holding the matrix layout.
#[derive(Clone, Debug)]
pub struct MatrixServer {
    /// records\[row * cols + col\]
    records: Vec<Vec<u8>>,
    rows: usize,
    cols: usize,
    record_size: usize,
    /// Row-XOR operations performed.
    pub ops: u64,
}

impl MatrixServer {
    /// Builds a server over `records` padded up to a `rows × cols` grid
    /// (`cols = ceil(√n)`, zero-padded).
    pub fn new(mut records: Vec<Vec<u8>>, record_size: usize) -> Result<Self> {
        for r in &records {
            if r.len() != record_size {
                return Err(PirError::RecordSizeMismatch { got: r.len(), expected: record_size });
            }
        }
        if records.is_empty() {
            return Err(PirError::BadBatch("empty database"));
        }
        let n = records.len();
        let cols = (n as f64).sqrt().ceil() as usize;
        let rows = n.div_ceil(cols);
        records.resize(rows * cols, vec![0u8; record_size]);
        Ok(MatrixServer { records, rows, cols, record_size, ops: 0 })
    }

    /// Grid shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Answers a row-subset query with the XOR of the selected rows
    /// (one full row of `cols` records).
    pub fn answer(&mut self, row_query: &[bool]) -> Result<Vec<Vec<u8>>> {
        if row_query.len() != self.rows {
            return Err(PirError::MalformedQuery);
        }
        let mut out = vec![vec![0u8; self.record_size]; self.cols];
        for (row, selected) in row_query.iter().enumerate() {
            if !*selected {
                continue;
            }
            self.ops += 1;
            for (col, out_col) in out.iter_mut().enumerate() {
                let rec = &self.records[row * self.cols + col];
                for (o, b) in out_col.iter_mut().zip(rec) {
                    *o ^= b;
                }
            }
        }
        Ok(out)
    }

    /// Public write by flat index.
    pub fn write(&mut self, index: usize, record: Vec<u8>) -> Result<()> {
        if index >= self.rows * self.cols {
            return Err(PirError::IndexOutOfRange { index, size: self.rows * self.cols });
        }
        if record.len() != self.record_size {
            return Err(PirError::RecordSizeMismatch {
                got: record.len(),
                expected: self.record_size,
            });
        }
        self.records[index] = record;
        Ok(())
    }
}

/// A client query for flat index `index`.
#[derive(Clone, Debug)]
pub struct MatrixQuery {
    /// Row-subset vector for server 1.
    pub q1: Vec<bool>,
    /// Row-subset vector for server 2 (⊕ target row).
    pub q2: Vec<bool>,
    target_col: usize,
}

impl MatrixQuery {
    /// Builds a query against a `(rows, cols)` grid.
    pub fn build<R: Rng + ?Sized>(
        index: usize,
        rows: usize,
        cols: usize,
        rng: &mut R,
    ) -> Result<Self> {
        if index >= rows * cols {
            return Err(PirError::IndexOutOfRange { index, size: rows * cols });
        }
        let target_row = index / cols;
        let q1: Vec<bool> = (0..rows).map(|_| rng.gen()).collect();
        let mut q2 = q1.clone();
        q2[target_row] = !q2[target_row];
        Ok(MatrixQuery { q1, q2, target_col: index % cols })
    }

    /// Upload size in bits (both servers).
    pub fn upload_bits(&self) -> usize {
        self.q1.len() * 2
    }

    /// Combines the two servers' row answers into the target record.
    pub fn combine(&self, r1: &[Vec<u8>], r2: &[Vec<u8>]) -> Result<Vec<u8>> {
        if r1.len() != r2.len() || self.target_col >= r1.len() {
            return Err(PirError::MalformedQuery);
        }
        Ok(r1[self.target_col]
            .iter()
            .zip(&r2[self.target_col])
            .map(|(a, b)| a ^ b)
            .collect())
    }
}

/// End-to-end convenience: privately reads flat record `index`.
pub fn retrieve<R: Rng + ?Sized>(
    s1: &mut MatrixServer,
    s2: &mut MatrixServer,
    index: usize,
    rng: &mut R,
) -> Result<Vec<u8>> {
    let (rows, cols) = s1.shape();
    let query = MatrixQuery::build(index, rows, cols, rng)?;
    let r1 = s1.answer(&query.q1)?;
    let r2 = s2.answer(&query.q2)?;
    query.combine(&r1, &r2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn db(n: usize) -> (MatrixServer, MatrixServer) {
        let records: Vec<Vec<u8>> =
            (0..n).map(|i| format!("record-{i:05}").into_bytes()).collect();
        let size = records[0].len();
        (
            MatrixServer::new(records.clone(), size).unwrap(),
            MatrixServer::new(records, size).unwrap(),
        )
    }

    #[test]
    fn retrieves_every_record_including_padding_edge() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1usize, 5, 16, 17, 100] {
            let (mut s1, mut s2) = db(n);
            for i in [0, n / 2, n - 1] {
                let got = retrieve(&mut s1, &mut s2, i, &mut rng).unwrap();
                assert_eq!(got, format!("record-{i:05}").into_bytes(), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn shape_is_near_square() {
        let (s1, _) = db(100);
        assert_eq!(s1.shape(), (10, 10));
        let (s1, _) = db(17);
        let (rows, cols) = s1.shape();
        assert!(rows * cols >= 17);
        assert!(cols <= 5 && rows <= 5);
    }

    #[test]
    fn upload_is_square_root_of_database() {
        let mut rng = StdRng::seed_from_u64(2);
        let (s1, _) = db(10_000);
        let (rows, cols) = s1.shape();
        let q = MatrixQuery::build(5_000, rows, cols, &mut rng).unwrap();
        assert_eq!(q.upload_bits(), 200, "2·√10000 bits up, vs 20000 for flat XOR PIR");
    }

    #[test]
    fn single_server_view_is_a_random_row_subset() {
        let mut rng = StdRng::seed_from_u64(3);
        let (s1, _) = db(64);
        let (rows, cols) = s1.shape();
        // q1/q2 differ exactly at the target row.
        let q = MatrixQuery::build(20, rows, cols, &mut rng).unwrap();
        let diffs: Vec<usize> = (0..rows).filter(|&r| q.q1[r] != q.q2[r]).collect();
        assert_eq!(diffs, vec![20 / cols]);
    }

    #[test]
    fn writes_visible() {
        let mut rng = StdRng::seed_from_u64(4);
        let (mut s1, mut s2) = db(9);
        let new = b"record-XXXXX".to_vec();
        s1.write(4, new.clone()).unwrap();
        s2.write(4, new.clone()).unwrap();
        assert_eq!(retrieve(&mut s1, &mut s2, 4, &mut rng).unwrap(), new);
    }

    #[test]
    fn malformed_queries_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let (mut s1, _) = db(9);
        assert!(s1.answer(&[true; 99]).is_err());
        let (rows, cols) = s1.shape();
        assert!(MatrixQuery::build(500, rows, cols, &mut rng).is_err());
        assert!(MatrixServer::new(vec![], 8).is_err());
    }
}
