//! Single-server computational PIR over Paillier.
//!
//! The client sends a vector of ciphertexts — `Enc(1)` at the target
//! index, `Enc(0)` elsewhere. The server computes the homomorphic dot
//! product `Π cᵢ^{recordᵢ}`, which decrypts to the target record. The
//! server learns nothing under the DCR assumption; the cost is `n`
//! modular exponentiations per query, the linear-server-work baseline
//! that XPIR/SealPIR-style systems amortize (paper RC3 discussion).
//!
//! Records are `u64` values (e.g. packed attendance flags or record
//! pointers); wider records chunk across queries.

use crate::{PirError, Result};
use prever_crypto::bignum::BigUint;
use prever_crypto::paillier::{Ciphertext, PrivateKey, PublicKey};
use rand::Rng;
use std::sync::OnceLock;

/// Below this many nonzero exponentiation terms the dot product stays
/// sequential — thread spawn/join overhead outweighs the work.
///
/// Recalibrated from 64: at 96-bit test primes one term costs ~4 µs
/// (≈20 Montgomery muls) against ~20 µs of scoped-thread setup, so a
/// per-thread chunk needs ≥~100 terms before the spawn overhead drops
/// under 5%; production moduli only push the crossover lower, so 128
/// is conservative in the direction that never loses. Override with
/// `PREVER_PIR_PARALLEL_THRESHOLD` (see [`parallel_threshold`]).
const PARALLEL_THRESHOLD: usize = 128;

/// The effective sequential/parallel crossover:
/// `PREVER_PIR_PARALLEL_THRESHOLD` if set and parseable, else
/// [`PARALLEL_THRESHOLD`]. Read once per process.
fn parallel_threshold() -> usize {
    static T: OnceLock<usize> = OnceLock::new();
    *T.get_or_init(|| {
        std::env::var("PREVER_PIR_PARALLEL_THRESHOLD")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(PARALLEL_THRESHOLD)
    })
}

/// Worker threads for the parallel dot-product paths: `PREVER_PIR_THREADS`
/// if set to a positive integer, else `available_parallelism`. Read once
/// per process.
fn worker_threads() -> usize {
    static T: OnceLock<usize> = OnceLock::new();
    *T.get_or_init(|| {
        std::env::var("PREVER_PIR_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
            })
    })
}

/// The single PIR server.
#[derive(Clone, Debug)]
pub struct CpirServer {
    records: Vec<u64>,
    /// Modular exponentiations performed (cost accounting for E5).
    pub exp_ops: u64,
}

impl CpirServer {
    /// Builds the server over `records`.
    pub fn new(records: Vec<u64>) -> Self {
        CpirServer { records, exp_ops: 0 }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Public write.
    pub fn write(&mut self, index: usize, value: u64) -> Result<()> {
        if index >= self.records.len() {
            return Err(PirError::IndexOutOfRange { index, size: self.records.len() });
        }
        self.records[index] = value;
        Ok(())
    }

    /// Answers an encrypted query vector with the homomorphic dot
    /// product.
    ///
    /// The per-record exponentiations are independent, so above
    /// [`PARALLEL_THRESHOLD`] nonzero records the work is chunked
    /// across scoped threads, each folding its slice into a partial
    /// product; partials combine in chunk order, so the answer is
    /// identical to the sequential fold.
    pub fn answer(&mut self, pk: &PublicKey, query: &[Ciphertext]) -> Result<Ciphertext> {
        let _span = prever_obs::span!("pir.answer");
        if query.len() != self.records.len() {
            return Err(PirError::MalformedQuery);
        }
        // Π cᵢ^{rᵢ}  (skip zero records: cᵢ^0 = 1).
        let nonzero: Vec<(&Ciphertext, u64)> = query
            .iter()
            .zip(&self.records)
            .filter(|&(_, &r)| r != 0)
            .map(|(c, &r)| (c, r))
            .collect();
        self.exp_ops += nonzero.len() as u64;
        prever_obs::counter("pir.exp_ops").add(nonzero.len() as u64);
        prever_obs::counter("pir.queries").inc();
        if nonzero.is_empty() {
            // All-zero database: return Enc(0) deterministically derived
            // from the first query element times 0 — i.e. compute 0·c₀.
            return Ok(pk.mul_plain(&query[0], &BigUint::zero())?);
        }

        let threads = worker_threads();
        if threads <= 1 || nonzero.len() < parallel_threshold() {
            return Self::fold_terms(pk, &nonzero);
        }

        let chunk_len = nonzero.len().div_ceil(threads);
        let partials: Vec<Result<Ciphertext>> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = nonzero
                .chunks(chunk_len)
                .map(|chunk| s.spawn(move || Self::fold_terms(pk, chunk)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("cpir worker panicked"))
                .collect()
        })
        .expect("cpir thread scope");

        let mut acc: Option<Ciphertext> = None;
        for partial in partials {
            let partial = partial?;
            acc = Some(match acc {
                None => partial,
                Some(a) => pk.add(&a, &partial)?,
            });
        }
        Ok(acc.expect("at least one chunk"))
    }

    /// Folds `Π cᵢ^{rᵢ}` over one slice of nonzero terms via
    /// simultaneous multi-exponentiation (one shared squaring chain for
    /// the whole slice instead of a chain per record).
    fn fold_terms(pk: &PublicKey, terms: &[(&Ciphertext, u64)]) -> Result<Ciphertext> {
        Ok(pk.weighted_sum(terms)?)
    }

    /// Answers `k` queries in one matrix pass.
    ///
    /// All queries share the record (exponent) vector, so the nonzero
    /// filter and the exponent-digit schedule are computed once and only
    /// the per-query bucket multiplications remain — each query pays one
    /// Montgomery multiplication per nonzero record *digit* instead of
    /// per set *bit* (see `MontgomeryCtx::multi_pow_u64_rows`), roughly
    /// halving the work of `k` independent [`Self::answer`] calls even
    /// on one core. On multi-core hosts whole queries additionally tile
    /// across scoped threads (the digit schedule is cheap to recompute
    /// per tile; the multiplications are not). Answers are bit-identical
    /// to per-query [`Self::answer`] results.
    pub fn answer_many(
        &mut self,
        pk: &PublicKey,
        queries: &[&[Ciphertext]],
    ) -> Result<Vec<Ciphertext>> {
        let _span = prever_obs::span!("pir.answer_many");
        for q in queries {
            if q.len() != self.records.len() {
                return Err(PirError::MalformedQuery);
            }
        }
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        let k = queries.len();
        let (idx, weights): (Vec<usize>, Vec<u64>) = self
            .records
            .iter()
            .enumerate()
            .filter(|&(_, &r)| r != 0)
            .map(|(i, &r)| (i, r))
            .unzip();
        self.exp_ops += (k * idx.len()) as u64;
        prever_obs::counter("pir.exp_ops").add((k * idx.len()) as u64);
        prever_obs::counter("pir.queries").add(k as u64);
        prever_obs::counter("pir.multi_query.batch").add(k as u64);
        if idx.is_empty() {
            return queries
                .iter()
                .map(|q| Ok(pk.mul_plain(&q[0], &BigUint::zero())?))
                .collect();
        }

        let rows: Vec<Vec<&Ciphertext>> =
            queries.iter().map(|q| idx.iter().map(|&i| &q[i]).collect()).collect();
        let row_refs: Vec<&[&Ciphertext]> = rows.iter().map(|r| r.as_slice()).collect();

        let threads = worker_threads();
        if threads <= 1 || k == 1 || k * idx.len() < parallel_threshold() {
            return Ok(pk.weighted_sum_rows(&row_refs, &weights)?);
        }
        let chunk = k.div_ceil(threads);
        let tiles: Vec<Result<Vec<Ciphertext>>> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = row_refs
                .chunks(chunk)
                .map(|tile| {
                    let weights = &weights;
                    s.spawn(move || Ok(pk.weighted_sum_rows(tile, weights)?))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("cpir worker panicked"))
                .collect()
        })
        .expect("cpir thread scope");

        let mut out = Vec::with_capacity(k);
        for tile in tiles {
            out.extend(tile?);
        }
        Ok(out)
    }
}

/// Client-side query builder/decoder.
#[derive(Debug)]
pub struct CpirClient {
    key: PrivateKey,
}

impl CpirClient {
    /// Creates a client with a fresh Paillier keypair (`prime_bits`-bit
    /// primes; 96–256 for tests/benches, larger for realism).
    pub fn new<R: Rng + ?Sized>(prime_bits: usize, rng: &mut R) -> Self {
        CpirClient { key: prever_crypto::paillier::keygen(prime_bits, rng) }
    }

    /// The public key the server computes under.
    pub fn public_key(&self) -> &PublicKey {
        &self.key.public
    }

    /// Builds the encrypted selection vector for `index`.
    pub fn query<R: Rng + ?Sized>(
        &self,
        index: usize,
        n: usize,
        rng: &mut R,
    ) -> Result<Vec<Ciphertext>> {
        if index >= n {
            return Err(PirError::IndexOutOfRange { index, size: n });
        }
        let _span = prever_obs::span!("pir.query_build");
        let pk = &self.key.public;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let bit = u64::from(i == index);
            out.push(pk.encrypt_u64(bit, rng)?);
        }
        Ok(out)
    }

    /// Decrypts the server's response to the record value.
    pub fn decode(&self, response: &Ciphertext) -> Result<u64> {
        let m = self.key.decrypt(response)?;
        m.to_u64().ok_or(PirError::MalformedQuery)
    }
}

/// End-to-end convenience: privately reads `records[index]`.
pub fn retrieve<R: Rng + ?Sized>(
    client: &CpirClient,
    server: &mut CpirServer,
    index: usize,
    rng: &mut R,
) -> Result<u64> {
    let query = client.query(index, server.len(), rng)?;
    let response = server.answer(client.public_key(), &query)?;
    client.decode(&response)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn retrieves_each_record() {
        let mut rng = StdRng::seed_from_u64(1);
        let client = CpirClient::new(96, &mut rng);
        let mut server = CpirServer::new(vec![11, 0, 33, 44, 55]);
        for (i, expected) in [11u64, 0, 33, 44, 55].iter().enumerate() {
            assert_eq!(retrieve(&client, &mut server, i, &mut rng).unwrap(), *expected);
        }
    }

    #[test]
    fn server_sees_only_ciphertexts() {
        // Queries for different indices must be computationally
        // indistinguishable; structurally, all elements are valid
        // ciphertexts and two queries for the same index differ.
        let mut rng = StdRng::seed_from_u64(2);
        let client = CpirClient::new(96, &mut rng);
        let q1 = client.query(2, 5, &mut rng).unwrap();
        let q2 = client.query(2, 5, &mut rng).unwrap();
        assert_ne!(
            q1.iter().map(|c| c.as_biguint().clone()).collect::<Vec<_>>(),
            q2.iter().map(|c| c.as_biguint().clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn updates_visible() {
        let mut rng = StdRng::seed_from_u64(3);
        let client = CpirClient::new(96, &mut rng);
        let mut server = CpirServer::new(vec![1, 2, 3]);
        server.write(1, 99).unwrap();
        assert_eq!(retrieve(&client, &mut server, 1, &mut rng).unwrap(), 99);
        assert!(server.write(5, 1).is_err());
    }

    #[test]
    fn query_size_checked() {
        let mut rng = StdRng::seed_from_u64(4);
        let client = CpirClient::new(96, &mut rng);
        let mut server = CpirServer::new(vec![1, 2, 3]);
        let q = client.query(0, 2, &mut rng).unwrap();
        assert!(matches!(
            server.answer(client.public_key(), &q),
            Err(PirError::MalformedQuery)
        ));
        assert!(client.query(9, 3, &mut rng).is_err());
    }

    #[test]
    fn all_zero_database() {
        let mut rng = StdRng::seed_from_u64(5);
        let client = CpirClient::new(96, &mut rng);
        let mut server = CpirServer::new(vec![0, 0, 0]);
        assert_eq!(retrieve(&client, &mut server, 1, &mut rng).unwrap(), 0);
    }

    #[test]
    fn parallel_answer_path_retrieves_correctly() {
        // 128 nonzero records crosses PARALLEL_THRESHOLD, exercising the
        // chunked scoped-thread fold; the result must match what the
        // sequential fold would produce (same record value back).
        let mut rng = StdRng::seed_from_u64(7);
        let client = CpirClient::new(96, &mut rng);
        let n = 2 * PARALLEL_THRESHOLD;
        let mut server = CpirServer::new((1..=n as u64).collect());
        for i in [0usize, n / 2, n - 1] {
            assert_eq!(retrieve(&client, &mut server, i, &mut rng).unwrap(), (i + 1) as u64);
        }
        assert_eq!(server.exp_ops, 3 * n as u64);
    }

    #[test]
    fn answer_many_matches_per_query_answers() {
        let mut rng = StdRng::seed_from_u64(8);
        let client = CpirClient::new(96, &mut rng);
        // Mixed record regimes: zeros, flag-like small values, and
        // full-width values exercising every bucket width.
        let mut records: Vec<u64> = (0..40).map(|i| i % 5).collect();
        records.extend([u64::MAX, 1 << 63, 0x1234_5678_9abc_def0]);
        let n = records.len();
        let mut server = CpirServer::new(records.clone());
        let targets = [0usize, 7, n - 3, n - 1];
        let queries: Vec<Vec<Ciphertext>> =
            targets.iter().map(|&t| client.query(t, n, &mut rng).unwrap()).collect();
        let query_refs: Vec<&[Ciphertext]> = queries.iter().map(|q| q.as_slice()).collect();

        let batched = server.answer_many(client.public_key(), &query_refs).unwrap();
        assert_eq!(batched.len(), targets.len());
        for ((q, &t), b) in query_refs.iter().zip(&targets).zip(&batched) {
            // Bit-identical to the sequential path, not just same plaintext.
            let single = server.answer(client.public_key(), q).unwrap();
            assert_eq!(b.as_biguint(), single.as_biguint());
            assert_eq!(client.decode(b).unwrap(), records[t]);
        }
    }

    #[test]
    fn answer_many_handles_edge_batches() {
        let mut rng = StdRng::seed_from_u64(9);
        let client = CpirClient::new(96, &mut rng);
        let pk = client.public_key();

        // Empty batch.
        let mut server = CpirServer::new(vec![1, 2, 3]);
        assert!(server.answer_many(pk, &[]).unwrap().is_empty());

        // All-zero database decodes to 0 for every query.
        let mut zeros = CpirServer::new(vec![0, 0, 0]);
        let q: Vec<Ciphertext> = client.query(1, 3, &mut rng).unwrap();
        let ans = zeros.answer_many(pk, &[&q, &q]).unwrap();
        assert_eq!(ans.len(), 2);
        for a in &ans {
            assert_eq!(client.decode(a).unwrap(), 0);
        }

        // Any malformed query rejects the whole batch.
        let short = client.query(0, 2, &mut rng).unwrap();
        assert!(matches!(
            server.answer_many(pk, &[&q, &short]),
            Err(PirError::MalformedQuery)
        ));

        // exp_ops accounts k·nonzero.
        let before = server.exp_ops;
        server.answer_many(pk, &[&q, &q]).unwrap();
        assert_eq!(server.exp_ops, before + 6);
    }

    #[test]
    fn work_scales_with_nonzero_records() {
        let mut rng = StdRng::seed_from_u64(6);
        let client = CpirClient::new(96, &mut rng);
        let mut server = CpirServer::new((1..=32).collect());
        retrieve(&client, &mut server, 0, &mut rng).unwrap();
        assert_eq!(server.exp_ops, 32);
    }
}
