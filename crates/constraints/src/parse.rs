//! Recursive-descent parser for the constraint surface syntax.
//!
//! Grammar (precedence climbing, loosest first):
//!
//! ```text
//! expr    := or
//! or      := and (OR and)*
//! and     := not (AND not)*
//! not     := NOT not | cmp
//! cmp     := add (( = | != | < | <= | > | >= ) add)?
//!          | add IS [NOT] NULL
//! add     := mul (( + | - ) mul)*
//! mul     := unary (( * | / | % ) unary)*
//! unary   := - unary | primary
//! primary := integer | 'string' | TRUE | FALSE | NULL
//!          | $ident                      (update field)
//!          | ident . ident               (scanned column)
//!          | AGG ( ident [. ident] [WHERE expr] [WITHIN integer OF ident . ident] )
//!          | EXISTS ( ident [WHERE expr] )
//!          | GAGG ( ident [. ident] BY ident . ident [WHERE expr] [WITHIN ...] )
//!          | ( expr )
//!
//! AGG  := COUNT | SUM | MIN | MAX | AVG
//! GAGG := MAXSUM | MINSUM | MAXCOUNT | MINCOUNT   (grouped aggregates)
//! ```

use crate::ast::{AggFunc, BinOp, Expr, GroupReduce, TimeWindow};
use crate::{ConstraintError, Result};
use prever_storage::Value;

/// Parses constraint source text into an expression.
pub fn parse(src: &str) -> Result<Expr> {
    let mut p = Parser { src: src.as_bytes(), pos: 0 };
    let expr = p.parse_or()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(p.error("unexpected trailing input"));
    }
    Ok(expr)
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> ConstraintError {
        ConstraintError::Parse { at: self.pos, msg: msg.to_string() }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    /// Consumes `tok` if it appears next (case-insensitive for words;
    /// word tokens must not run into identifier characters).
    fn eat(&mut self, tok: &str) -> bool {
        self.skip_ws();
        let bytes = tok.as_bytes();
        if self.pos + bytes.len() > self.src.len() {
            return false;
        }
        let slice = &self.src[self.pos..self.pos + bytes.len()];
        let matches = slice.eq_ignore_ascii_case(bytes);
        if !matches {
            return false;
        }
        if tok.chars().next().is_some_and(|c| c.is_ascii_alphabetic()) {
            // Word token: must end at a word boundary.
            if let Some(&next) = self.src.get(self.pos + bytes.len()) {
                if next.is_ascii_alphanumeric() || next == b'_' {
                    return false;
                }
            }
        }
        self.pos += bytes.len();
        true
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_and()?;
        while self.eat("OR") {
            let rhs = self.parse_and()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_not()?;
        while self.eat("AND") {
            let rhs = self.parse_not()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat("NOT") {
            Ok(Expr::Not(Box::new(self.parse_not()?)))
        } else {
            self.parse_cmp()
        }
    }

    fn parse_cmp(&mut self) -> Result<Expr> {
        let lhs = self.parse_add()?;
        if self.eat("IS") {
            let negated = self.eat("NOT");
            if !self.eat("NULL") {
                return Err(self.error("expected NULL after IS"));
            }
            return Ok(Expr::IsNull { expr: Box::new(lhs), negated });
        }
        let op = if self.eat("!=") {
            BinOp::Ne
        } else if self.eat("<=") {
            BinOp::Le
        } else if self.eat(">=") {
            BinOp::Ge
        } else if self.eat("=") {
            BinOp::Eq
        } else if self.eat("<") {
            BinOp::Lt
        } else if self.eat(">") {
            BinOp::Gt
        } else {
            return Ok(lhs);
        };
        let rhs = self.parse_add()?;
        Ok(Expr::bin(op, lhs, rhs))
    }

    fn parse_add(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_mul()?;
        loop {
            if self.eat("+") {
                lhs = Expr::bin(BinOp::Add, lhs, self.parse_mul()?);
            } else if self.eat("-") {
                lhs = Expr::bin(BinOp::Sub, lhs, self.parse_mul()?);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_mul(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            if self.eat("*") {
                lhs = Expr::bin(BinOp::Mul, lhs, self.parse_unary()?);
            } else if self.eat("/") {
                lhs = Expr::bin(BinOp::Div, lhs, self.parse_unary()?);
            } else if self.eat("%") {
                lhs = Expr::bin(BinOp::Mod, lhs, self.parse_unary()?);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat("-") {
            Ok(Expr::Neg(Box::new(self.parse_unary()?)))
        } else {
            self.parse_primary()
        }
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        let c = self.peek().ok_or_else(|| self.error("unexpected end of input"))?;
        match c {
            b'(' => {
                self.pos += 1;
                let e = self.parse_or()?;
                if !self.eat(")") {
                    return Err(self.error("expected )"));
                }
                Ok(e)
            }
            b'$' => {
                self.pos += 1;
                let name = self.parse_ident()?;
                Ok(Expr::Field(name))
            }
            b'\'' => {
                self.pos += 1;
                let start = self.pos;
                while self.pos < self.src.len() && self.src[self.pos] != b'\'' {
                    self.pos += 1;
                }
                if self.pos == self.src.len() {
                    return Err(self.error("unterminated string literal"));
                }
                let s = std::str::from_utf8(&self.src[start..self.pos])
                    .map_err(|_| self.error("invalid utf8 in string literal"))?
                    .to_string();
                self.pos += 1;
                Ok(Expr::Literal(Value::Str(s)))
            }
            b'0'..=b'9' => {
                let start = self.pos;
                while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.src[start..self.pos]).expect("digits");
                let v: i64 = text.parse().map_err(|_| self.error("integer literal overflow"))?;
                Ok(Expr::Literal(Value::Int(v)))
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => self.parse_word(),
            _ => Err(self.error("unexpected character")),
        }
    }

    fn parse_word(&mut self) -> Result<Expr> {
        // Keyword literals first.
        if self.eat("TRUE") {
            return Ok(Expr::Literal(Value::Bool(true)));
        }
        if self.eat("FALSE") {
            return Ok(Expr::Literal(Value::Bool(false)));
        }
        if self.eat("NULL") {
            return Ok(Expr::Literal(Value::Null));
        }
        // Grouped aggregates first (their names prefix the plain ones).
        for (kw, func, reduce) in [
            ("MAXSUM", AggFunc::Sum, GroupReduce::Max),
            ("MINSUM", AggFunc::Sum, GroupReduce::Min),
            ("MAXCOUNT", AggFunc::Count, GroupReduce::Max),
            ("MINCOUNT", AggFunc::Count, GroupReduce::Min),
        ] {
            let save = self.pos;
            if self.eat(kw) {
                if self.peek() == Some(b'(') {
                    return self.parse_grouped_aggregate(func, reduce);
                }
                self.pos = save;
            }
        }
        {
            let save = self.pos;
            if self.eat("EXISTS") {
                if self.peek() == Some(b'(') {
                    return self.parse_exists();
                }
                self.pos = save;
            }
        }
        for (kw, func) in [
            ("COUNT", AggFunc::Count),
            ("SUM", AggFunc::Sum),
            ("MIN", AggFunc::Min),
            ("MAX", AggFunc::Max),
            ("AVG", AggFunc::Avg),
        ] {
            let save = self.pos;
            if self.eat(kw) {
                if self.peek() == Some(b'(') {
                    return self.parse_aggregate(func);
                }
                self.pos = save;
            }
        }
        // table.column reference.
        let table = self.parse_ident()?;
        if !self.eat(".") {
            return Err(self.error("expected . after identifier (column references are table.column)"));
        }
        let column = self.parse_ident()?;
        Ok(Expr::Column { table, column })
    }

    fn parse_aggregate(&mut self, func: AggFunc) -> Result<Expr> {
        if !self.eat("(") {
            return Err(self.error("expected ( after aggregate"));
        }
        let table = self.parse_ident()?;
        let column = if self.eat(".") { Some(self.parse_ident()?) } else { None };
        if column.is_none() && func != AggFunc::Count {
            return Err(self.error("only COUNT may omit the column"));
        }
        let filter = if self.eat("WHERE") {
            Some(Box::new(self.parse_or()?))
        } else {
            None
        };
        let window = self.parse_window_clause(&table)?;
        if !self.eat(")") {
            return Err(self.error("expected ) to close aggregate"));
        }
        Ok(Expr::Aggregate { func, table, column, filter, window })
    }

    fn parse_exists(&mut self) -> Result<Expr> {
        if !self.eat("(") {
            return Err(self.error("expected ( after EXISTS"));
        }
        let table = self.parse_ident()?;
        let filter = if self.eat("WHERE") {
            Some(Box::new(self.parse_or()?))
        } else {
            None
        };
        if !self.eat(")") {
            return Err(self.error("expected ) to close EXISTS"));
        }
        Ok(Expr::Exists { table, filter })
    }

    fn parse_grouped_aggregate(&mut self, func: AggFunc, reduce: GroupReduce) -> Result<Expr> {
        if !self.eat("(") {
            return Err(self.error("expected ( after grouped aggregate"));
        }
        let table = self.parse_ident()?;
        let column = if self.eat(".") { Some(self.parse_ident()?) } else { None };
        if column.is_none() && func != AggFunc::Count {
            return Err(self.error("only MAXCOUNT/MINCOUNT may omit the column"));
        }
        if !self.eat("BY") {
            return Err(self.error("expected BY in grouped aggregate"));
        }
        let btable = self.parse_ident()?;
        if btable != table {
            return Err(self.error("BY column must belong to the aggregated table"));
        }
        if !self.eat(".") {
            return Err(self.error("expected . in BY column"));
        }
        let group_by = self.parse_ident()?;
        let filter = if self.eat("WHERE") {
            Some(Box::new(self.parse_or()?))
        } else {
            None
        };
        let window = self.parse_window_clause(&table)?;
        if !self.eat(")") {
            return Err(self.error("expected ) to close grouped aggregate"));
        }
        Ok(Expr::GroupedAggregate { func, table, column, group_by, filter, window, reduce })
    }

    /// Parses an optional `WITHIN n OF table.column` clause.
    fn parse_window_clause(&mut self, table: &str) -> Result<Option<TimeWindow>> {
        if !self.eat("WITHIN") {
            return Ok(None);
        }
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.error("expected window duration"));
        }
        let duration: u64 = std::str::from_utf8(&self.src[start..self.pos])
            .expect("digits")
            .parse()
            .map_err(|_| self.error("window duration overflow"))?;
        if !self.eat("OF") {
            return Err(self.error("expected OF after window duration"));
        }
        let wtable = self.parse_ident()?;
        if wtable != table {
            return Err(self.error("window column must belong to the aggregated table"));
        }
        if !self.eat(".") {
            return Err(self.error("expected . in window column"));
        }
        let wcolumn = self.parse_ident()?;
        Ok(Some(TimeWindow { column: wcolumn, duration }))
    }

    fn parse_ident(&mut self) -> Result<String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.error("expected identifier"));
        }
        Ok(std::str::from_utf8(&self.src[start..self.pos])
            .expect("ascii ident")
            .to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flsa_regulation() {
        let e = parse(
            "SUM(tasks.hours WHERE tasks.worker = $worker WITHIN 604800 OF tasks.ts) + $hours <= 40",
        )
        .unwrap();
        match &e {
            Expr::Binary { op: BinOp::Le, lhs, .. } => match lhs.as_ref() {
                Expr::Binary { op: BinOp::Add, lhs, .. } => match lhs.as_ref() {
                    Expr::Aggregate { func: AggFunc::Sum, table, window, .. } => {
                        assert_eq!(table, "tasks");
                        assert_eq!(window.as_ref().unwrap().duration, 604_800);
                    }
                    other => panic!("unexpected: {other:?}"),
                },
                other => panic!("unexpected: {other:?}"),
            },
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn precedence() {
        // 1 + 2 * 3 = 7, not 9.
        let e = parse("1 + 2 * 3 = 7").unwrap();
        assert_eq!(
            e.to_string(),
            "((1 + (2 * 3)) = 7)"
        );
        // AND binds tighter than OR.
        let e = parse("TRUE OR FALSE AND FALSE").unwrap();
        assert_eq!(e.to_string(), "(true OR (false AND false))");
    }

    #[test]
    fn parses_count_without_column() {
        let e = parse("COUNT(attendees) < 500").unwrap();
        assert!(matches!(
            e,
            Expr::Binary { op: BinOp::Lt, .. }
        ));
        assert!(parse("SUM(attendees) < 500").is_err(), "SUM needs a column");
    }

    #[test]
    fn parses_literals() {
        assert_eq!(parse("NULL").unwrap(), Expr::Literal(Value::Null));
        assert_eq!(parse("TRUE").unwrap(), Expr::Literal(Value::Bool(true)));
        assert_eq!(parse("'abc'").unwrap(), Expr::Literal(Value::Str("abc".into())));
        assert_eq!(parse("42").unwrap(), Expr::Literal(Value::Int(42)));
        assert_eq!(
            parse("-42").unwrap(),
            Expr::Neg(Box::new(Expr::Literal(Value::Int(42))))
        );
    }

    #[test]
    fn parses_is_null() {
        let e = parse("$note IS NULL").unwrap();
        assert_eq!(e, Expr::IsNull { expr: Box::new(Expr::field("note")), negated: false });
        let e = parse("$note IS NOT NULL").unwrap();
        assert_eq!(e, Expr::IsNull { expr: Box::new(Expr::field("note")), negated: true });
    }

    #[test]
    fn keywords_are_case_insensitive_and_word_bounded() {
        assert!(parse("not TRUE").is_ok());
        assert!(parse("NOTX.y = 1").is_ok(), "NOTX is an identifier, not NOT");
        assert!(parse("sum(t.c) > 0").is_ok());
    }

    #[test]
    fn error_positions() {
        match parse("1 + ") {
            Err(ConstraintError::Parse { at, .. }) => assert_eq!(at, 4),
            other => panic!("unexpected: {other:?}"),
        }
        assert!(parse("(1 + 2").is_err());
        assert!(parse("'unterminated").is_err());
        assert!(parse("1 + 2 extra").is_err());
        assert!(parse("SUM(t.c WITHIN 10 OF other.ts)").is_err());
        assert!(parse("bare_ident").is_err());
    }

    #[test]
    fn parses_exists_and_grouped_aggregates() {
        let e = parse("EXISTS(certs WHERE certs.worker = $worker)").unwrap();
        assert!(matches!(e, Expr::Exists { .. }));
        let e = parse("EXISTS(certs)").unwrap();
        assert_eq!(e, Expr::Exists { table: "certs".into(), filter: None });

        let e = parse("MAXSUM(tasks.hours BY tasks.worker WITHIN 10 OF tasks.ts) <= 40").unwrap();
        assert_eq!(
            e.to_string(),
            "(MAXSUM(tasks.hours BY tasks.worker WITHIN 10 OF tasks.ts) <= 40)"
        );
        let e = parse("MINCOUNT(tasks BY tasks.worker)").unwrap();
        assert!(matches!(
            e,
            Expr::GroupedAggregate { func: AggFunc::Count, reduce: GroupReduce::Min, .. }
        ));
        // Errors.
        assert!(parse("MAXSUM(tasks.hours)").is_err(), "BY is mandatory");
        assert!(parse("MAXSUM(tasks BY tasks.worker)").is_err(), "SUM needs a column");
        assert!(parse("MAXSUM(tasks.hours BY other.worker)").is_err(), "BY table must match");
    }

    #[test]
    fn grouped_display_roundtrips() {
        for src in [
            "MAXSUM(t.v BY t.g)",
            "MINSUM(t.v BY t.g WHERE t.v > 0)",
            "EXISTS(t WHERE t.v = $x)",
            "MAXCOUNT(t BY t.g WITHIN 5 OF t.ts)",
        ] {
            let e = parse(src).unwrap();
            assert_eq!(parse(&e.to_string()).unwrap(), e, "{src}");
        }
    }

    #[test]
    fn nested_aggregates_in_filter_are_allowed() {
        // A filter can itself reference an aggregate (correlated-style).
        let e = parse("COUNT(t WHERE t.v > SUM(u.w)) = 0");
        assert!(e.is_ok());
    }
}
