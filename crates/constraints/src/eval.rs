//! The reference evaluator: expressions over (snapshot, update).
//!
//! Semantics follow SQL where SQL has an answer: arithmetic and
//! comparisons propagate NULL, `AND`/`OR` are three-valued, and a
//! constraint whose top-level result is NULL **rejects** the update
//! (unknown is not permission). Aggregates over zero rows follow SQL:
//! `COUNT` is 0, `SUM`/`MIN`/`MAX`/`AVG` are NULL.

use crate::ast::{AggFunc, BinOp, Expr, GroupReduce};
use crate::{Constraint, ConstraintError, Result};
use prever_storage::{Row, Schema, Snapshot, Value};

/// The incoming update, as seen by constraint evaluation.
///
/// `$field` references resolve against `row` via `schema`; the sliding
/// windows of temporal regulations anchor at `timestamp`.
#[derive(Clone, Copy, Debug)]
pub struct UpdateContext<'a> {
    /// Table the update targets.
    pub table: &'a str,
    /// The proposed new row.
    pub row: &'a Row,
    /// Schema of the targeted table.
    pub schema: &'a Schema,
    /// The update's logical timestamp.
    pub timestamp: u64,
}

impl<'a> UpdateContext<'a> {
    /// Resolves `$name` against the update row.
    pub fn field(&self, name: &str) -> Result<&'a Value> {
        let idx = self
            .schema
            .column_index(name)
            .map_err(|_| ConstraintError::UnknownField(name.to_string()))?;
        Ok(&self.row.values[idx])
    }
}

/// Evaluates a constraint: `Ok(true)` accepts the update.
///
/// NULL at the top level rejects (returns `Ok(false)`).
pub fn evaluate(
    constraint: &Constraint,
    snapshot: &Snapshot<'_>,
    update: &UpdateContext<'_>,
) -> Result<bool> {
    match evaluate_expr(&constraint.expr, snapshot, update)? {
        Value::Bool(b) => Ok(b),
        Value::Null => Ok(false),
        other => Err(ConstraintError::TypeMismatch {
            op: "constraint",
            detail: format!("constraint must be boolean, got {}", other.type_name()),
        }),
    }
}

/// Evaluates an expression with no row bound (aggregates scan the
/// snapshot; bare `table.column` references are an error here).
pub fn evaluate_expr(
    expr: &Expr,
    snapshot: &Snapshot<'_>,
    update: &UpdateContext<'_>,
) -> Result<Value> {
    eval(expr, snapshot, update, &[])
}

/// Row binding for `table.column` references inside aggregate filters.
/// Nested scans push onto a stack; references resolve innermost-first,
/// which is what makes correlated `EXISTS` (semi-joins) work.
#[derive(Clone, Copy)]
struct RowBinding<'a> {
    table: &'a str,
    schema: &'a Schema,
    row: &'a Row,
}

fn eval(
    expr: &Expr,
    snapshot: &Snapshot<'_>,
    update: &UpdateContext<'_>,
    bound: &[RowBinding<'_>],
) -> Result<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Field(name) => Ok(update.field(name)?.clone()),
        Expr::Column { table, column } => {
            // Innermost matching scan wins (correlated references reach
            // enclosing scans by table name).
            let b = bound.iter().rev().find(|b| b.table == table).ok_or_else(|| {
                ConstraintError::TypeMismatch {
                    op: "column reference",
                    detail: format!("{table}.{column} does not match any enclosing scan"),
                }
            })?;
            let idx = b.schema.column_index(column)?;
            Ok(b.row.values[idx].clone())
        }
        Expr::Binary { op, lhs, rhs } => {
            // Three-valued AND/OR need lazy handling of NULL.
            match op {
                BinOp::And | BinOp::Or => {
                    let l = eval(lhs, snapshot, update, bound)?;
                    let r = eval(rhs, snapshot, update, bound)?;
                    eval_logic(*op, &l, &r)
                }
                _ => {
                    let l = eval(lhs, snapshot, update, bound)?;
                    let r = eval(rhs, snapshot, update, bound)?;
                    eval_binary(*op, &l, &r)
                }
            }
        }
        Expr::Not(e) => match eval(e, snapshot, update, bound)? {
            Value::Bool(b) => Ok(Value::Bool(!b)),
            Value::Null => Ok(Value::Null),
            other => Err(ConstraintError::TypeMismatch {
                op: "NOT",
                detail: format!("expected boolean, got {}", other.type_name()),
            }),
        },
        Expr::Neg(e) => match eval(e, snapshot, update, bound)? {
            Value::Null => Ok(Value::Null),
            v => {
                let n = v.as_i128().ok_or_else(|| ConstraintError::TypeMismatch {
                    op: "negation",
                    detail: format!("expected numeric, got {}", v.type_name()),
                })?;
                int_value(-n)
            }
        },
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, snapshot, update, bound)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Aggregate { func, table, column, filter, window } => eval_aggregate(
            *func,
            table,
            column.as_deref(),
            filter.as_deref(),
            window.as_ref(),
            snapshot,
            update,
            bound,
        ),
        Expr::Exists { table, filter } => {
            eval_exists(table, filter.as_deref(), snapshot, update, bound)
        }
        Expr::GroupedAggregate { func, table, column, group_by, filter, window, reduce } => {
            eval_grouped(
                *func,
                table,
                column.as_deref(),
                group_by,
                filter.as_deref(),
                window.as_ref(),
                *reduce,
                snapshot,
                update,
                bound,
            )
        }
    }
}

fn eval_exists(
    table: &str,
    filter: Option<&Expr>,
    snapshot: &Snapshot<'_>,
    update: &UpdateContext<'_>,
    bound: &[RowBinding<'_>],
) -> Result<Value> {
    let schema = snapshot.schema(table)?;
    for (_key, row) in snapshot.scan(table)? {
        match filter {
            None => return Ok(Value::Bool(true)),
            Some(f) => {
                let mut stack: Vec<RowBinding<'_>> = bound.to_vec();
                stack.push(RowBinding { table, schema, row });
                match eval(f, snapshot, update, &stack)? {
                    Value::Bool(true) => return Ok(Value::Bool(true)),
                    Value::Bool(false) | Value::Null => continue,
                    other => {
                        return Err(ConstraintError::TypeMismatch {
                            op: "EXISTS WHERE",
                            detail: format!("filter must be boolean, got {}", other.type_name()),
                        })
                    }
                }
            }
        }
    }
    Ok(Value::Bool(false))
}

#[allow(clippy::too_many_arguments)]
fn eval_grouped(
    func: AggFunc,
    table: &str,
    column: Option<&str>,
    group_by: &str,
    filter: Option<&Expr>,
    window: Option<&crate::ast::TimeWindow>,
    reduce: GroupReduce,
    snapshot: &Snapshot<'_>,
    update: &UpdateContext<'_>,
    bound: &[RowBinding<'_>],
) -> Result<Value> {
    let schema = snapshot.schema(table)?;
    let col_idx = column.map(|c| schema.column_index(c)).transpose()?;
    let group_idx = schema.column_index(group_by)?;
    let window_idx = window.map(|w| schema.column_index(&w.column)).transpose()?;
    let mut groups: std::collections::BTreeMap<Value, i128> = std::collections::BTreeMap::new();
    for (_key, row) in snapshot.scan(table)? {
        if let (Some(w), Some(widx)) = (window, window_idx) {
            let ts = row.values[widx].as_i128().ok_or_else(|| ConstraintError::TypeMismatch {
                op: "window",
                detail: format!("window column {} is not numeric", w.column),
            })?;
            let anchor = update.timestamp as i128;
            if ts <= anchor - w.duration as i128 || ts > anchor {
                continue;
            }
        }
        if let Some(f) = filter {
            let mut stack: Vec<RowBinding<'_>> = bound.to_vec();
            stack.push(RowBinding { table, schema, row });
            match eval(f, snapshot, update, &stack)? {
                Value::Bool(true) => {}
                Value::Bool(false) | Value::Null => continue,
                other => {
                    return Err(ConstraintError::TypeMismatch {
                        op: "WHERE",
                        detail: format!("filter must be boolean, got {}", other.type_name()),
                    })
                }
            }
        }
        let contribution = match func {
            AggFunc::Count => 1,
            AggFunc::Sum => {
                let idx = col_idx.expect("parser enforces a column for SUM");
                let v = &row.values[idx];
                if v.is_null() {
                    continue;
                }
                v.as_i128().ok_or_else(|| ConstraintError::TypeMismatch {
                    op: "MAXSUM/MINSUM",
                    detail: format!("non-numeric column value {v}"),
                })?
            }
            other => {
                return Err(ConstraintError::TypeMismatch {
                    op: "grouped aggregate",
                    detail: format!("{} cannot be grouped", other.name()),
                })
            }
        };
        let entry = groups.entry(row.values[group_idx].clone()).or_insert(0);
        *entry = entry.checked_add(contribution).ok_or(ConstraintError::Overflow)?;
    }
    let reduced = match reduce {
        GroupReduce::Max => groups.values().max(),
        GroupReduce::Min => groups.values().min(),
    };
    match reduced {
        None => Ok(Value::Null),
        Some(v) => int_value(*v),
    }
}

#[allow(clippy::too_many_arguments)]
fn eval_aggregate(
    func: AggFunc,
    table: &str,
    column: Option<&str>,
    filter: Option<&Expr>,
    window: Option<&crate::ast::TimeWindow>,
    snapshot: &Snapshot<'_>,
    update: &UpdateContext<'_>,
    bound: &[RowBinding<'_>],
) -> Result<Value> {
    let schema = snapshot.schema(table)?;
    let col_idx = column.map(|c| schema.column_index(c)).transpose()?;
    let window_idx = window.map(|w| schema.column_index(&w.column)).transpose()?;

    let mut count: i128 = 0;
    let mut sum: i128 = 0;
    let mut min: Option<Value> = None;
    let mut max: Option<Value> = None;

    for (_key, row) in snapshot.scan(table)? {
        // Sliding window: (update_ts − duration, update_ts].
        if let (Some(w), Some(widx)) = (window, window_idx) {
            let ts = row.values[widx].as_i128().ok_or_else(|| ConstraintError::TypeMismatch {
                op: "window",
                detail: format!("window column {} is not numeric", w.column),
            })?;
            let anchor = update.timestamp as i128;
            if ts <= anchor - w.duration as i128 || ts > anchor {
                continue;
            }
        }
        if let Some(f) = filter {
            let mut stack: Vec<RowBinding<'_>> = bound.to_vec();
            stack.push(RowBinding { table, schema, row });
            match eval(f, snapshot, update, &stack)? {
                Value::Bool(true) => {}
                Value::Bool(false) | Value::Null => continue,
                other => {
                    return Err(ConstraintError::TypeMismatch {
                        op: "WHERE",
                        detail: format!("filter must be boolean, got {}", other.type_name()),
                    })
                }
            }
        }
        count += 1;
        if let Some(idx) = col_idx {
            let v = &row.values[idx];
            if v.is_null() {
                // SQL semantics: NULLs are ignored by aggregates.
                count -= 1;
                continue;
            }
            match func {
                AggFunc::Sum | AggFunc::Avg => {
                    let n = v.as_i128().ok_or_else(|| ConstraintError::TypeMismatch {
                        op: "SUM",
                        detail: format!("non-numeric column value {v}"),
                    })?;
                    sum = sum.checked_add(n).ok_or(ConstraintError::Overflow)?;
                }
                AggFunc::Min => {
                    if min.as_ref().is_none_or(|m| v < m) {
                        min = Some(v.clone());
                    }
                }
                AggFunc::Max => {
                    if max.as_ref().is_none_or(|m| v > m) {
                        max = Some(v.clone());
                    }
                }
                AggFunc::Count => {}
            }
        }
    }

    match func {
        AggFunc::Count => int_value(count),
        AggFunc::Sum => {
            if count == 0 {
                Ok(Value::Null)
            } else {
                int_value(sum)
            }
        }
        AggFunc::Avg => {
            if count == 0 {
                Ok(Value::Null)
            } else {
                int_value(sum / count)
            }
        }
        AggFunc::Min => Ok(min.unwrap_or(Value::Null)),
        AggFunc::Max => Ok(max.unwrap_or(Value::Null)),
    }
}

fn eval_logic(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    let lb = logic_operand(l)?;
    let rb = logic_operand(r)?;
    // Kleene three-valued logic.
    let out = match op {
        BinOp::And => match (lb, rb) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        BinOp::Or => match (lb, rb) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        _ => unreachable!("eval_logic called with non-logic op"),
    };
    Ok(out.map(Value::Bool).unwrap_or(Value::Null))
}

fn logic_operand(v: &Value) -> Result<Option<bool>> {
    match v {
        Value::Bool(b) => Ok(Some(*b)),
        Value::Null => Ok(None),
        other => Err(ConstraintError::TypeMismatch {
            op: "AND/OR",
            detail: format!("expected boolean, got {}", other.type_name()),
        }),
    }
}

fn eval_binary(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
            let (a, b) = numeric_pair(op, l, r)?;
            let out = match op {
                BinOp::Add => a.checked_add(b),
                BinOp::Sub => a.checked_sub(b),
                BinOp::Mul => a.checked_mul(b),
                BinOp::Div => {
                    if b == 0 {
                        return Err(ConstraintError::DivisionByZero);
                    }
                    a.checked_div(b)
                }
                BinOp::Mod => {
                    if b == 0 {
                        return Err(ConstraintError::DivisionByZero);
                    }
                    a.checked_rem(b)
                }
                _ => unreachable!(),
            }
            .ok_or(ConstraintError::Overflow)?;
            int_value(out)
        }
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let ord = l.compare(r).ok_or_else(|| ConstraintError::TypeMismatch {
                op: "comparison",
                detail: format!("cannot compare {} with {}", l.type_name(), r.type_name()),
            })?;
            let out = match op {
                BinOp::Eq => ord.is_eq(),
                BinOp::Ne => ord.is_ne(),
                BinOp::Lt => ord.is_lt(),
                BinOp::Le => ord.is_le(),
                BinOp::Gt => ord.is_gt(),
                BinOp::Ge => ord.is_ge(),
                _ => unreachable!(),
            };
            Ok(Value::Bool(out))
        }
        BinOp::And | BinOp::Or => unreachable!("handled by eval_logic"),
    }
}

fn numeric_pair(op: BinOp, l: &Value, r: &Value) -> Result<(i128, i128)> {
    match (l.as_i128(), r.as_i128()) {
        (Some(a), Some(b)) => Ok((a, b)),
        _ => Err(ConstraintError::TypeMismatch {
            op: op.symbol(),
            detail: format!("expected numeric operands, got {} and {}", l.type_name(), r.type_name()),
        }),
    }
}

fn int_value(v: i128) -> Result<Value> {
    i64::try_from(v)
        .map(Value::Int)
        .map_err(|_| ConstraintError::Overflow)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Constraint, ConstraintScope};
    use prever_storage::{Column, ColumnType, Database, Row, Schema};

    /// A crowdworking task-completion database (paper §2.3 / §5).
    fn tasks_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "tasks",
            Schema::new(
                vec![
                    Column::new("id", ColumnType::Uint),
                    Column::new("worker", ColumnType::Str),
                    Column::new("hours", ColumnType::Uint),
                    Column::new("ts", ColumnType::Timestamp),
                ],
                &["id"],
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    fn task(id: u64, worker: &str, hours: u64, ts: u64) -> Row {
        Row::new(vec![id.into(), worker.into(), hours.into(), Value::Timestamp(ts)])
    }

    /// The COUNT-guarded FLSA form: SUM over zero rows is NULL (SQL), so
    /// production regulations guard the empty-window case explicitly.
    fn flsa() -> Constraint {
        Constraint::parse(
            "FLSA-40h",
            ConstraintScope::Regulation,
            "$hours <= 40 AND (COUNT(tasks WHERE tasks.worker = $worker WITHIN 604800 OF tasks.ts) = 0 \
             OR SUM(tasks.hours WHERE tasks.worker = $worker WITHIN 604800 OF tasks.ts) + $hours <= 40)",
        )
        .unwrap()
    }

    /// The naive (unguarded) form, used to document NULL semantics.
    fn flsa_unguarded() -> Constraint {
        Constraint::parse(
            "FLSA-40h-naive",
            ConstraintScope::Regulation,
            "SUM(tasks.hours WHERE tasks.worker = $worker WITHIN 604800 OF tasks.ts) + $hours <= 40",
        )
        .unwrap()
    }

    fn check(db: &Database, c: &Constraint, row: &Row, ts: u64) -> bool {
        let snapshot = db.snapshot();
        let schema = db.table("tasks").unwrap().schema();
        let update = UpdateContext { table: "tasks", row, schema, timestamp: ts };
        evaluate(c, &snapshot, &update).unwrap()
    }

    #[test]
    fn flsa_accepts_under_limit() {
        let mut db = tasks_db();
        db.insert("tasks", task(1, "w1", 20, 100)).unwrap();
        db.insert("tasks", task(2, "w1", 10, 200)).unwrap();
        // 30 existing + 10 new = 40 <= 40: accept.
        assert!(check(&db, &flsa(), &task(3, "w1", 10, 300), 300));
    }

    #[test]
    fn flsa_rejects_over_limit() {
        let mut db = tasks_db();
        db.insert("tasks", task(1, "w1", 20, 100)).unwrap();
        db.insert("tasks", task(2, "w1", 15, 200)).unwrap();
        // 35 existing + 6 new = 41 > 40: reject.
        assert!(!check(&db, &flsa(), &task(3, "w1", 6, 300), 300));
    }

    #[test]
    fn flsa_counts_only_this_worker() {
        let mut db = tasks_db();
        db.insert("tasks", task(1, "other", 40, 100)).unwrap();
        assert!(check(&db, &flsa(), &task(2, "w1", 40, 200), 200));
    }

    #[test]
    fn flsa_window_excludes_old_hours() {
        let mut db = tasks_db();
        let week = 604_800u64;
        // Worked 40h last week (outside the window of the new update).
        db.insert("tasks", task(1, "w1", 40, 100)).unwrap();
        let now = 100 + week + 1;
        assert!(check(&db, &flsa(), &task(2, "w1", 40, now), now));
        // The window is (anchor − duration, anchor]: at anchor = 100 + week
        // the old entry sits exactly on the open lower bound and drops out.
        assert!(check(&db, &flsa(), &task(3, "w1", 40, 100 + week), 100 + week));
        // One tick earlier it is still inside and the update is rejected.
        assert!(!check(&db, &flsa(), &task(4, "w1", 1, 99 + week), 99 + week));
    }

    #[test]
    fn empty_table_sum_is_null_and_rejected_safely() {
        let db = tasks_db();
        // SUM over empty set is NULL; NULL + hours is NULL; NULL <= 40 is
        // NULL; top-level NULL rejects. Unknown is not permission.
        assert!(!check(&db, &flsa_unguarded(), &task(1, "w1", 1, 100), 100));
        // The robust form guards with COUNT and accepts.
        assert!(check(&db, &flsa(), &task(1, "w1", 1, 100), 100));
    }

    #[test]
    fn count_aggregate() {
        let mut db = tasks_db();
        for i in 0..5 {
            db.insert("tasks", task(i, "w1", 1, 100 + i)).unwrap();
        }
        let c = Constraint::parse(
            "cap",
            ConstraintScope::Internal,
            "COUNT(tasks WHERE tasks.worker = $worker) < 5",
        )
        .unwrap();
        assert!(!check(&db, &c, &task(9, "w1", 1, 999), 999));
        assert!(check(&db, &c, &task(9, "w2", 1, 999), 999));
    }

    #[test]
    fn min_max_avg() {
        let mut db = tasks_db();
        for (i, h) in [2u64, 4, 6].iter().enumerate() {
            db.insert("tasks", task(i as u64, "w1", *h, 100)).unwrap();
        }
        let snapshot = db.snapshot();
        let schema = db.table("tasks").unwrap().schema();
        let row = task(9, "w1", 1, 200);
        let update = UpdateContext { table: "tasks", row: &row, schema, timestamp: 200 };
        let cases = [
            ("MIN(tasks.hours)", Value::Uint(2)),
            ("MAX(tasks.hours)", Value::Uint(6)),
            ("AVG(tasks.hours)", Value::Int(4)),
            ("SUM(tasks.hours)", Value::Int(12)),
            ("COUNT(tasks)", Value::Int(3)),
        ];
        for (src, expected) in cases {
            let e = crate::parse::parse(src).unwrap();
            assert_eq!(evaluate_expr(&e, &snapshot, &update).unwrap(), expected, "{src}");
        }
    }

    #[test]
    fn three_valued_logic() {
        let db = tasks_db();
        let snapshot = db.snapshot();
        let schema = db.table("tasks").unwrap().schema();
        let row = task(1, "w", 1, 1);
        let update = UpdateContext { table: "tasks", row: &row, schema, timestamp: 1 };
        let cases = [
            ("NULL AND TRUE", Value::Null),
            ("NULL AND FALSE", Value::Bool(false)),
            ("NULL OR TRUE", Value::Bool(true)),
            ("NULL OR FALSE", Value::Null),
            ("NOT NULL", Value::Null),
            ("NULL = 1", Value::Null),
            ("NULL IS NULL", Value::Bool(true)),
            ("1 IS NOT NULL", Value::Bool(true)),
        ];
        for (src, expected) in cases {
            let e = crate::parse::parse(src).unwrap();
            assert_eq!(evaluate_expr(&e, &snapshot, &update).unwrap(), expected, "{src}");
        }
    }

    #[test]
    fn arithmetic_errors() {
        let db = tasks_db();
        let snapshot = db.snapshot();
        let schema = db.table("tasks").unwrap().schema();
        let row = task(1, "w", 1, 1);
        let update = UpdateContext { table: "tasks", row: &row, schema, timestamp: 1 };
        let div = crate::parse::parse("1 / 0").unwrap();
        assert_eq!(
            evaluate_expr(&div, &snapshot, &update).unwrap_err(),
            ConstraintError::DivisionByZero
        );
        let ty = crate::parse::parse("'a' + 1").unwrap();
        assert!(matches!(
            evaluate_expr(&ty, &snapshot, &update),
            Err(ConstraintError::TypeMismatch { .. })
        ));
        let cmp = crate::parse::parse("'a' < 1").unwrap();
        assert!(matches!(
            evaluate_expr(&cmp, &snapshot, &update),
            Err(ConstraintError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn unknown_field_is_an_error() {
        let db = tasks_db();
        let snapshot = db.snapshot();
        let schema = db.table("tasks").unwrap().schema();
        let row = task(1, "w", 1, 1);
        let update = UpdateContext { table: "tasks", row: &row, schema, timestamp: 1 };
        let e = crate::parse::parse("$nope = 1").unwrap();
        assert_eq!(
            evaluate_expr(&e, &snapshot, &update).unwrap_err(),
            ConstraintError::UnknownField("nope".into())
        );
    }

    #[test]
    fn column_outside_aggregate_is_an_error() {
        let db = tasks_db();
        let snapshot = db.snapshot();
        let schema = db.table("tasks").unwrap().schema();
        let row = task(1, "w", 1, 1);
        let update = UpdateContext { table: "tasks", row: &row, schema, timestamp: 1 };
        let e = crate::parse::parse("tasks.hours = 1").unwrap();
        assert!(matches!(
            evaluate_expr(&e, &snapshot, &update),
            Err(ConstraintError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn non_boolean_constraint_is_an_error() {
        let mut db = tasks_db();
        db.insert("tasks", task(1, "w1", 3, 1)).unwrap();
        let c = Constraint::parse("bad", ConstraintScope::Internal, "1 + 1").unwrap();
        let snapshot = db.snapshot();
        let schema = db.table("tasks").unwrap().schema();
        let row = task(9, "w1", 1, 2);
        let update = UpdateContext { table: "tasks", row: &row, schema, timestamp: 2 };
        assert!(matches!(
            evaluate(&c, &snapshot, &update),
            Err(ConstraintError::TypeMismatch { .. })
        ));
    }

    /// Adds a `certs` table (worker certification) for join-style tests.
    fn add_certs(db: &mut Database, certified: &[&str]) {
        db.create_table(
            "certs",
            Schema::new(
                vec![
                    Column::new("worker", ColumnType::Str),
                    Column::new("level", ColumnType::Uint),
                ],
                &["worker"],
            )
            .unwrap(),
        )
        .unwrap();
        for (i, w) in certified.iter().enumerate() {
            db.insert("certs", Row::new(vec![(*w).into(), (i as u64).into()]))
                .unwrap();
        }
    }

    #[test]
    fn exists_semi_join_against_second_table() {
        // Paper §5 future work: constraints with JOIN expressions. A
        // task is only admissible if the worker holds a certification —
        // an EXISTS semi-join between the update and the certs table.
        let mut db = tasks_db();
        add_certs(&mut db, &["w1", "w2"]);
        let c = Constraint::parse(
            "certified-only",
            ConstraintScope::Internal,
            "EXISTS(certs WHERE certs.worker = $worker)",
        )
        .unwrap();
        assert!(check(&db, &c, &task(1, "w1", 5, 100), 100));
        assert!(!check(&db, &c, &task(2, "w9", 5, 100), 100));
    }

    #[test]
    fn correlated_exists_joins_scanned_row() {
        // Correlated form: count only tasks whose worker is certified.
        // The inner EXISTS references the *outer* scan's row.
        let mut db = tasks_db();
        add_certs(&mut db, &["w1"]);
        db.insert("tasks", task(1, "w1", 5, 100)).unwrap();
        db.insert("tasks", task(2, "w2", 5, 100)).unwrap();
        db.insert("tasks", task(3, "w1", 5, 100)).unwrap();
        let snapshot = db.snapshot();
        let schema = db.table("tasks").unwrap().schema();
        let row = task(9, "w1", 1, 200);
        let update = UpdateContext { table: "tasks", row: &row, schema, timestamp: 200 };
        let e = crate::parse::parse(
            "COUNT(tasks WHERE EXISTS(certs WHERE certs.worker = tasks.worker))",
        )
        .unwrap();
        assert_eq!(evaluate_expr(&e, &snapshot, &update).unwrap(), Value::Int(2));
    }

    #[test]
    fn exists_without_filter_is_nonempty_check() {
        let mut db = tasks_db();
        let e = crate::parse::parse("EXISTS(tasks)").unwrap();
        {
            let snapshot = db.snapshot();
            let schema = db.table("tasks").unwrap().schema();
            let row = task(1, "w", 1, 1);
            let update = UpdateContext { table: "tasks", row: &row, schema, timestamp: 1 };
            assert_eq!(evaluate_expr(&e, &snapshot, &update).unwrap(), Value::Bool(false));
        }
        db.insert("tasks", task(1, "w", 1, 1)).unwrap();
        let snapshot = db.snapshot();
        let schema = db.table("tasks").unwrap().schema();
        let row = task(2, "w", 1, 1);
        let update = UpdateContext { table: "tasks", row: &row, schema, timestamp: 1 };
        assert_eq!(evaluate_expr(&e, &snapshot, &update).unwrap(), Value::Bool(true));
    }

    #[test]
    fn grouped_aggregate_states_per_group_invariant() {
        // MAXSUM: "no worker's total exceeds the bound" as a single
        // state invariant (paper §5: GROUP BY regulations).
        let mut db = tasks_db();
        db.insert("tasks", task(1, "w1", 30, 100)).unwrap();
        db.insert("tasks", task(2, "w1", 8, 200)).unwrap();
        db.insert("tasks", task(3, "w2", 12, 300)).unwrap();
        let snapshot = db.snapshot();
        let schema = db.table("tasks").unwrap().schema();
        let row = task(9, "w1", 1, 400);
        let update = UpdateContext { table: "tasks", row: &row, schema, timestamp: 400 };
        let cases = [
            ("MAXSUM(tasks.hours BY tasks.worker)", Value::Int(38)),
            ("MINSUM(tasks.hours BY tasks.worker)", Value::Int(12)),
            ("MAXCOUNT(tasks BY tasks.worker)", Value::Int(2)),
            ("MINCOUNT(tasks BY tasks.worker)", Value::Int(1)),
            (
                "MAXSUM(tasks.hours BY tasks.worker WITHIN 150 OF tasks.ts)",
                Value::Int(12), // anchor 400: only ts=300 qualifies
            ),
            (
                "MAXSUM(tasks.hours BY tasks.worker WHERE tasks.worker = 'w2')",
                Value::Int(12),
            ),
        ];
        for (src, expected) in cases {
            let e = crate::parse::parse(src).unwrap();
            assert_eq!(evaluate_expr(&e, &snapshot, &update).unwrap(), expected, "{src}");
        }
        // As a constraint: the invariant gates further w1 work.
        let c = Constraint::parse(
            "flsa-invariant",
            ConstraintScope::Regulation,
            "MAXSUM(tasks.hours BY tasks.worker) + $hours <= 40",
        )
        .unwrap();
        assert!(check(&db, &c, &task(9, "w1", 2, 400), 400));
        assert!(!check(&db, &c, &task(9, "w1", 3, 400), 400));
    }

    #[test]
    fn grouped_aggregate_over_empty_table_is_null() {
        let db = tasks_db();
        let snapshot = db.snapshot();
        let schema = db.table("tasks").unwrap().schema();
        let row = task(1, "w", 1, 1);
        let update = UpdateContext { table: "tasks", row: &row, schema, timestamp: 1 };
        let e = crate::parse::parse("MAXSUM(tasks.hours BY tasks.worker)").unwrap();
        assert_eq!(evaluate_expr(&e, &snapshot, &update).unwrap(), Value::Null);
    }

    #[test]
    fn constraint_over_snapshot_not_live_state() {
        // Evaluation against an older snapshot ignores newer rows.
        let mut db = tasks_db();
        db.insert("tasks", task(1, "w1", 30, 100)).unwrap();
        let v1 = db.version();
        db.insert("tasks", task(2, "w1", 30, 200)).unwrap();
        let old_snapshot = db.snapshot_at(v1).unwrap();
        let schema = db.table("tasks").unwrap().schema();
        let row = task(3, "w1", 10, 300);
        let update = UpdateContext { table: "tasks", row: &row, schema, timestamp: 300 };
        // Against v1 (30h existing): accept. Against live (60h): reject.
        assert!(evaluate(&flsa(), &old_snapshot, &update).unwrap());
        assert!(!evaluate(&flsa(), &db.snapshot(), &update).unwrap());
    }
}
