//! Expression AST for constraints and regulations.

use prever_storage::Value;

/// Aggregate functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggFunc {
    /// Row count.
    Count,
    /// Sum of a numeric column.
    Sum,
    /// Minimum of a column.
    Min,
    /// Maximum of a column.
    Max,
    /// Average (integer division of SUM by COUNT).
    Avg,
}

impl AggFunc {
    /// The surface-syntax keyword.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        }
    }
}

/// A sliding time window anchored at the update's timestamp: rows whose
/// `column` lies in `(update_ts − duration, update_ts]` qualify.
///
/// This is the paper's "temporal constraints on sliding time windows,
/// e.g., workers cannot work more than 40 hours a week".
#[derive(Clone, Debug, PartialEq)]
pub struct TimeWindow {
    /// The timestamp column the window filters on.
    pub column: String,
    /// Window length in timestamp units (e.g. 604800 s = 1 week).
    pub duration: u64,
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (integer)
    Div,
    /// `%`
    Mod,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND` (three-valued)
    And,
    /// `OR` (three-valued)
    Or,
}

impl BinOp {
    /// The surface-syntax token.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        }
    }
}

/// A constraint expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// `$name` — a field of the incoming update.
    Field(String),
    /// `table.column` — a column of the row currently bound by the
    /// enclosing aggregate's scan.
    Column {
        /// Table name (must match the aggregate's table).
        table: String,
        /// Column name.
        column: String,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Logical negation (three-valued).
    Not(Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull {
        /// Operand.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// Aggregate over a table scan.
    Aggregate {
        /// Function.
        func: AggFunc,
        /// Table scanned.
        table: String,
        /// Column aggregated (`None` only for COUNT).
        column: Option<String>,
        /// Optional row filter (may reference `$fields` and
        /// `table.column`s).
        filter: Option<Box<Expr>>,
        /// Optional sliding window anchored at the update timestamp.
        window: Option<TimeWindow>,
    },
    /// `EXISTS(table WHERE pred)` — true iff any row matches. The
    /// filter may reference columns of *enclosing* scans (correlated),
    /// which is how SQL semi-joins are expressed here — the "JOIN …
    /// expressions" extension the paper's §5 calls for.
    Exists {
        /// Table scanned.
        table: String,
        /// Optional row filter.
        filter: Option<Box<Expr>>,
    },
    /// A GROUP BY bound: aggregate per group, then reduce across groups
    /// — e.g. `MAXSUM(tasks.hours BY tasks.worker) <= 40` states the
    /// invariant "no worker's total exceeds 40" in one expression (the
    /// "GROUP BY … aggregate expressions" extension of §5).
    GroupedAggregate {
        /// Per-group function (`Sum` or `Count`).
        func: AggFunc,
        /// Table scanned.
        table: String,
        /// Aggregated column (`None` only for COUNT).
        column: Option<String>,
        /// Grouping column.
        group_by: String,
        /// Optional row filter.
        filter: Option<Box<Expr>>,
        /// Optional sliding window anchored at the update timestamp.
        window: Option<TimeWindow>,
        /// Cross-group reduction.
        reduce: GroupReduce,
    },
}

/// How per-group aggregates are reduced across groups.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GroupReduce {
    /// The maximum group value (for upper-bound invariants).
    Max,
    /// The minimum group value (for lower-bound invariants).
    Min,
}

impl Expr {
    /// Convenience: integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Value::Int(v))
    }

    /// Convenience: update-field reference.
    pub fn field(name: &str) -> Expr {
        Expr::Field(name.to_string())
    }

    /// Convenience: binary node.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
    }

    /// Tables referenced by aggregates anywhere in the expression — the
    /// constraint's read set, used by the federated planner to decide
    /// which data managers must participate in verification.
    pub fn referenced_tables(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let Expr::Aggregate { table, .. }
            | Expr::Exists { table, .. }
            | Expr::GroupedAggregate { table, .. } = e
            {
                if !out.contains(&table.as_str()) {
                    out.push(table.as_str());
                }
            }
        });
        out
    }

    /// Update fields (`$name`) referenced anywhere in the expression.
    pub fn referenced_fields(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let Expr::Field(name) = e {
                if !out.contains(&name.as_str()) {
                    out.push(name.as_str());
                }
            }
        });
        out
    }

    fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Binary { lhs, rhs, .. } => {
                lhs.visit(f);
                rhs.visit(f);
            }
            Expr::Not(e) | Expr::Neg(e) => e.visit(f),
            Expr::IsNull { expr, .. } => expr.visit(f),
            Expr::Aggregate { filter, .. }
            | Expr::Exists { filter, .. }
            | Expr::GroupedAggregate { filter, .. } => {
                if let Some(filter) = filter {
                    filter.visit(f);
                }
            }
            Expr::Literal(_) | Expr::Field(_) | Expr::Column { .. } => {}
        }
    }
}

impl std::fmt::Display for Expr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Field(name) => write!(f, "${name}"),
            Expr::Column { table, column } => write!(f, "{table}.{column}"),
            Expr::Binary { op, lhs, rhs } => write!(f, "({lhs} {} {rhs})", op.symbol()),
            Expr::Not(e) => write!(f, "(NOT {e})"),
            Expr::Neg(e) => write!(f, "(-{e})"),
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            Expr::Aggregate { func, table, column, filter, window } => {
                write!(f, "{}({table}", func.name())?;
                if let Some(c) = column {
                    write!(f, ".{c}")?;
                }
                if let Some(p) = filter {
                    write!(f, " WHERE {p}")?;
                }
                if let Some(w) = window {
                    write!(f, " WITHIN {} OF {table}.{}", w.duration, w.column)?;
                }
                write!(f, ")")
            }
            Expr::Exists { table, filter } => {
                write!(f, "EXISTS({table}")?;
                if let Some(p) = filter {
                    write!(f, " WHERE {p}")?;
                }
                write!(f, ")")
            }
            Expr::GroupedAggregate { func, table, column, group_by, filter, window, reduce } => {
                let prefix = match reduce {
                    GroupReduce::Max => "MAX",
                    GroupReduce::Min => "MIN",
                };
                write!(f, "{prefix}{}({table}", func.name())?;
                if let Some(c) = column {
                    write!(f, ".{c}")?;
                }
                write!(f, " BY {table}.{group_by}")?;
                if let Some(p) = filter {
                    write!(f, " WHERE {p}")?;
                }
                if let Some(w) = window {
                    write!(f, " WITHIN {} OF {table}.{}", w.duration, w.column)?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flsa() -> Expr {
        // SUM(tasks.hours WHERE tasks.worker = $worker WITHIN 604800 OF tasks.ts) + $hours <= 40
        Expr::bin(
            BinOp::Le,
            Expr::bin(
                BinOp::Add,
                Expr::Aggregate {
                    func: AggFunc::Sum,
                    table: "tasks".into(),
                    column: Some("hours".into()),
                    filter: Some(Box::new(Expr::bin(
                        BinOp::Eq,
                        Expr::Column { table: "tasks".into(), column: "worker".into() },
                        Expr::field("worker"),
                    ))),
                    window: Some(TimeWindow { column: "ts".into(), duration: 604_800 }),
                },
                Expr::field("hours"),
            ),
            Expr::int(40),
        )
    }

    #[test]
    fn referenced_tables_and_fields() {
        let e = flsa();
        assert_eq!(e.referenced_tables(), vec!["tasks"]);
        let mut fields = e.referenced_fields();
        fields.sort();
        assert_eq!(fields, vec!["hours", "worker"]);
    }

    #[test]
    fn display_roundtrips_through_parser() {
        let e = flsa();
        let text = e.to_string();
        let reparsed = crate::parse::parse(&text).unwrap();
        assert_eq!(reparsed, e);
    }
}
