//! Read-only queries: the same expression language, evaluated without
//! an incoming update.
//!
//! §3.1 notes data managers are "responsible for … responding to
//! queries" even though the paper's focus is updates. This module
//! evaluates any update-free expression (aggregates, grouped
//! aggregates, EXISTS) against a snapshot — the query path that
//! `Pipeline::query` exposes with ledger-anchored freshness.

use crate::ast::Expr;
use crate::eval::{evaluate_expr, UpdateContext};
use crate::{ConstraintError, Result};
use prever_storage::{Row, Schema, Snapshot, Value};

/// Evaluates a read-only expression at `anchor_ts` (the timestamp
/// sliding windows anchor to — "as of now").
///
/// Expressions referencing update fields (`$name`) are rejected: there
/// is no update in a query.
pub fn evaluate_query(expr: &Expr, snapshot: &Snapshot<'_>, anchor_ts: u64) -> Result<Value> {
    if let Some(field) = expr.referenced_fields().first() {
        return Err(ConstraintError::UnknownField(format!(
            "{field} (queries cannot reference update fields)"
        )));
    }
    // A dummy empty-row context: $fields are already ruled out, and the
    // schema/row are never consulted for them.
    let schema = Schema::new(
        vec![prever_storage::Column::new("_q", prever_storage::ColumnType::Uint)],
        &["_q"],
    )
    .expect("static schema");
    let row = Row::new(vec![Value::Uint(0)]);
    let ctx = UpdateContext { table: "_query", row: &row, schema: &schema, timestamp: anchor_ts };
    evaluate_expr(expr, snapshot, &ctx)
}

/// Parses and evaluates query text in one step.
pub fn query(src: &str, snapshot: &Snapshot<'_>, anchor_ts: u64) -> Result<Value> {
    evaluate_query(&crate::parse::parse(src)?, snapshot, anchor_ts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prever_storage::{Column, ColumnType, Database};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "tasks",
            Schema::new(
                vec![
                    Column::new("id", ColumnType::Uint),
                    Column::new("worker", ColumnType::Str),
                    Column::new("hours", ColumnType::Uint),
                    Column::new("ts", ColumnType::Timestamp),
                ],
                &["id"],
            )
            .unwrap(),
        )
        .unwrap();
        for (id, worker, hours, ts) in
            [(1u64, "a", 10u64, 100u64), (2, "a", 20, 200), (3, "b", 5, 300)]
        {
            db.insert(
                "tasks",
                Row::new(vec![id.into(), worker.into(), hours.into(), Value::Timestamp(ts)]),
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn aggregates_and_grouped_queries() {
        let db = db();
        let snapshot = db.snapshot();
        assert_eq!(query("SUM(tasks.hours)", &snapshot, 1000).unwrap(), Value::Int(35));
        assert_eq!(query("COUNT(tasks)", &snapshot, 1000).unwrap(), Value::Int(3));
        assert_eq!(
            query("MAXSUM(tasks.hours BY tasks.worker)", &snapshot, 1000).unwrap(),
            Value::Int(30)
        );
        assert_eq!(
            query("EXISTS(tasks WHERE tasks.hours > 15)", &snapshot, 1000).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn windows_anchor_at_the_query_timestamp() {
        let db = db();
        let snapshot = db.snapshot();
        // Window of 150 at anchor 300: rows with ts in (150, 300].
        assert_eq!(
            query("SUM(tasks.hours WITHIN 150 OF tasks.ts)", &snapshot, 300).unwrap(),
            Value::Int(25)
        );
        assert_eq!(
            query("SUM(tasks.hours WITHIN 150 OF tasks.ts)", &snapshot, 1000).unwrap(),
            Value::Null,
            "everything aged out"
        );
    }

    #[test]
    fn update_fields_rejected() {
        let db = db();
        let snapshot = db.snapshot();
        assert!(matches!(
            query("SUM(tasks.hours WHERE tasks.worker = $worker)", &snapshot, 100),
            Err(ConstraintError::UnknownField(_))
        ));
    }
}
