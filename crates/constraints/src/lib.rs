//! # prever-constraints
//!
//! The constraint and regulation language of PReVer.
//!
//! Section 3.2 of the paper defines a constraint as "a Boolean function
//! computed over the database and an incoming update" that "expresses a
//! policy for accepting or rejecting incoming updates", names declarative
//! query languages as the natural expression vehicle, and singles out
//! *temporal* constraints on sliding windows ("workers cannot work more
//! than 40 hours a week") as the regulation shape that matters.
//!
//! This crate provides exactly that:
//!
//! * [`ast`] — expressions over (database snapshot, incoming update):
//!   arithmetic, three-valued boolean logic, comparisons, and aggregates
//!   (`COUNT`/`SUM`/`MIN`/`MAX`/`AVG`) with `WHERE` filters and sliding
//!   time windows;
//! * [`parse`] — a small text syntax, so regulations read like the paper
//!   writes them (plus the §5 future-work extensions: `EXISTS`
//!   semi-joins — including correlated ones — and `MAXSUM`/`MINSUM`
//!   GROUP-BY bounds):
//!
//!   ```text
//!   SUM(tasks.hours WHERE tasks.worker = $worker
//!       WITHIN 604800 OF tasks.ts) + $hours <= 40
//!   ```
//!
//! * [`eval`] — the reference evaluator against a storage [`Snapshot`];
//! * [`incremental`] — maintained aggregates that answer bound
//!   constraints in O(1) per update (the paper's "efficient incremental
//!   techniques"), with an ablation bench comparing both paths;
//! * [`Constraint`] — a named, scoped (internal constraint vs. external
//!   regulation) boolean policy.
//!
//! [`Snapshot`]: prever_storage::Snapshot

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod eval;
pub mod incremental;
pub mod parse;
pub mod query;

pub use ast::{AggFunc, Expr, GroupReduce, TimeWindow};
pub use eval::{evaluate, evaluate_expr, UpdateContext};
pub use incremental::MaintainedAggregate;
pub use query::{evaluate_query, query};

use prever_storage::StorageError;

/// Who authored a constraint (paper §3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConstraintScope {
    /// Internal constraint, written by the data owner; scope limited to
    /// that owner's database(s).
    Internal,
    /// Regulation, issued by an external authority; may span the
    /// databases of multiple data owners.
    Regulation,
}

/// A named boolean policy over (database, update).
#[derive(Clone, Debug, PartialEq)]
pub struct Constraint {
    /// Human-readable name ("FLSA-40h").
    pub name: String,
    /// Internal constraint or external regulation.
    pub scope: ConstraintScope,
    /// The boolean expression; the update is accepted iff it evaluates
    /// to TRUE (NULL rejects, matching SQL CHECK-constraint semantics
    /// inverted for safety: unknown means *not allowed*).
    pub expr: Expr,
}

impl Constraint {
    /// Builds a constraint from source text.
    pub fn parse(name: &str, scope: ConstraintScope, src: &str) -> Result<Self> {
        Ok(Constraint { name: name.to_string(), scope, expr: parse::parse(src)? })
    }
}

/// Errors produced by parsing or evaluating constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstraintError {
    /// Syntax error with position and message.
    Parse {
        /// Byte offset in the source.
        at: usize,
        /// Description.
        msg: String,
    },
    /// An update field (`$name`) not present in the update's schema.
    UnknownField(String),
    /// Operands had incompatible types.
    TypeMismatch {
        /// What was being computed.
        op: &'static str,
        /// Description of the operands.
        detail: String,
    },
    /// Integer division by zero.
    DivisionByZero,
    /// Arithmetic overflow.
    Overflow,
    /// Underlying storage failure (unknown table/column).
    Storage(StorageError),
}

impl From<StorageError> for ConstraintError {
    fn from(e: StorageError) -> Self {
        ConstraintError::Storage(e)
    }
}

impl std::fmt::Display for ConstraintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConstraintError::Parse { at, msg } => write!(f, "parse error at byte {at}: {msg}"),
            ConstraintError::UnknownField(name) => write!(f, "unknown update field ${name}"),
            ConstraintError::TypeMismatch { op, detail } => {
                write!(f, "type mismatch in {op}: {detail}")
            }
            ConstraintError::DivisionByZero => write!(f, "division by zero"),
            ConstraintError::Overflow => write!(f, "arithmetic overflow"),
            ConstraintError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for ConstraintError {}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, ConstraintError>;
