//! Incrementally maintained aggregates.
//!
//! Research Challenge 2 notes that "in a dynamic setting, PReVer can
//! benefit from the efficient incremental techniques". Re-scanning the
//! table per update makes constraint verification O(n); a maintained
//! aggregate answers the dominant constraint shape — a grouped
//! SUM/COUNT compared against a bound — in O(log g) per update, where
//! `g` is the number of groups.
//!
//! The ablation bench (E2/E10) compares this path against the reference
//! evaluator on identical workloads.

use crate::ast::AggFunc;
use crate::{ConstraintError, Result};
use prever_storage::{ChangeKind, ChangeRecord, Value};
use std::collections::BTreeMap;

/// A maintained `SUM`/`COUNT` over a table, grouped by one column,
/// optionally restricted to a sliding time window.
///
/// Windowed mode keeps per-group event lists and prunes lazily; the
/// unwindowed mode keeps one scalar per group.
#[derive(Clone, Debug)]
pub struct MaintainedAggregate {
    table: String,
    func: AggFunc,
    group_column: usize,
    value_column: Option<usize>,
    window: Option<WindowState>,
    totals: BTreeMap<Value, i128>,
}

#[derive(Clone, Debug)]
struct WindowState {
    ts_column: usize,
    duration: u64,
    /// Per group: (timestamp, contribution) events, oldest first.
    events: BTreeMap<Value, Vec<(u64, i128)>>,
}

impl MaintainedAggregate {
    /// Creates a maintained aggregate.
    ///
    /// * `table` — table to watch in the change stream;
    /// * `func` — `Sum` or `Count` (others need full recomputation and
    ///   are rejected);
    /// * `group_column` — index of the grouping column;
    /// * `value_column` — index of the summed column (`None` for COUNT);
    /// * `window` — optional `(timestamp_column_index, duration)`.
    pub fn new(
        table: &str,
        func: AggFunc,
        group_column: usize,
        value_column: Option<usize>,
        window: Option<(usize, u64)>,
    ) -> Result<Self> {
        match func {
            AggFunc::Sum | AggFunc::Count => {}
            other => {
                return Err(ConstraintError::TypeMismatch {
                    op: "maintained aggregate",
                    detail: format!("{} cannot be maintained incrementally", other.name()),
                })
            }
        }
        if func == AggFunc::Sum && value_column.is_none() {
            return Err(ConstraintError::TypeMismatch {
                op: "maintained aggregate",
                detail: "SUM requires a value column".into(),
            });
        }
        Ok(MaintainedAggregate {
            table: table.to_string(),
            func,
            group_column,
            value_column,
            window: window.map(|(ts_column, duration)| WindowState {
                ts_column,
                duration,
                events: BTreeMap::new(),
            }),
            totals: BTreeMap::new(),
        })
    }

    /// Applies one change record from the database change log.
    /// Changes to other tables are ignored.
    pub fn apply(&mut self, change: &ChangeRecord) -> Result<()> {
        if change.table != self.table {
            return Ok(());
        }
        if let Some(before) = &change.before {
            if matches!(change.kind, ChangeKind::Update | ChangeKind::Delete) {
                let (group, contribution, ts) = self.extract(before)?;
                self.retract(group, contribution, ts);
            }
        }
        if let Some(after) = &change.after {
            if matches!(change.kind, ChangeKind::Insert | ChangeKind::Update) {
                let (group, contribution, ts) = self.extract(after)?;
                self.add(group, contribution, ts);
            }
        }
        Ok(())
    }

    fn extract(&self, row: &prever_storage::Row) -> Result<(Value, i128, u64)> {
        let group = row.values[self.group_column].clone();
        let contribution = match self.func {
            AggFunc::Count => 1,
            AggFunc::Sum => {
                let idx = self.value_column.expect("checked in new");
                row.values[idx]
                    .as_i128()
                    .ok_or_else(|| ConstraintError::TypeMismatch {
                        op: "maintained SUM",
                        detail: format!("non-numeric value {}", row.values[idx]),
                    })?
            }
            _ => unreachable!("checked in new"),
        };
        let ts = match &self.window {
            Some(w) => row.values[w.ts_column]
                .as_i128()
                .and_then(|v| u64::try_from(v).ok())
                .ok_or_else(|| ConstraintError::TypeMismatch {
                    op: "maintained window",
                    detail: "non-numeric timestamp".into(),
                })?,
            None => 0,
        };
        Ok((group, contribution, ts))
    }

    fn add(&mut self, group: Value, contribution: i128, ts: u64) {
        if let Some(w) = &mut self.window {
            w.events.entry(group).or_default().push((ts, contribution));
        } else {
            *self.totals.entry(group).or_insert(0) += contribution;
        }
    }

    fn retract(&mut self, group: Value, contribution: i128, ts: u64) {
        if let Some(w) = &mut self.window {
            if let Some(events) = w.events.get_mut(&group) {
                if let Some(pos) = events.iter().position(|&(t, c)| t == ts && c == contribution) {
                    events.remove(pos);
                }
            }
        } else {
            *self.totals.entry(group).or_insert(0) -= contribution;
        }
    }

    /// The aggregate value for `group`, evaluated `at` the given anchor
    /// timestamp (only meaningful for windowed aggregates; pass the
    /// update's timestamp). Zero for unseen groups.
    pub fn value(&self, group: &Value, at: u64) -> i128 {
        match &self.window {
            None => self.totals.get(group).copied().unwrap_or(0),
            Some(w) => {
                let lo = at.saturating_sub(w.duration);
                w.events
                    .get(group)
                    .map(|events| {
                        events
                            .iter()
                            .filter(|&&(t, _)| t > lo && t <= at)
                            .map(|&(_, c)| c)
                            .sum()
                    })
                    .unwrap_or(0)
            }
        }
    }

    /// Checks a bound constraint in O(group): would adding
    /// `new_contribution` for `group` at time `at` keep the aggregate
    /// `<= bound`?
    pub fn check_upper_bound(&self, group: &Value, new_contribution: i128, at: u64, bound: i128) -> bool {
        self.value(group, at) + new_contribution <= bound
    }

    /// Prunes window events older than `horizon − duration` (call
    /// periodically with a low-watermark timestamp).
    pub fn prune(&mut self, horizon: u64) {
        if let Some(w) = &mut self.window {
            let cutoff = horizon.saturating_sub(w.duration);
            for events in w.events.values_mut() {
                events.retain(|&(t, _)| t > cutoff);
            }
            w.events.retain(|_, v| !v.is_empty());
        }
    }

    /// Number of groups currently tracked.
    pub fn group_count(&self) -> usize {
        match &self.window {
            Some(w) => w.events.len(),
            None => self.totals.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prever_storage::{Column, ColumnType, Database, Key, Row, Schema};

    fn tasks_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "tasks",
            Schema::new(
                vec![
                    Column::new("id", ColumnType::Uint),
                    Column::new("worker", ColumnType::Str),
                    Column::new("hours", ColumnType::Uint),
                    Column::new("ts", ColumnType::Timestamp),
                ],
                &["id"],
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    fn task(id: u64, worker: &str, hours: u64, ts: u64) -> Row {
        Row::new(vec![id.into(), worker.into(), hours.into(), Value::Timestamp(ts)])
    }

    /// worker column = 1, hours = 2, ts = 3.
    fn flsa_aggregate() -> MaintainedAggregate {
        MaintainedAggregate::new("tasks", AggFunc::Sum, 1, Some(2), Some((3, 604_800))).unwrap()
    }

    #[test]
    fn rejects_unmaintainable_functions() {
        assert!(MaintainedAggregate::new("t", AggFunc::Min, 0, Some(1), None).is_err());
        assert!(MaintainedAggregate::new("t", AggFunc::Sum, 0, None, None).is_err());
        assert!(MaintainedAggregate::new("t", AggFunc::Count, 0, None, None).is_ok());
    }

    #[test]
    fn tracks_inserts_updates_deletes() {
        let mut db = tasks_db();
        let mut agg = MaintainedAggregate::new("tasks", AggFunc::Sum, 1, Some(2), None).unwrap();
        db.insert("tasks", task(1, "w1", 10, 100)).unwrap();
        db.insert("tasks", task(2, "w1", 5, 200)).unwrap();
        db.insert("tasks", task(3, "w2", 7, 200)).unwrap();
        for c in db.change_log().to_vec() {
            agg.apply(&c).unwrap();
        }
        assert_eq!(agg.value(&Value::Str("w1".into()), 0), 15);
        assert_eq!(agg.value(&Value::Str("w2".into()), 0), 7);
        assert_eq!(agg.value(&Value::Str("unknown".into()), 0), 0);

        let v = db.version();
        db.update("tasks", &Key(vec![Value::Uint(1)]), task(1, "w1", 20, 100)).unwrap();
        db.delete("tasks", &Key(vec![Value::Uint(2)])).unwrap();
        for c in db.changes_since(v).to_vec() {
            agg.apply(&c).unwrap();
        }
        assert_eq!(agg.value(&Value::Str("w1".into()), 0), 20);
    }

    #[test]
    fn windowed_aggregate_matches_reference_evaluator() {
        // The incremental path must agree with the full-scan path on a
        // randomized-ish workload.
        let mut db = tasks_db();
        let mut agg = flsa_aggregate();
        let week = 604_800u64;
        let mut id = 0u64;
        for (worker, hours, ts) in [
            ("w1", 8, 100),
            ("w1", 9, week / 2),
            ("w2", 40, week / 2),
            ("w1", 7, week + 50),
            ("w1", 3, week + 200),
        ] {
            id += 1;
            db.insert("tasks", task(id, worker, hours, ts)).unwrap();
        }
        for c in db.change_log().to_vec() {
            agg.apply(&c).unwrap();
        }
        // Reference: evaluate the FLSA SUM at various anchors.
        let reference = |worker: &str, at: u64| -> i128 {
            db.snapshot()
                .scan("tasks")
                .unwrap()
                .filter(|(_, r)| r.values[1] == Value::Str(worker.into()))
                .filter(|(_, r)| {
                    let ts = r.values[3].as_i128().unwrap() as u64;
                    ts > at.saturating_sub(week) && ts <= at
                })
                .map(|(_, r)| r.values[2].as_i128().unwrap())
                .sum()
        };
        for worker in ["w1", "w2", "w3"] {
            for at in [0, 100, week / 2, week, week + 100, week + 500, 2 * week + 300] {
                assert_eq!(
                    agg.value(&Value::Str(worker.into()), at),
                    reference(worker, at),
                    "worker={worker} at={at}"
                );
            }
        }
    }

    #[test]
    fn check_upper_bound_is_the_flsa_gate() {
        let mut db = tasks_db();
        let mut agg = flsa_aggregate();
        db.insert("tasks", task(1, "w1", 35, 1000)).unwrap();
        for c in db.change_log().to_vec() {
            agg.apply(&c).unwrap();
        }
        let w1 = Value::Str("w1".into());
        assert!(agg.check_upper_bound(&w1, 5, 2000, 40));
        assert!(!agg.check_upper_bound(&w1, 6, 2000, 40));
        // After the window slides past the old entry, the budget resets.
        assert!(agg.check_upper_bound(&w1, 40, 1000 + 604_801, 40));
    }

    #[test]
    fn prune_discards_expired_events_without_changing_answers() {
        let mut db = tasks_db();
        let mut agg = flsa_aggregate();
        let week = 604_800u64;
        db.insert("tasks", task(1, "w1", 10, 100)).unwrap();
        db.insert("tasks", task(2, "w1", 10, 2 * week)).unwrap();
        for c in db.change_log().to_vec() {
            agg.apply(&c).unwrap();
        }
        let w1 = Value::Str("w1".into());
        let now = 2 * week + 10;
        let before = agg.value(&w1, now);
        agg.prune(now);
        assert_eq!(agg.value(&w1, now), before);
        assert_eq!(before, 10);
    }

    #[test]
    fn ignores_other_tables() {
        let mut db = tasks_db();
        db.create_table(
            "other",
            Schema::new(vec![Column::new("k", ColumnType::Uint)], &["k"]).unwrap(),
        )
        .unwrap();
        let mut agg = MaintainedAggregate::new("tasks", AggFunc::Count, 1, None, None).unwrap();
        db.insert("other", Row::new(vec![Value::Uint(1)])).unwrap();
        for c in db.change_log().to_vec() {
            agg.apply(&c).unwrap();
        }
        assert_eq!(agg.group_count(), 0);
    }
}
