//! # prever-wire
//!
//! The length-framed, versioned request/response protocol between
//! PReVer clients and the serving front end (DESIGN.md §14).
//!
//! Every message travels as one [`Frame`]:
//!
//! ```text
//! magic   u16   0x5057 ("PW")
//! version u8    PROTOCOL_VERSION
//! kind    u8    message discriminant
//! len     u32   body length (≤ MAX_BODY)
//! crc     u32   CRC-32 over magic‖version‖kind‖len‖body
//! body    [u8; len]
//! ```
//!
//! Requests carry a **tenant id** (the admission-control unit), a
//! **priority class**, and an absolute virtual-time **deadline** so the
//! server can shed work that expired while queued instead of spending a
//! consensus slot on it.
//!
//! ## Sessions and failover (DESIGN.md §15)
//!
//! A client opens its connection with [`Request::Hello`] carrying a
//! client-chosen session token. After a gateway failure it re-attaches
//! to a *different* gateway with [`Request::Resume`], naming the same
//! token plus the highest command id it has seen acked — the new
//! gateway answers with [`Response::SessionAck`] stamped with its own
//! applied ledger position, and in-flight retries then flow through
//! the ordinary idempotency gate (retries reuse command ids).
//!
//! ## Read-your-writes replica reads
//!
//! [`Request::ReadFresh`] asks any replica for the commit status of a
//! command id *together with a freshness proof*: the reply
//! ([`Response::ReadFreshResult`]) is stamped with the replica's
//! applied ledger position and its hash-chain digest at that position.
//! The client checks the position against its own high-water mark (the
//! highest slot it has been acked) and rejects stale replicas; two
//! replies claiming the same position with different digests are
//! fork evidence.
//!
//! ## Hostile-input discipline
//!
//! Decoding mirrors `ChangeRecord::decode`: every read is
//! bounds-checked, the length prefix is validated against [`MAX_BODY`]
//! *before* any allocation, the CRC is verified before the body is
//! parsed, and every failure is a loud [`WireError`] — never a panic,
//! never a partial value, never an attacker-controlled allocation.
//! [`WireError::Incomplete`] is the only "wait for more bytes" signal,
//! so a stream reassembler can distinguish short reads from corruption.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bytes::Bytes;
use prever_storage::crc32;

/// Frame magic: "PW" little-endian.
pub const MAGIC: u16 = 0x5057;
/// Current protocol version. Decoders reject any other value loudly
/// ([`WireError::VersionSkew`]) — version negotiation is a re-dial, not
/// a silent downgrade.
pub const PROTOCOL_VERSION: u8 = 1;
/// Fixed frame header size: magic(2) + version(1) + kind(1) + len(4) +
/// crc(4).
pub const HEADER_LEN: usize = 12;
/// Upper bound on a frame body. Checked before any allocation, so a
/// hostile length prefix cannot make the decoder reserve gigabytes.
pub const MAX_BODY: usize = 1 << 20;
/// Upper bound on commands in one [`Request::SubmitBatch`].
pub const MAX_BATCH: usize = 4_096;
/// Upper bound on a single command payload.
pub const MAX_PAYLOAD: usize = 64 << 10;

/// Decode failures. Everything except [`WireError::Incomplete`] is a
/// protocol violation: the connection should be dropped, not retried.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Not enough bytes yet — read more and retry.
    Incomplete,
    /// The first two bytes are not [`MAGIC`].
    BadMagic,
    /// The frame's version byte is not [`PROTOCOL_VERSION`].
    VersionSkew,
    /// The length prefix exceeds [`MAX_BODY`] (or an inner length
    /// exceeds its bound) — rejected before allocating.
    Oversize,
    /// CRC mismatch: the frame was damaged in flight.
    BadCrc,
    /// The kind byte or body structure is invalid.
    Malformed,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Incomplete => write!(f, "incomplete frame"),
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::VersionSkew => write!(f, "protocol version skew"),
            WireError::Oversize => write!(f, "length prefix exceeds bound"),
            WireError::BadCrc => write!(f, "frame crc mismatch"),
            WireError::Malformed => write!(f, "malformed frame body"),
        }
    }
}

/// Request priority class, highest first. The degradation ladder sheds
/// [`Class::Low`] tenants first; [`Class::High`] submissions ride the
/// consensus urgent path (partial-batch cut, no fill delay).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Class {
    /// Latency-critical (regulator queries, cross-platform settlement).
    High,
    /// Default traffic.
    Normal,
    /// Bulk / best-effort (analytics backfill).
    Low,
}

impl Class {
    fn to_u8(self) -> u8 {
        match self {
            Class::High => 0,
            Class::Normal => 1,
            Class::Low => 2,
        }
    }

    fn from_u8(b: u8) -> Result<Class, WireError> {
        match b {
            0 => Ok(Class::High),
            1 => Ok(Class::Normal),
            2 => Ok(Class::Low),
            _ => Err(WireError::Malformed),
        }
    }

    /// Short display name ("high" / "normal" / "low").
    pub fn name(&self) -> &'static str {
        match self {
            Class::High => "high",
            Class::Normal => "normal",
            Class::Low => "low",
        }
    }
}

/// One update submission: a globally unique command id plus its payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Submission {
    /// Command id (retries reuse the id, so the ordered log dedups).
    pub id: u64,
    /// Opaque command payload.
    pub payload: Bytes,
}

/// A client request. All variants carry the tenant id; submissions also
/// carry a class and an absolute virtual-µs deadline (0 = none).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Submit one command for ordered execution.
    Submit {
        /// Admission-control tenant.
        tenant: u32,
        /// Priority class.
        class: Class,
        /// Absolute deadline in virtual µs (0 = no deadline).
        deadline: u64,
        /// The command.
        submission: Submission,
    },
    /// Submit several commands in one frame (amortized framing).
    SubmitBatch {
        /// Admission-control tenant.
        tenant: u32,
        /// Priority class (applies to every command in the batch).
        class: Class,
        /// Absolute deadline in virtual µs (0 = no deadline).
        deadline: u64,
        /// The commands, at most [`MAX_BATCH`].
        submissions: Vec<Submission>,
    },
    /// Read back the commit status of a previously submitted id.
    Query {
        /// Admission-control tenant.
        tenant: u32,
        /// The command id to look up.
        id: u64,
    },
    /// Fetch the server's chained execution digest (audit anchor).
    AuditDigest {
        /// Admission-control tenant.
        tenant: u32,
    },
    /// Open a session: the first frame on a fresh connection.
    Hello {
        /// Admission-control tenant.
        tenant: u32,
        /// Client-chosen session token (unique per client).
        session: u64,
    },
    /// Re-attach an existing session after a gateway failure.
    Resume {
        /// Admission-control tenant.
        tenant: u32,
        /// The session token from the original `Hello`.
        session: u64,
        /// Highest command id this client has seen acked `Committed`
        /// (0 = none). In-flight retries above this id follow,
        /// reusing their original command ids.
        high_acked: u64,
    },
    /// Read-your-writes query: commit status of `id`, answerable by
    /// any replica, with a freshness stamp the client can check
    /// against `min_slot` (its own high-water mark).
    ReadFresh {
        /// Admission-control tenant.
        tenant: u32,
        /// The command id to look up.
        id: u64,
        /// The client's read-your-writes floor: the reply is only
        /// fresh if the replica has applied at least this many slots.
        min_slot: u64,
    },
}

impl Request {
    /// The request's tenant id.
    pub fn tenant(&self) -> u32 {
        match self {
            Request::Submit { tenant, .. }
            | Request::SubmitBatch { tenant, .. }
            | Request::Query { tenant, .. }
            | Request::AuditDigest { tenant }
            | Request::Hello { tenant, .. }
            | Request::Resume { tenant, .. }
            | Request::ReadFresh { tenant, .. } => *tenant,
        }
    }
}

/// A server response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// The submission was ordered and executed durably.
    Committed {
        /// The command id.
        id: u64,
        /// The consensus slot it executed at.
        slot: u64,
    },
    /// Commit status of a queried id.
    QueryResult {
        /// The queried id.
        id: u64,
        /// Executed slot, if the id has committed.
        slot: Option<u64>,
    },
    /// The chained execution digest (32 bytes).
    AuditDigest {
        /// Digest bytes.
        digest: [u8; 32],
    },
    /// Explicit shed: the server refused the work and names the backoff.
    /// Never a silent queue — an overloaded server always answers.
    Overloaded {
        /// Suggested client backoff in µs before retrying.
        retry_after_us: u64,
        /// The shed command id (0 for non-submissions).
        id: u64,
    },
    /// The request's deadline expired (at arrival or while queued).
    DeadlineExceeded {
        /// The expired command id.
        id: u64,
    },
    /// Malformed or impermissible request (terminal; do not retry).
    Rejected {
        /// Coarse machine-readable reason.
        reason: RejectReason,
    },
    /// Answers `Hello` and `Resume`: the session is attached at this
    /// gateway.
    SessionAck {
        /// The session token being acknowledged.
        session: u64,
        /// True iff this was a `Resume` of a session the gateway had
        /// not seen before (i.e. a failover onto a new gateway).
        resumed: bool,
        /// The gateway's applied ledger position (executed slots) at
        /// ack time — lets the client judge this gateway's freshness
        /// immediately.
        applied_slot: u64,
    },
    /// Answers `ReadFresh`: commit status plus a freshness stamp.
    ReadFreshResult {
        /// The queried id.
        id: u64,
        /// Executed slot, if the id has committed *and* this replica
        /// has applied it.
        slot: Option<u64>,
        /// The replica's applied ledger position (executed slots) at
        /// answer time. `applied_slot < min_slot` means this replica
        /// is stale for the asking client — retry elsewhere.
        applied_slot: u64,
        /// The replica's hash-chain digest over its executed history
        /// at `applied_slot`. Two replies naming the same
        /// `applied_slot` with different digests are fork evidence.
        digest: [u8; 32],
        /// The replica's committed-map eviction floor: per-id commit
        /// records below this slot were evicted once a consensus
        /// checkpoint made them stable. `slot == None` with
        /// `min_slot < floor` therefore does NOT mean the write is
        /// missing — it means the write sits inside the
        /// quorum-certified stable prefix this replica no longer
        /// indexes by id.
        floor: u64,
    },
}

/// Why a request was terminally rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The frame failed to decode.
    BadFrame,
    /// Read service is shed at the current degradation level.
    ReadsDegraded,
    /// The submission duplicates an id that is still in flight.
    DuplicateInFlight,
}

impl RejectReason {
    fn to_u8(self) -> u8 {
        match self {
            RejectReason::BadFrame => 0,
            RejectReason::ReadsDegraded => 1,
            RejectReason::DuplicateInFlight => 2,
        }
    }

    fn from_u8(b: u8) -> Result<RejectReason, WireError> {
        match b {
            0 => Ok(RejectReason::BadFrame),
            1 => Ok(RejectReason::ReadsDegraded),
            2 => Ok(RejectReason::DuplicateInFlight),
            _ => Err(WireError::Malformed),
        }
    }
}

/// A decoded frame: either direction of the protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Client → server.
    Request(Request),
    /// Server → client.
    Response(Response),
}

// Kind bytes. Requests are 0x01.., responses 0x81.. so a corrupted
// direction bit cannot alias a valid peer message.
const K_SUBMIT: u8 = 0x01;
const K_SUBMIT_BATCH: u8 = 0x02;
const K_QUERY: u8 = 0x03;
const K_AUDIT: u8 = 0x04;
const K_HELLO: u8 = 0x05;
const K_RESUME: u8 = 0x06;
const K_READ_FRESH: u8 = 0x07;
const K_COMMITTED: u8 = 0x81;
const K_QUERY_RESULT: u8 = 0x82;
const K_AUDIT_DIGEST: u8 = 0x83;
const K_OVERLOADED: u8 = 0x84;
const K_DEADLINE: u8 = 0x85;
const K_REJECTED: u8 = 0x86;
const K_SESSION_ACK: u8 = 0x87;
const K_READ_FRESH_RESULT: u8 = 0x88;

// ---------------------------------------------------------------------
// Body writer/reader helpers.
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Bounds-checked sequential reader over a frame body.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Malformed)?;
        if end > self.buf.len() {
            return Err(WireError::Malformed);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// The body must be fully consumed — trailing garbage is malformed.
    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed)
        }
    }
}

fn put_submission(out: &mut Vec<u8>, s: &Submission) {
    put_u64(out, s.id);
    put_u32(out, s.payload.len() as u32);
    out.extend_from_slice(&s.payload);
}

fn read_submission(r: &mut Reader<'_>) -> Result<Submission, WireError> {
    let id = r.u64()?;
    let len = r.u32()? as usize;
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversize);
    }
    let payload = Bytes::copy_from_slice(r.take(len)?);
    Ok(Submission { id, payload })
}

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::Request(Request::Submit { .. }) => K_SUBMIT,
            Frame::Request(Request::SubmitBatch { .. }) => K_SUBMIT_BATCH,
            Frame::Request(Request::Query { .. }) => K_QUERY,
            Frame::Request(Request::AuditDigest { .. }) => K_AUDIT,
            Frame::Request(Request::Hello { .. }) => K_HELLO,
            Frame::Request(Request::Resume { .. }) => K_RESUME,
            Frame::Request(Request::ReadFresh { .. }) => K_READ_FRESH,
            Frame::Response(Response::Committed { .. }) => K_COMMITTED,
            Frame::Response(Response::QueryResult { .. }) => K_QUERY_RESULT,
            Frame::Response(Response::AuditDigest { .. }) => K_AUDIT_DIGEST,
            Frame::Response(Response::Overloaded { .. }) => K_OVERLOADED,
            Frame::Response(Response::DeadlineExceeded { .. }) => K_DEADLINE,
            Frame::Response(Response::Rejected { .. }) => K_REJECTED,
            Frame::Response(Response::SessionAck { .. }) => K_SESSION_ACK,
            Frame::Response(Response::ReadFreshResult { .. }) => K_READ_FRESH_RESULT,
        }
    }

    fn body(&self) -> Vec<u8> {
        let mut b = Vec::new();
        match self {
            Frame::Request(Request::Submit { tenant, class, deadline, submission }) => {
                put_u32(&mut b, *tenant);
                b.push(class.to_u8());
                put_u64(&mut b, *deadline);
                put_submission(&mut b, submission);
            }
            Frame::Request(Request::SubmitBatch { tenant, class, deadline, submissions }) => {
                put_u32(&mut b, *tenant);
                b.push(class.to_u8());
                put_u64(&mut b, *deadline);
                put_u32(&mut b, submissions.len() as u32);
                for s in submissions {
                    put_submission(&mut b, s);
                }
            }
            Frame::Request(Request::Query { tenant, id }) => {
                put_u32(&mut b, *tenant);
                put_u64(&mut b, *id);
            }
            Frame::Request(Request::AuditDigest { tenant }) => {
                put_u32(&mut b, *tenant);
            }
            Frame::Request(Request::Hello { tenant, session }) => {
                put_u32(&mut b, *tenant);
                put_u64(&mut b, *session);
            }
            Frame::Request(Request::Resume { tenant, session, high_acked }) => {
                put_u32(&mut b, *tenant);
                put_u64(&mut b, *session);
                put_u64(&mut b, *high_acked);
            }
            Frame::Request(Request::ReadFresh { tenant, id, min_slot }) => {
                put_u32(&mut b, *tenant);
                put_u64(&mut b, *id);
                put_u64(&mut b, *min_slot);
            }
            Frame::Response(Response::Committed { id, slot }) => {
                put_u64(&mut b, *id);
                put_u64(&mut b, *slot);
            }
            Frame::Response(Response::QueryResult { id, slot }) => {
                put_u64(&mut b, *id);
                match slot {
                    Some(s) => {
                        b.push(1);
                        put_u64(&mut b, *s);
                    }
                    None => b.push(0),
                }
            }
            Frame::Response(Response::AuditDigest { digest }) => {
                b.extend_from_slice(digest);
            }
            Frame::Response(Response::Overloaded { retry_after_us, id }) => {
                put_u64(&mut b, *retry_after_us);
                put_u64(&mut b, *id);
            }
            Frame::Response(Response::DeadlineExceeded { id }) => {
                put_u64(&mut b, *id);
            }
            Frame::Response(Response::Rejected { reason }) => {
                b.push(reason.to_u8());
            }
            Frame::Response(Response::SessionAck { session, resumed, applied_slot }) => {
                put_u64(&mut b, *session);
                b.push(u8::from(*resumed));
                put_u64(&mut b, *applied_slot);
            }
            Frame::Response(Response::ReadFreshResult { id, slot, applied_slot, digest, floor }) => {
                put_u64(&mut b, *id);
                match slot {
                    Some(s) => {
                        b.push(1);
                        put_u64(&mut b, *s);
                    }
                    None => b.push(0),
                }
                put_u64(&mut b, *applied_slot);
                b.extend_from_slice(digest);
                put_u64(&mut b, *floor);
            }
        }
        b
    }

    /// Encodes the frame: header (with CRC over header-sans-crc ‖ body)
    /// followed by the body.
    pub fn encode(&self) -> Vec<u8> {
        let body = self.body();
        debug_assert!(body.len() <= MAX_BODY, "encoder produced an oversize body");
        let mut out = Vec::with_capacity(HEADER_LEN + body.len());
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.push(PROTOCOL_VERSION);
        out.push(self.kind());
        put_u32(&mut out, body.len() as u32);
        let mut crc_input = out.clone();
        crc_input.extend_from_slice(&body);
        put_u32(&mut out, crc32(&crc_input));
        out.extend_from_slice(&body);
        out
    }

    /// Decodes one frame from the front of `buf`, returning it and the
    /// number of bytes consumed. [`WireError::Incomplete`] means "read
    /// more and retry"; every other error is terminal for the stream.
    pub fn decode(buf: &[u8]) -> Result<(Frame, usize), WireError> {
        if buf.len() < HEADER_LEN {
            // Reject recognizably-bad prefixes before asking for more
            // bytes: a stream that opens with the wrong magic will never
            // become a valid frame however much is read.
            if buf.len() >= 2 && buf[..2] != MAGIC.to_le_bytes() {
                return Err(WireError::BadMagic);
            }
            if buf.len() >= 3 && buf[2] != PROTOCOL_VERSION {
                return Err(WireError::VersionSkew);
            }
            return Err(WireError::Incomplete);
        }
        if buf[..2] != MAGIC.to_le_bytes() {
            return Err(WireError::BadMagic);
        }
        if buf[2] != PROTOCOL_VERSION {
            return Err(WireError::VersionSkew);
        }
        let kind = buf[3];
        let len = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes")) as usize;
        if len > MAX_BODY {
            return Err(WireError::Oversize);
        }
        let total = HEADER_LEN + len;
        if buf.len() < total {
            return Err(WireError::Incomplete);
        }
        let crc = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes"));
        let mut crc_input = Vec::with_capacity(8 + len);
        crc_input.extend_from_slice(&buf[..8]);
        crc_input.extend_from_slice(&buf[HEADER_LEN..total]);
        if crc != crc32(&crc_input) {
            return Err(WireError::BadCrc);
        }
        let frame = Self::decode_body(kind, &buf[HEADER_LEN..total])?;
        Ok((frame, total))
    }

    fn decode_body(kind: u8, body: &[u8]) -> Result<Frame, WireError> {
        let mut r = Reader::new(body);
        let frame = match kind {
            K_SUBMIT => {
                let tenant = r.u32()?;
                let class = Class::from_u8(r.u8()?)?;
                let deadline = r.u64()?;
                let submission = read_submission(&mut r)?;
                Frame::Request(Request::Submit { tenant, class, deadline, submission })
            }
            K_SUBMIT_BATCH => {
                let tenant = r.u32()?;
                let class = Class::from_u8(r.u8()?)?;
                let deadline = r.u64()?;
                let count = r.u32()? as usize;
                if count > MAX_BATCH {
                    return Err(WireError::Oversize);
                }
                // Capacity is bounded by what the body can actually
                // hold, not by the attacker-controlled count.
                let mut submissions =
                    Vec::with_capacity(count.min(body.len() / 12 + 1));
                for _ in 0..count {
                    submissions.push(read_submission(&mut r)?);
                }
                Frame::Request(Request::SubmitBatch { tenant, class, deadline, submissions })
            }
            K_QUERY => {
                let tenant = r.u32()?;
                let id = r.u64()?;
                Frame::Request(Request::Query { tenant, id })
            }
            K_AUDIT => {
                let tenant = r.u32()?;
                Frame::Request(Request::AuditDigest { tenant })
            }
            K_HELLO => {
                let tenant = r.u32()?;
                let session = r.u64()?;
                Frame::Request(Request::Hello { tenant, session })
            }
            K_RESUME => {
                let tenant = r.u32()?;
                let session = r.u64()?;
                let high_acked = r.u64()?;
                Frame::Request(Request::Resume { tenant, session, high_acked })
            }
            K_READ_FRESH => {
                let tenant = r.u32()?;
                let id = r.u64()?;
                let min_slot = r.u64()?;
                Frame::Request(Request::ReadFresh { tenant, id, min_slot })
            }
            K_COMMITTED => {
                let id = r.u64()?;
                let slot = r.u64()?;
                Frame::Response(Response::Committed { id, slot })
            }
            K_QUERY_RESULT => {
                let id = r.u64()?;
                let slot = match r.u8()? {
                    0 => None,
                    1 => Some(r.u64()?),
                    _ => return Err(WireError::Malformed),
                };
                Frame::Response(Response::QueryResult { id, slot })
            }
            K_AUDIT_DIGEST => {
                let digest: [u8; 32] =
                    r.take(32)?.try_into().map_err(|_| WireError::Malformed)?;
                Frame::Response(Response::AuditDigest { digest })
            }
            K_OVERLOADED => {
                let retry_after_us = r.u64()?;
                let id = r.u64()?;
                Frame::Response(Response::Overloaded { retry_after_us, id })
            }
            K_DEADLINE => {
                let id = r.u64()?;
                Frame::Response(Response::DeadlineExceeded { id })
            }
            K_REJECTED => {
                let reason = RejectReason::from_u8(r.u8()?)?;
                Frame::Response(Response::Rejected { reason })
            }
            K_SESSION_ACK => {
                let session = r.u64()?;
                let resumed = match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::Malformed),
                };
                let applied_slot = r.u64()?;
                Frame::Response(Response::SessionAck { session, resumed, applied_slot })
            }
            K_READ_FRESH_RESULT => {
                let id = r.u64()?;
                let slot = match r.u8()? {
                    0 => None,
                    1 => Some(r.u64()?),
                    _ => return Err(WireError::Malformed),
                };
                let applied_slot = r.u64()?;
                let digest: [u8; 32] =
                    r.take(32)?.try_into().map_err(|_| WireError::Malformed)?;
                let floor = r.u64()?;
                Frame::Response(Response::ReadFreshResult { id, slot, applied_slot, digest, floor })
            }
            _ => return Err(WireError::Malformed),
        };
        r.finish()?;
        Ok(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use proptest::strategy::{BoxedStrategy, Just};

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Request(Request::Submit {
                tenant: 7,
                class: Class::High,
                deadline: 1_000_000,
                submission: Submission { id: 42, payload: Bytes::from(vec![1, 2, 3]) },
            }),
            Frame::Request(Request::SubmitBatch {
                tenant: 2,
                class: Class::Low,
                deadline: 0,
                submissions: vec![
                    Submission { id: 1, payload: Bytes::new() },
                    Submission { id: 2, payload: Bytes::from(vec![0xff; 64]) },
                ],
            }),
            Frame::Request(Request::Query { tenant: 9, id: 77 }),
            Frame::Request(Request::AuditDigest { tenant: 3 }),
            Frame::Request(Request::Hello { tenant: 4, session: 0xdead_beef }),
            Frame::Request(Request::Resume {
                tenant: 4,
                session: 0xdead_beef,
                high_acked: 1_041,
            }),
            Frame::Request(Request::ReadFresh { tenant: 4, id: 1_042, min_slot: 37 }),
            Frame::Response(Response::Committed { id: 42, slot: 12 }),
            Frame::Response(Response::QueryResult { id: 42, slot: Some(12) }),
            Frame::Response(Response::QueryResult { id: 43, slot: None }),
            Frame::Response(Response::AuditDigest { digest: [0xab; 32] }),
            Frame::Response(Response::Overloaded { retry_after_us: 5_000, id: 42 }),
            Frame::Response(Response::DeadlineExceeded { id: 42 }),
            Frame::Response(Response::Rejected { reason: RejectReason::BadFrame }),
            Frame::Response(Response::SessionAck {
                session: 0xdead_beef,
                resumed: true,
                applied_slot: 55,
            }),
            Frame::Response(Response::ReadFreshResult {
                id: 1_042,
                slot: Some(37),
                applied_slot: 55,
                digest: [0xcd; 32],
                floor: 8,
            }),
            Frame::Response(Response::ReadFreshResult {
                id: 1_043,
                slot: None,
                applied_slot: 12,
                digest: [0x11; 32],
                floor: 0,
            }),
        ]
    }

    #[test]
    fn roundtrip_every_variant() {
        for frame in sample_frames() {
            let enc = frame.encode();
            let (dec, used) = Frame::decode(&enc).expect("decode");
            assert_eq!(dec, frame);
            assert_eq!(used, enc.len());
        }
    }

    #[test]
    fn decode_consumes_exactly_one_frame_from_a_stream() {
        let frames = sample_frames();
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&f.encode());
        }
        let mut at = 0;
        for f in &frames {
            let (dec, used) = Frame::decode(&stream[at..]).expect("decode");
            assert_eq!(&dec, f);
            at += used;
        }
        assert_eq!(at, stream.len());
        assert_eq!(Frame::decode(&stream[at..]), Err(WireError::Incomplete));
    }

    #[test]
    fn every_truncation_is_incomplete_never_panics() {
        for frame in sample_frames() {
            let enc = frame.encode();
            for cut in 0..enc.len() {
                assert_eq!(
                    Frame::decode(&enc[..cut]),
                    Err(WireError::Incomplete),
                    "prefix {cut} of {} bytes",
                    enc.len()
                );
            }
        }
    }

    #[test]
    fn bad_magic_rejects_even_on_short_reads() {
        let mut enc = sample_frames()[0].encode();
        enc[0] ^= 0xff;
        assert_eq!(Frame::decode(&enc), Err(WireError::BadMagic));
        assert_eq!(Frame::decode(&enc[..2]), Err(WireError::BadMagic));
    }

    #[test]
    fn version_skew_rejects_loudly() {
        let mut enc = sample_frames()[0].encode();
        enc[2] = PROTOCOL_VERSION + 1;
        assert_eq!(Frame::decode(&enc), Err(WireError::VersionSkew));
        assert_eq!(Frame::decode(&enc[..3]), Err(WireError::VersionSkew));
    }

    #[test]
    fn oversize_length_prefix_rejected_before_allocation() {
        let mut enc = sample_frames()[0].encode();
        enc[4..8].copy_from_slice(&(u32::MAX).to_le_bytes());
        // A hostile 4 GiB length must be rejected from the 12-byte
        // header alone, not answered with Incomplete (which would make
        // the reassembler buffer forever).
        assert_eq!(Frame::decode(&enc), Err(WireError::Oversize));
    }

    #[test]
    fn oversize_inner_batch_count_rejected() {
        let frame = Frame::Request(Request::SubmitBatch {
            tenant: 1,
            class: Class::Normal,
            deadline: 0,
            submissions: vec![Submission { id: 1, payload: Bytes::new() }],
        });
        let mut enc = frame.encode();
        // Body layout: tenant(4) class(1) deadline(8) count(4)...
        let count_at = HEADER_LEN + 4 + 1 + 8;
        enc[count_at..count_at + 4].copy_from_slice(&(MAX_BATCH as u32 + 1).to_le_bytes());
        // Re-CRC so only the count bound trips, not the checksum.
        let len = u32::from_le_bytes(enc[4..8].try_into().unwrap()) as usize;
        let mut crc_input = enc[..8].to_vec();
        crc_input.extend_from_slice(&enc[HEADER_LEN..HEADER_LEN + len]);
        let crc = crc32(&crc_input);
        enc[8..12].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(Frame::decode(&enc), Err(WireError::Oversize));
    }

    #[test]
    fn flipped_bits_fail_crc() {
        let enc = sample_frames()[0].encode();
        for bit in 0..enc.len() * 8 {
            let mut damaged = enc.clone();
            damaged[bit / 8] ^= 1 << (bit % 8);
            let r = Frame::decode(&damaged);
            // Any flip is caught by magic/version/kind/len validation or
            // the CRC; flips in the length field may also read as
            // Incomplete (the frame now claims more bytes than sent).
            assert_ne!(
                r,
                Ok((sample_frames()[0].clone(), enc.len())),
                "bit {bit} flip decoded as the original frame"
            );
            if let Ok((f, _)) = r {
                panic!("bit {bit} flip decoded silently as {f:?}");
            }
        }
    }

    #[test]
    fn trailing_garbage_in_body_is_malformed() {
        let frame = Frame::Request(Request::Query { tenant: 1, id: 2 });
        let body_garbage = {
            let mut b = Vec::new();
            super::put_u32(&mut b, 1);
            super::put_u64(&mut b, 2);
            b.push(0xee); // trailing byte the reader must not ignore
            b
        };
        let mut enc = Vec::new();
        enc.extend_from_slice(&MAGIC.to_le_bytes());
        enc.push(PROTOCOL_VERSION);
        enc.push(super::K_QUERY);
        super::put_u32(&mut enc, body_garbage.len() as u32);
        let mut crc_input = enc.clone();
        crc_input.extend_from_slice(&body_garbage);
        super::put_u32(&mut enc, crc32(&crc_input));
        enc.extend_from_slice(&body_garbage);
        let _ = frame;
        assert_eq!(Frame::decode(&enc), Err(WireError::Malformed));
    }

    /// Builds a frame with `kind` and a hand-rolled `body`, CRC'd so
    /// only body validation can trip.
    fn raw_frame(kind: u8, body: &[u8]) -> Vec<u8> {
        let mut enc = Vec::new();
        enc.extend_from_slice(&MAGIC.to_le_bytes());
        enc.push(PROTOCOL_VERSION);
        enc.push(kind);
        super::put_u32(&mut enc, body.len() as u32);
        let mut crc_input = enc.clone();
        crc_input.extend_from_slice(body);
        super::put_u32(&mut enc, crc32(&crc_input));
        enc.extend_from_slice(body);
        enc
    }

    #[test]
    fn session_ack_with_non_boolean_resumed_flag_is_malformed() {
        let mut body = Vec::new();
        super::put_u64(&mut body, 7); // session
        body.push(2); // hostile resumed flag
        super::put_u64(&mut body, 9); // applied_slot
        assert_eq!(
            Frame::decode(&raw_frame(super::K_SESSION_ACK, &body)),
            Err(WireError::Malformed)
        );
    }

    #[test]
    fn read_fresh_result_with_bad_slot_tag_or_short_digest_is_malformed() {
        // Hostile slot tag.
        let mut body = Vec::new();
        super::put_u64(&mut body, 7); // id
        body.push(7); // hostile slot tag
        super::put_u64(&mut body, 9);
        body.extend_from_slice(&[0u8; 32]);
        assert_eq!(
            Frame::decode(&raw_frame(super::K_READ_FRESH_RESULT, &body)),
            Err(WireError::Malformed)
        );
        // Digest truncated to 31 bytes inside an otherwise valid body.
        let mut body = Vec::new();
        super::put_u64(&mut body, 7);
        body.push(0);
        super::put_u64(&mut body, 9);
        body.extend_from_slice(&[0u8; 31]);
        assert_eq!(
            Frame::decode(&raw_frame(super::K_READ_FRESH_RESULT, &body)),
            Err(WireError::Malformed)
        );
    }

    #[test]
    fn resume_with_trailing_bytes_is_malformed() {
        let mut body = Vec::new();
        super::put_u32(&mut body, 1);
        super::put_u64(&mut body, 2);
        super::put_u64(&mut body, 3);
        body.push(0xee);
        assert_eq!(
            Frame::decode(&raw_frame(super::K_RESUME, &body)),
            Err(WireError::Malformed)
        );
    }

    fn arb_class() -> BoxedStrategy<Class> {
        prop_oneof![Just(Class::High), Just(Class::Normal), Just(Class::Low)].boxed()
    }

    fn arb_submission() -> BoxedStrategy<Submission> {
        (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..48))
            .prop_map(|(id, p)| Submission { id, payload: Bytes::from(p) })
            .boxed()
    }

    fn arb_frame() -> BoxedStrategy<Frame> {
        prop_oneof![
            (any::<u32>(), arb_class(), any::<u64>(), arb_submission()).prop_map(
                |(tenant, class, deadline, submission)| Frame::Request(Request::Submit {
                    tenant,
                    class,
                    deadline,
                    submission
                })
            ),
            (
                any::<u32>(),
                arb_class(),
                any::<u64>(),
                proptest::collection::vec(arb_submission(), 0..5)
            )
                .prop_map(|(tenant, class, deadline, submissions)| Frame::Request(
                    Request::SubmitBatch { tenant, class, deadline, submissions }
                )),
            (any::<u32>(), any::<u64>())
                .prop_map(|(tenant, id)| Frame::Request(Request::Query { tenant, id })),
            any::<u32>().prop_map(|tenant| Frame::Request(Request::AuditDigest { tenant })),
            (any::<u64>(), any::<u64>())
                .prop_map(|(id, slot)| Frame::Response(Response::Committed { id, slot })),
            (any::<u64>(), any::<u64>()).prop_map(|(retry_after_us, id)| Frame::Response(
                Response::Overloaded { retry_after_us, id }
            )),
            (any::<u32>(), any::<u64>())
                .prop_map(|(tenant, session)| Frame::Request(Request::Hello { tenant, session })),
            (any::<u32>(), any::<u64>(), any::<u64>()).prop_map(
                |(tenant, session, high_acked)| Frame::Request(Request::Resume {
                    tenant,
                    session,
                    high_acked
                })
            ),
            (any::<u32>(), any::<u64>(), any::<u64>()).prop_map(|(tenant, id, min_slot)| {
                Frame::Request(Request::ReadFresh { tenant, id, min_slot })
            }),
            (any::<u64>(), any::<bool>(), any::<u64>()).prop_map(
                |(session, resumed, applied_slot)| Frame::Response(Response::SessionAck {
                    session,
                    resumed,
                    applied_slot
                })
            ),
            (any::<u64>(), any::<bool>(), any::<u64>(), any::<u64>(), any::<u8>(), any::<u64>())
                .prop_map(|(id, has_slot, slot, applied_slot, fill, floor)| Frame::Response(
                    Response::ReadFreshResult {
                        id,
                        slot: has_slot.then_some(slot),
                        applied_slot,
                        digest: [fill; 32],
                        floor,
                    }
                )),
        ]
        .boxed()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn prop_decode_inverts_encode(frame in arb_frame()) {
            let enc = frame.encode();
            let (dec, used) = Frame::decode(&enc).unwrap();
            prop_assert_eq!(dec, frame);
            prop_assert_eq!(used, enc.len());
        }

        #[test]
        fn prop_random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            // Arbitrary garbage must produce an error or a frame — never
            // a panic, never an over-allocation.
            let _ = Frame::decode(&bytes);
        }

        #[test]
        fn prop_truncations_are_incomplete(frame in arb_frame(), frac in 0.0..1.0f64) {
            let enc = frame.encode();
            let cut = (enc.len() as f64 * frac) as usize;
            prop_assert!(cut < enc.len());
            prop_assert_eq!(Frame::decode(&enc[..cut]), Err(WireError::Incomplete));
        }
    }
}
