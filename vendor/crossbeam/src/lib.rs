//! Vendored offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::thread::scope` as a thin wrapper over
//! `std::thread::scope` (stable since Rust 1.63), preserving crossbeam's
//! `Result`-returning signature so call sites read like the real crate.
//! Spawned closures take no scope argument (std style) — the one local
//! deviation from crossbeam 0.8's `|_|` convention.

/// Scoped threads.
pub mod thread {
    /// Result alias matching `crossbeam::thread::scope`'s return type.
    pub type Result<T> = std::thread::Result<T>;

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; all threads are joined before `scope` returns.
    ///
    /// Panics in spawned threads propagate when the scope joins them
    /// (std semantics), so the `Ok` wrapper is always returned; callers
    /// keep crossbeam's familiar `.unwrap()` at the call site.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(f))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move || chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}
