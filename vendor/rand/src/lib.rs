//! Vendored offline stand-in for the `rand` crate.
//!
//! Implements the API subset the PReVer workspace uses: the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits, [`rngs::StdRng`], and
//! [`seq::SliceRandom`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic per seed, which is all callers rely on.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from the generator's full range
/// (the role of rand's `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1), as upstream rand does.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types uniformly sampleable from a sub-range without modulo
/// bias (rejection sampling over a masked draw).
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_below<R: RngCore + ?Sized>(rng: &mut R, bound_inclusive: u64) -> u64;
    fn to_u64(self) -> u64;
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_below<R: RngCore + ?Sized>(rng: &mut R, bound_inclusive: u64) -> u64 {
                if bound_inclusive == u64::MAX {
                    return rng.next_u64();
                }
                let span = bound_inclusive + 1;
                // Mask-and-reject: draw within the next power of two,
                // retry on overshoot (expected < 2 draws).
                let mask = if span.is_power_of_two() {
                    span - 1
                } else if span > (1u64 << 63) {
                    u64::MAX
                } else {
                    span.next_power_of_two() - 1
                };
                loop {
                    let x = rng.next_u64() & mask;
                    if x < span {
                        return x;
                    }
                }
            }
            fn to_u64(self) -> u64 { self as u64 }
            fn from_u64(v: u64) -> Self { v as $t }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn from (rand's `SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let lo = self.start.to_u64();
        let hi = self.end.to_u64();
        assert!(lo < hi, "gen_range: empty range");
        let v = T::sample_below(rng, hi - lo - 1);
        T::from_u64(lo + v)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let lo = self.start().to_u64();
        let hi = self.end().to_u64();
        assert!(lo <= hi, "gen_range: empty range");
        let v = T::sample_below(rng, hi - lo);
        T::from_u64(lo + v)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing random-value interface.
pub trait Rng: RngCore {
    /// Uniform value of type `T` over its natural domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic seeding interface.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a `u64` seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point for xoshiro; nudge it.
            if s == [0; 4] {
                let mut sm = SplitMix64 { state: 0xDEAD_BEEF };
                for slot in &mut s {
                    *slot = sm.next();
                }
            }
            StdRng { s }
        }
    }
}

/// Slice utilities (rand's `seq` module).
pub mod seq {
    use super::Rng;

    /// Random-order operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Convenience free function: a value from a fixed-seed thread generator.
/// (Upstream rand uses OS entropy; offline we derive from the thread id
/// and a process-wide counter, which is enough for non-cryptographic
/// callers.)
pub fn thread_rng() -> rngs::StdRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0x1234_5678);
    let n = COUNTER.fetch_add(0x9E37_79B9, Ordering::Relaxed);
    <rngs::StdRng as SeedableRng>::seed_from_u64(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..=3);
            assert!(w <= 3);
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should permute");
    }
}
