//! The [`Strategy`] trait and combinators.

use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of an associated type.
///
/// Unlike upstream proptest there is no value tree / shrinking:
/// `generate` draws one value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `f` (retries; panics after 1000 rejects).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f, whence }
    }

    /// Type-erases the strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Box::new(self) }
    }
}

/// Object-safe generation, used by [`BoxedStrategy`].
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut StdRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V> {
    inner: Box<dyn DynStrategy<V>>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        self.inner.generate_dyn(rng)
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates: {}", self.whence);
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws a uniform value over the type's domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_via_gen!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, f64, f32
);

/// The `any::<T>()` strategy.
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// Uniform values of `T` (proptest's `any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// String-literal strategies: a `&str` is interpreted as a regex (as in
/// upstream proptest) and generates matching `String`s. Only the subset
/// needed here is supported: literal chars, `[a-z0-9_]`-style classes
/// (with ranges), and the repetitions `{n}`, `{m,n}`, `?`, `*`, `+`
/// (star/plus capped at 8). Alternation/groups are not supported.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let chars: Vec<char> = self.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One atom: either a character class or a literal char.
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed '[' in pattern {self:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        for c in lo..=hi {
                            set.push(char::from_u32(c).unwrap());
                        }
                        j += 3;
                    } else {
                        if chars[j] == '\\' {
                            j += 1;
                        }
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = if chars[i] == '\\' {
                    i += 1;
                    chars[i]
                } else {
                    chars[i]
                };
                i += 1;
                vec![c]
            };

            // Optional repetition suffix.
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed '{{' in pattern {self:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse::<usize>().expect("bad repeat min"),
                        hi.trim().parse::<usize>().expect("bad repeat max"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("bad repeat count");
                        (n, n)
                    }
                }
            } else if i < chars.len() && chars[i] == '?' {
                i += 1;
                (0, 1)
            } else if i < chars.len() && chars[i] == '*' {
                i += 1;
                (0, 8)
            } else if i < chars.len() && chars[i] == '+' {
                i += 1;
                (1, 8)
            } else {
                (1, 1)
            };

            let count = rng.gen_range(min..=max);
            for _ in 0..count {
                out.push(alphabet[rng.gen_range(0..alphabet.len())]);
            }
        }
        out
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
