//! Vendored offline stand-in for `proptest`.
//!
//! Random property testing with the API subset the PReVer workspace
//! uses: the [`strategy::Strategy`] trait (ranges, tuples, `any`,
//! `Just`, `collection::vec`, `prop_map`, `prop_filter`, `prop_oneof!`),
//! the [`proptest!`] test macro, `prop_assert*` / `prop_assume!`, and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from upstream: no shrinking (a failing case panics with
//! the case number so it can be replayed — generation is deterministic
//! per test name and case index), and no failure-seed persistence.

pub mod strategy;

/// Test-runner configuration and state.
pub mod test_runner {
    /// Subset of proptest's configuration: the number of cases per test.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 128 }
        }
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic per-test RNG factory.
    pub struct TestRunner {
        config: ProptestConfig,
        base_seed: u64,
    }

    impl TestRunner {
        /// Creates a runner whose case RNGs derive from `test_name`.
        pub fn new(config: ProptestConfig, test_name: &str) -> Self {
            // FNV-1a over the test name: stable across runs and builds.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRunner { config, base_seed: h }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// The RNG for case `i`.
        pub fn rng_for(&self, case: u32) -> rand::rngs::StdRng {
            use rand::SeedableRng;
            rand::rngs::StdRng::seed_from_u64(self.base_seed ^ ((case as u64) << 32 | 0x5bd1_e995))
        }
    }
}

/// Strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use std::ops::{Range, RangeInclusive};

    /// A range of collection sizes.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub min: usize,
        /// Maximum length (inclusive).
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element` and
    /// whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut rand::rngs::StdRng) -> Vec<S::Value> {
            use rand::Rng;
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Defines property tests. Each function runs `config.cases` times with
/// fresh random inputs drawn from the `in` strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __runner =
                    $crate::test_runner::TestRunner::new(__config, stringify!($name));
                for __case in 0..__runner.cases() {
                    let mut __rng = __runner.rng_for(__case);
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    // Body in a closure so `prop_assume!` can return early;
                    // debug-print inputs on failure since there is no shrinker.
                    let __run = move || { $body };
                    if let Err(__panic) = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(__run),
                    ) {
                        eprintln!(
                            "proptest case {}/{} of `{}` failed",
                            __case + 1,
                            __runner.cases(),
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return;
        }
    };
}

/// Chooses uniformly among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}
