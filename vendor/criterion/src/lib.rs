//! Vendored offline stand-in for `criterion`.
//!
//! A wall-clock micro-benchmark harness covering the API subset the
//! PReVer bench crate uses: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BenchmarkId`],
//! [`Throughput`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement model: calibrate the per-iteration cost, then take
//! `sample_size` samples of a batch large enough to amortize timer
//! overhead, reporting mean/median/stddev. Two output lines per
//! benchmark: a human-readable one, and a `BENCHJSON {...}` line the
//! perf-trajectory tooling parses into `BENCH_*.json`.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Benchmark sizing hints for [`Bencher::iter_batched`].
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs; batches are sized like plain `iter`.
    SmallInput,
    /// Large inputs; one input per measured batch.
    LargeInput,
    /// One setup call per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark (reported, not rescaled).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A two-part benchmark identifier (`function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Joins a function name and a parameter into `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Anything usable as a benchmark id (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as the first free
        // argument; flags (`--bench`, `--exact`, ...) are skipped.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            sample_size: 20,
            measurement_time: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Overrides the default per-benchmark measurement budget.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            measurement_time: None,
            throughput: None,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        let id = id.into_id();
        let sample_size = self.sample_size;
        let time = self.measurement_time;
        self.run_one(&id, None, sample_size, time, f);
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        full_id: &str,
        throughput: Option<Throughput>,
        sample_size: usize,
        measurement_time: Duration,
        mut f: F,
    ) {
        if let Some(filter) = &self.filter {
            if !full_id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples_ns: Vec::new(),
            sample_size,
            measurement_time,
        };
        f(&mut bencher);
        bencher.report(full_id, throughput);
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Sets the per-benchmark measurement budget for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = Some(t);
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        let full_id = format!("{}/{}", self.name, id.into_id());
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        let time = self.measurement_time.unwrap_or(self.criterion.measurement_time);
        let throughput = self.throughput;
        self.criterion.run_one(&full_id, throughput, sample_size, time, f);
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (kept for API compatibility; reporting is eager).
    pub fn finish(self) {}
}

/// Runs and times the benchmark body.
pub struct Bencher {
    samples_ns: Vec<f64>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Measures `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit in ~1/20 of the budget?
        let calib_start = Instant::now();
        black_box(routine());
        let once = calib_start.elapsed().max(Duration::from_nanos(20));
        let per_sample_budget = self.measurement_time / (self.sample_size as u32);
        let iters = (per_sample_budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples_ns.push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }

    /// Measures `routine` with a fresh `setup` product per call, setup
    /// excluded from timing.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let calib_input = setup();
        let calib_start = Instant::now();
        black_box(routine(calib_input));
        let once = calib_start.elapsed().max(Duration::from_nanos(20));
        let per_sample_budget = self.measurement_time / (self.sample_size as u32);
        let iters = (per_sample_budget.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            self.samples_ns.push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        if self.samples_ns.is_empty() {
            println!("{id:<50} (no samples)");
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64;
        let median = sorted[sorted.len() / 2];
        let var = self
            .samples_ns
            .iter()
            .map(|s| (s - mean) * (s - mean))
            .sum::<f64>()
            / self.samples_ns.len() as f64;
        let stddev = var.sqrt();

        let tp = match throughput {
            Some(Throughput::Bytes(n)) => {
                format!("  {:>10.1} MiB/s", n as f64 / (mean / 1e9) / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(n)) => {
                format!("  {:>10.0} elem/s", n as f64 / (mean / 1e9))
            }
            None => String::new(),
        };
        println!(
            "{:<50} time: [{} {} {}]{}",
            id,
            fmt_ns(sorted[0]),
            fmt_ns(median),
            fmt_ns(sorted[sorted.len() - 1]),
            tp
        );
        println!(
            "BENCHJSON {{\"id\":\"{id}\",\"mean_ns\":{mean:.1},\"median_ns\":{median:.1},\"stddev_ns\":{stddev:.1},\"samples\":{}}}",
            self.samples_ns.len()
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares `main` to run the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}
