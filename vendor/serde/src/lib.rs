//! Vendored offline stand-in for `serde`.
//!
//! The workspace declares serde but no code path currently serializes
//! through it; this crate exists so the dependency graph resolves
//! offline. Only marker traits are provided — adding real serialization
//! means replacing this stub (or regaining network access and using the
//! real crate; the root manifest documents the swap).

/// Marker for serializable types (no-op stand-in).
pub trait Serialize {}

/// Marker for deserializable types (no-op stand-in).
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
