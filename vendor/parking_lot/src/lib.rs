//! Vendored offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API
//! (`lock()`/`read()`/`write()` return guards directly). Poisoned locks
//! recover the inner guard, matching parking_lot's semantics of never
//! poisoning.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with a non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with non-poisoning `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}
