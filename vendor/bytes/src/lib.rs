//! Vendored offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`]: a cheaply clonable, immutable, contiguous byte
//! buffer backed by `Arc<[u8]>`. Covers the API subset the PReVer
//! workspace uses (`from`, `from_static`, `copy_from_slice`, `new`,
//! deref-to-slice, equality/hash/ordering).

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Wraps a static slice (no copy in upstream; here a cheap one-time
    /// copy into the shared allocation).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: Arc::from(bytes) }
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::from(data) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies out to a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// Sub-range view (copies; upstream slices zero-copy).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes { data: Arc::from(&self.data[range]) }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Self::from_static(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Self::from_static(v.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.data[..] == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data.cmp(&other.data)
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_eq() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(b, Bytes::copy_from_slice(&[1, 2, 3]));
        assert_eq!(&b[..], &[1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(Bytes::from_static(b"abc").slice(1..3), Bytes::from_static(b"bc"));
    }
}
