//! Cross-crate integration tests for the PReVer workspace.
//!
//! The library target is intentionally empty; all content lives in the
//! `tests/` directory of this package (one file per end-to-end scenario).
