//! Integration: a federated checkpoint certificate — PBFT orders the
//! updates, every manager journals them identically, and a co-signed
//! digest (2f + 1 signatures) becomes the globally trusted checkpoint
//! (RC4 for mutually distrustful managers).

use bytes::Bytes;
use prever_consensus::pbft::{self, PbftMsg};
use prever_consensus::Command;
use prever_crypto::schnorr::{KeyPair, SchnorrGroup};
use prever_crypto::BigUint;
use prever_ledger::{CoSignedDigest, Journal};
use prever_sim::{NetConfig, Simulation};
use rand::{rngs::StdRng, SeedableRng};

#[test]
fn pbft_ordered_journals_co_sign_into_a_checkpoint() {
    let n = 4; // f = 1 → threshold 3
    let mut rng = StdRng::seed_from_u64(51);
    let group = SchnorrGroup::test_group_256();
    let keys: Vec<KeyPair> = (0..n).map(|_| KeyPair::generate(&group, &mut rng)).collect();
    let managers: Vec<BigUint> = keys.iter().map(|k| k.public.clone()).collect();

    // Order 8 regulated updates through PBFT.
    let mut sim = Simulation::new(pbft::cluster(n), NetConfig::default(), 51);
    for i in 0..8u64 {
        sim.inject(0, 0, PbftMsg::request(Command::new(i, format!("update-{i}"))), 1 + i * 100);
    }
    assert!(sim.run_until_pred(2_000_000, |nodes| {
        nodes.iter().all(|nd| nd.core.executed_commands() >= 8)
    }));

    // Each manager journals its executed log and signs the digest.
    let mut cert = CoSignedDigest::new();
    let mut digests = Vec::new();
    for (r, key) in keys.iter().enumerate() {
        let mut journal = Journal::new();
        for d in sim.node(r).executed() {
            journal.append(d.slot, d.command.payload.clone());
        }
        let digest = journal.digest();
        digests.push(digest.clone());
        // Only 3 of 4 sign (one manager is slow/offline).
        if r < 3 {
            cert.add(&group, key, &digest, &mut rng).unwrap();
        }
    }
    // All digests agree (consensus ⇒ identical journals).
    assert!(digests.windows(2).all(|w| w[0] == w[1]));
    // The certificate verifies at the BFT threshold.
    cert.verify(&group, &managers, 3).unwrap();

    // A forged certificate (signature from a non-member key) fails.
    let outsider = KeyPair::generate(&group, &mut rng);
    let mut forged = CoSignedDigest::new();
    forged.add(&group, &outsider, &digests[0], &mut rng).unwrap();
    assert!(forged.verify(&group, &managers, 1).is_err());
}

#[test]
fn diverging_manager_cannot_join_the_certificate() {
    let mut rng = StdRng::seed_from_u64(52);
    let group = SchnorrGroup::test_group_256();
    let keys: Vec<KeyPair> = (0..2).map(|_| KeyPair::generate(&group, &mut rng)).collect();

    let mut honest = Journal::new();
    honest.append(0, Bytes::from_static(b"update-0"));
    let mut tampered = Journal::new();
    tampered.append(0, Bytes::from_static(b"EVIL"));

    let mut cert = CoSignedDigest::new();
    cert.add(&group, &keys[0], &honest.digest(), &mut rng).unwrap();
    // The tampering manager's digest differs — it cannot co-sign.
    assert!(cert.add(&group, &keys[1], &tampered.digest(), &mut rng).is_err());
}
