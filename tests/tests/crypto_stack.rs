//! Integration across the crypto stack: tokens built from blind
//! signatures verified on a ledger, range proofs gating Paillier
//! accumulators, MPC agreeing with plaintext, enclave agreeing with
//! everything else.

use prever_crypto::bignum::BigUint;
use prever_enclave::Enclave;
use prever_mpc::FederatedBoundCheck;
use rand::{rngs::StdRng, SeedableRng};

/// The same regulation decided by four independent mechanisms must
/// agree: plaintext, Paillier+owner, MPC, and the simulated enclave.
#[test]
fn four_mechanisms_agree_on_bound_decisions() {
    let mut rng = StdRng::seed_from_u64(2001);
    let bound = 40u64;

    // Mechanism 1: plaintext oracle.
    let mut plain_total = 0u64;
    // Mechanism 2: Paillier single-DB deployment.
    let mut owner = prever_core::single::DataOwner::new(96, &mut rng);
    let mut manager = prever_core::single::OutsourcedManager::new(owner.public_params(), bound);
    // Mechanism 3: MPC with the total held by one party.
    let mut mpc = FederatedBoundCheck::new();
    let mut mpc_total = 0i64;
    // Mechanism 4: enclave.
    let mut enclave = Enclave::load(b"bound-checker", b"secret");

    let amounts = [10u64, 15, 10, 4, 1, 1, 1, 7];
    for (i, &amount) in amounts.iter().enumerate() {
        let plain_ok = plain_total + amount <= bound;

        let update = prever_core::single::produce_update(
            &owner.public_params(),
            i as u64 + 1,
            "subject",
            0,
            amount,
            i as u64,
            &mut rng,
        )
        .unwrap();
        let paillier_ok = manager
            .submit(&update, &mut owner, &mut rng)
            .unwrap()
            .is_accepted();

        let mpc_ok = mpc
            .check_upper_bound(&[mpc_total, 0, 0], amount as i64, bound as i64, &mut rng)
            .unwrap()
            .verdict;

        let enclave_ok = enclave.check_bound("subject", amount as i64, bound as i64);

        assert_eq!(plain_ok, paillier_ok, "paillier diverged at step {i}");
        assert_eq!(plain_ok, mpc_ok, "mpc diverged at step {i}");
        assert_eq!(plain_ok, enclave_ok, "enclave diverged at step {i}");

        if plain_ok {
            plain_total += amount;
            mpc_total += amount as i64;
        }
    }
    assert_eq!(plain_total, 40, "the schedule should land exactly on the bound");
}

/// Tokens spent on a ledger can be audited end to end: the authority's
/// issuance count, the wallet's balance, the ledger's spend count and
/// the journal digest all reconcile.
#[test]
fn token_ledger_reconciliation() {
    let mut rng = StdRng::seed_from_u64(2002);
    let mut authority = prever_tokens::TokenAuthority::new(96, 10, &mut rng);
    let mut wallet = prever_tokens::Wallet::new("worker");
    let mut ledger = prever_ledger::LedgerKv::new();
    let mut p1 = prever_tokens::Platform::new("p1", authority.public_key().clone());
    let mut p2 = prever_tokens::Platform::new("p2", authority.public_key().clone());

    let issued = wallet.request_tokens(&mut authority, 5, 10, &mut rng).unwrap();
    assert_eq!(issued, 10);
    for i in 0..6 {
        let t = wallet.spend(5).unwrap();
        let platform = if i % 2 == 0 { &mut p1 } else { &mut p2 };
        platform.verify_and_spend(&t, 5, &mut ledger, i).unwrap();
    }
    // Reconciliation.
    assert_eq!(authority.issued_to("worker", 5), 10);
    assert_eq!(wallet.balance(5), 4);
    assert_eq!(p1.accepted() + p2.accepted(), 6);
    assert_eq!(ledger.journal().len(), 6);
    prever_ledger::Journal::verify_chain(ledger.journal().entries(), &ledger.digest()).unwrap();
    // Replay from the journal reconstructs identical spent-state.
    let replayed = prever_ledger::LedgerKv::replay(ledger.journal().clone(), &ledger.digest()).unwrap();
    assert_eq!(replayed.len(), 6);
}

/// Paillier ciphertexts, commitments, and MPC shares all encode the
/// same value and round-trip consistently.
#[test]
fn value_representations_are_consistent() {
    let mut rng = StdRng::seed_from_u64(2003);
    let value = 37u64;

    // Paillier.
    let sk = prever_crypto::paillier::keygen(96, &mut rng);
    let c = sk.public.encrypt_u64(value, &mut rng).unwrap();
    assert_eq!(sk.decrypt(&c).unwrap(), BigUint::from_u64(value));

    // Pedersen commitment + opening.
    let group = prever_crypto::schnorr::SchnorrGroup::test_group_256();
    let m = BigUint::from_u64(value);
    let (commitment, r) = prever_crypto::schnorr::commit(&group, &m, &mut rng).unwrap();
    prever_crypto::schnorr::open(&group, &commitment, &m, &r).unwrap();

    // Shamir shares.
    let shares =
        prever_crypto::shamir::share(prever_crypto::Fp61::new(value), 2, 3, &mut rng).unwrap();
    assert_eq!(
        prever_crypto::shamir::reconstruct(&shares, 2).unwrap(),
        prever_crypto::Fp61::new(value)
    );
}
