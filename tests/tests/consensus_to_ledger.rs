//! Integration: consensus output feeds the authenticated ledger (RC4).
//! PBFT-ordered commands are journaled identically at every replica;
//! Paxos and PBFT produce equivalent logs for the same client stream.

use prever_consensus::pbft::{self, PbftMsg};
use prever_consensus::paxos::{self, PaxosMsg};
use prever_consensus::Command;
use prever_ledger::Journal;
use prever_sim::{NetConfig, Simulation};

#[test]
fn pbft_replicas_build_identical_journals() {
    let n = 4;
    let mut sim = Simulation::new(pbft::cluster(n), NetConfig::default(), 5);
    for i in 0..15u64 {
        sim.inject(0, 0, PbftMsg::request(Command::new(i, format!("u{i}"))), sim.now() + 1 + i);
    }
    assert!(sim.run_until_pred(2_000_000, |nodes| {
        nodes.iter().all(|nd| nd.core.executed_commands() >= 15)
    }));
    // Each replica journals its executed log; digests must agree.
    let digests: Vec<_> = (0..n)
        .map(|r| {
            let mut j = Journal::new();
            for d in sim.node(r).executed() {
                // Deterministic timestamps (the slot) keep digests equal.
                j.append(d.slot, d.command.payload.clone());
            }
            j.digest()
        })
        .collect();
    for r in 1..n {
        assert_eq!(digests[r], digests[0], "replica {r} journal diverged");
    }
    // And the journal verifies.
    let mut j = Journal::new();
    for d in sim.node(0).executed() {
        j.append(d.slot, d.command.payload.clone());
    }
    Journal::verify_chain(j.entries(), &digests[0]).unwrap();
}

#[test]
fn paxos_and_pbft_decide_the_same_command_set() {
    let ids: Vec<u64> = (0..12).collect();

    // PBFT run.
    let mut bft = Simulation::new(pbft::cluster(4), NetConfig::default(), 3);
    for &i in &ids {
        bft.inject(0, 0, PbftMsg::request(Command::new(i, format!("c{i}"))), bft.now() + 1 + i);
    }
    assert!(bft.run_until_pred(2_000_000, |nodes| {
        nodes.iter().all(|nd| nd.core.executed_commands() >= 12)
    }));
    let mut bft_ids: Vec<u64> = bft.node(0).executed().iter().map(|d| d.command.id).collect();
    bft_ids.sort_unstable();

    // Paxos run.
    let mut px = Simulation::new(paxos::cluster(5), NetConfig::default(), 3);
    px.run_until(50_000);
    for &i in &ids {
        px.inject(
            0,
            0,
            PaxosMsg::request(Command::new(i, format!("c{i}"))),
            px.now() + 1 + i,
        );
    }
    assert!(px.run_until_pred(3_000_000, |nodes| nodes[1].decided().len() >= 12));
    let mut px_ids: Vec<u64> = px.node(1).decided_ids();
    px_ids.sort_unstable();
    px_ids.dedup();

    assert_eq!(bft_ids, ids);
    assert_eq!(px_ids, ids);
}

#[test]
fn bft_latency_exceeds_paxos_latency() {
    // Sanity for E3's expected shape: PBFT's three phases cost more
    // round-trips than Paxos's leader-driven phase 2.
    let mean = |times: Vec<u64>| times.iter().sum::<u64>() as f64 / times.len() as f64;

    let mut bft = Simulation::new(pbft::cluster(4), NetConfig::default(), 11);
    let mut submit_at = Vec::new();
    for i in 0..10u64 {
        let at = 1 + i * 10_000;
        submit_at.push(at);
        bft.inject(0, 0, PbftMsg::request(Command::new(i, "x")), at);
    }
    assert!(bft.run_until_pred(5_000_000, |nodes| {
        nodes.iter().all(|nd| nd.core.executed_commands() >= 10)
    }));
    let bft_lat = mean(
        bft.node(1)
            .executed()
            .iter()
            .map(|d| d.at - submit_at[d.command.id as usize])
            .collect(),
    );

    let mut px = Simulation::new(paxos::cluster(4), NetConfig::default(), 11);
    px.run_until(50_000);
    let base = px.now();
    let mut submit_at = Vec::new();
    for i in 0..10u64 {
        let at = base + 1 + i * 10_000;
        submit_at.push(at);
        px.inject(0, 0, PaxosMsg::request(Command::new(i, "x")), at);
    }
    assert!(px.run_until_pred(5_000_000, |nodes| nodes[0].decided().len() >= 10));
    let px_lat = mean(
        px.node(0)
            .decided_log()
            .iter()
            .map(|d| d.at - submit_at[d.command.id as usize])
            .collect(),
    );

    assert!(
        bft_lat > px_lat,
        "PBFT latency {bft_lat:.0}µs should exceed Paxos latency {px_lat:.0}µs"
    );
}
