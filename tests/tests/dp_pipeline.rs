//! Integration: differential privacy over the pipeline's update stream.
//!
//! A data manager wants to publish "how many updates were accepted so
//! far" continuously without revealing individual update events (each
//! event is one person's action — cf. the update-pattern discussions in
//! the paper). The tree-mechanism counter from `prever-dp` rides along
//! the pipeline and releases a noisy running count per accepted update.

use prever_constraints::{Constraint, ConstraintScope};
use prever_core::{Pipeline, Update};
use prever_dp::TreeCounter;
use prever_storage::{Column, ColumnType, Row, Schema, Value};
use rand::{rngs::StdRng, SeedableRng};

fn pipeline() -> Pipeline {
    let mut p = Pipeline::new();
    p.create_table(
        "tasks",
        Schema::new(
            vec![
                Column::new("id", ColumnType::Uint),
                Column::new("worker", ColumnType::Str),
                Column::new("hours", ColumnType::Uint),
                Column::new("ts", ColumnType::Timestamp),
            ],
            &["id"],
        )
        .unwrap(),
    )
    .unwrap();
    p.register_constraint(
        Constraint::parse("cap", ConstraintScope::Internal, "$hours <= 8").unwrap(),
    );
    p
}

#[test]
fn private_accept_counts_track_the_true_stream() {
    let mut rng = StdRng::seed_from_u64(61);
    let mut p = pipeline();
    let mut counter = TreeCounter::new(2.0, 1024).unwrap();
    let mut true_accepted = 0i64;
    let mut last_release = 0.0;
    for i in 0..200u64 {
        let hours = 1 + (i % 10); // every 10th (hours = 10, 9) rejected
        let row = Row::new(vec![
            Value::Uint(i),
            Value::Str(format!("w{}", i % 7)),
            Value::Uint(hours),
            Value::Timestamp(i * 100),
        ]);
        let u = Update::new(i, "tasks", row, i * 100, "p");
        if p.submit(&u).unwrap().is_accepted() {
            true_accepted += 1;
            last_release = counter.update(1, &mut rng).unwrap();
        }
    }
    assert_eq!(counter.true_count(), true_accepted);
    let (accepted, rejected) = p.stats();
    assert_eq!(accepted as i64, true_accepted);
    assert!(rejected > 0, "the workload must exercise rejection");
    // The private release is close (polylog noise at ε = 2, T = 1024).
    assert!(
        (last_release - true_accepted as f64).abs() < 60.0,
        "noisy {last_release:.1} vs true {true_accepted}"
    );
}

#[test]
fn budget_exhaustion_blocks_further_releases_not_updates() {
    let mut rng = StdRng::seed_from_u64(62);
    let mut p = pipeline();
    let mut counter = TreeCounter::new(1.0, 4).unwrap(); // tiny horizon
    let mut releases = 0;
    for i in 0..10u64 {
        let row = Row::new(vec![
            Value::Uint(i),
            Value::Str("w".into()),
            Value::Uint(1),
            Value::Timestamp(i),
        ]);
        let u = Update::new(i, "tasks", row, i, "p");
        assert!(p.submit(&u).unwrap().is_accepted(), "updates keep flowing");
        if counter.update(1, &mut rng).is_ok() {
            releases += 1;
        }
    }
    // The DP mechanism fails closed after its horizon; the database
    // itself is unaffected — the paper's "impossibility to support
    // additional updates" applies to the *private releases*, and the
    // accountant makes that boundary explicit.
    assert_eq!(releases, 4);
    assert_eq!(p.stats().0, 10);
}
