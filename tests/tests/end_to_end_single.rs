//! End-to-end integration: the single-private-database deployment
//! (RC1 + RC4) across prever-crypto, prever-ledger and prever-core.

use prever_core::single::{produce_update, DataOwner, OutsourcedManager};
use prever_ledger::{Auditor, Journal};
use rand::{rngs::StdRng, SeedableRng};

fn setup() -> (DataOwner, OutsourcedManager, StdRng) {
    let mut rng = StdRng::seed_from_u64(1001);
    let owner = DataOwner::new(96, &mut rng);
    let manager = OutsourcedManager::new(owner.public_params(), 40);
    (owner, manager, rng)
}

#[test]
fn full_lifecycle_with_continuous_audit() {
    let (mut owner, mut manager, mut rng) = setup();
    let mut auditor = Auditor::new();
    let mut last_size = 0u64;

    // Interleave updates with audit checkpoints.
    let schedule: &[(&str, u64, u64)] = &[
        ("w1", 0, 10),
        ("w1", 0, 20),
        ("w2", 0, 40),
        ("w1", 0, 10), // w1 at exactly 40
        ("w1", 0, 1),  // rejected
        ("w1", 1, 35), // new window
    ];
    for (i, &(subject, window, amount)) in schedule.iter().enumerate() {
        let update = produce_update(
            &owner.public_params(),
            i as u64 + 1,
            subject,
            window,
            amount,
            i as u64 * 100,
            &mut rng,
        )
        .unwrap();
        let _ = manager.submit(&update, &mut owner, &mut rng).unwrap();
        // The auditor follows every published digest.
        let digest = manager.digest();
        let proof = manager
            .journal()
            .prove_consistency(last_size, digest.size)
            .unwrap();
        auditor.observe(digest.clone(), &proof).unwrap();
        last_size = digest.size;
    }
    assert_eq!(manager.stats(), (5, 1));
    assert_eq!(auditor.tampers_detected(), 0);
    // Every journaled entry spot-checks.
    let digest = manager.digest();
    for seq in 0..digest.size {
        let proof = manager.journal().prove_inclusion(seq, digest.size).unwrap();
        auditor.check_entry(manager.journal().entry(seq).unwrap(), &proof).unwrap();
    }
}

#[test]
fn owner_totals_match_plaintext_accounting() {
    let (mut owner, mut manager, mut rng) = setup();
    let mut expected: std::collections::HashMap<(String, u64), u64> = Default::default();
    let amounts = [(5u64, "a"), (7, "b"), (11, "a"), (3, "a"), (40, "c")];
    for (i, (amount, subject)) in amounts.iter().enumerate() {
        let update = produce_update(
            &owner.public_params(),
            i as u64 + 1,
            subject,
            0,
            *amount,
            i as u64,
            &mut rng,
        )
        .unwrap();
        let outcome = manager.submit(&update, &mut owner, &mut rng).unwrap();
        if outcome.is_accepted() {
            *expected.entry((subject.to_string(), 0)).or_default() += amount;
        }
    }
    for ((subject, window), total) in expected {
        let acc = manager.accumulator(&subject, window).unwrap();
        assert_eq!(
            owner.decrypt(acc).unwrap(),
            prever_crypto::BigUint::from_u64(total),
            "{subject}"
        );
    }
}

#[test]
fn journal_tamper_detected_by_replay() {
    let (mut owner, mut manager, mut rng) = setup();
    for i in 0..4u64 {
        let update =
            produce_update(&owner.public_params(), i + 1, "s", 0, 5, i, &mut rng).unwrap();
        manager.submit(&update, &mut owner, &mut rng).unwrap();
    }
    let digest = manager.digest();
    // Clone and forge the served entries.
    let mut entries = manager.journal().entries().to_vec();
    entries[2].payload = bytes::Bytes::from_static(b"FORGED");
    assert!(Journal::verify_chain(&entries, &digest).is_err());
    // Honest entries still verify.
    Journal::verify_chain(manager.journal().entries(), &digest).unwrap();
}
