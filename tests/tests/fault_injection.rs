//! Fault-injection integration tests: consensus under lossy networks,
//! partitions that heal, and combined crash + loss scenarios.
//!
//! The paper's federated deployments assume realistic infrastructure;
//! these tests check the liveness machinery (Paxos retransmission and
//! learn-gap recovery, PBFT view changes) under injected faults.

use prever_consensus::paxos::{self, PaxosMsg};
use prever_consensus::pbft::{self, PbftMsg};
use prever_consensus::Command;
use prever_sim::{NetConfig, Simulation};

#[test]
fn paxos_survives_10_percent_message_loss() {
    let cfg = NetConfig { drop_rate: 0.10, ..NetConfig::default() };
    let n = 5;
    let mut sim = Simulation::new(paxos::cluster(n), cfg, 77);
    sim.run_until(200_000);
    for i in 0..20u64 {
        let target = (i % n as u64) as usize;
        sim.inject(
            target,
            target,
            PaxosMsg::request(Command::new(i, format!("c{i}"))),
            sim.now() + 1 + i * 1000,
        );
    }
    // All nodes eventually decide everything (retransmission +
    // learn-gap recovery close the holes).
    let ok = sim.run_until_pred(3_000_000, |nodes| {
        nodes.iter().all(|nd| {
            let ids: std::collections::HashSet<u64> =
                nd.decided_ids().into_iter().collect();
            (0..20).all(|i| ids.contains(&i))
        })
    });
    assert!(ok, "paxos failed to converge under 10% loss");
    assert!(sim.stats().messages_dropped > 0, "the fault was actually injected");
    // Safety: identical logs everywhere.
    let reference = sim.node(0).decided().clone();
    for i in 1..n {
        assert_eq!(sim.node(i).decided(), &reference, "node {i} diverged");
    }
}

#[test]
fn paxos_partition_heals_and_logs_reconcile() {
    let n = 5;
    let mut sim = Simulation::new(paxos::cluster(n), NetConfig::default(), 5);
    sim.run_until(50_000);
    for i in 0..5u64 {
        sim.inject(0, 0, PaxosMsg::request(Command::new(i, "pre")), sim.now() + 1 + i);
    }
    assert!(sim.run_until_pred(1_000_000, |nodes| nodes[4].decided().len() >= 5));
    // Partition off nodes {3, 4}; the majority continues.
    sim.set_partition(vec![0, 0, 0, 1, 1]);
    for i in 5..10u64 {
        sim.inject(0, 0, PaxosMsg::request(Command::new(i, "during")), sim.now() + 1 + i);
    }
    assert!(sim.run_until_pred(3_000_000, |nodes| nodes[1].decided().len() >= 10));
    assert!(sim.node(4).decided().len() < 10, "minority must lag during partition");
    // Heal: heartbeats + learn-gap recovery bring the minority up.
    sim.heal_partition();
    let ok = sim.run_until_pred(5_000_000, |nodes| {
        (0..n).all(|i| nodes[i].decided().len() >= 10)
    });
    assert!(ok, "minority failed to catch up after heal");
    let reference = sim.node(0).decided().clone();
    for i in 1..n {
        assert_eq!(sim.node(i).decided(), &reference);
    }
}

#[test]
fn pbft_progresses_under_light_loss() {
    // PBFT quorums (2f+1 of 3f+1) absorb light loss; view changes
    // recover anything that stalls.
    let cfg = NetConfig { drop_rate: 0.03, ..NetConfig::default() };
    let mut sim = Simulation::new(pbft::cluster(4), cfg, 13);
    for i in 0..10u64 {
        sim.inject(0, 0, PbftMsg::request(Command::new(i, "x")), 1 + i * 2000);
    }
    let ok = sim.run_until_pred(60_000_000, |nodes| {
        nodes.iter().all(|nd| nd.core.executed_commands() >= 10)
    });
    assert!(ok, "pbft failed under 3% loss");
    // Safety across replicas regardless of how many view changes ran.
    let slots: Vec<(u64, u64)> = sim
        .node(0)
        .executed()
        .iter()
        .map(|d| (d.slot, d.command.id))
        .collect();
    for i in 1..4 {
        for (slot, id) in &slots {
            if let Some(d) = sim.node(i).core.executed().iter().find(|d| d.slot == *slot) {
                if d.command.id != prever_consensus::pbft::NOOP_ID && *id != prever_consensus::pbft::NOOP_ID {
                    assert_eq!(d.command.id, *id, "divergence at slot {slot}");
                }
            }
        }
    }
}

#[test]
fn paxos_crash_plus_loss_combined() {
    let cfg = NetConfig { drop_rate: 0.05, ..NetConfig::default() };
    let n = 5;
    let mut sim = Simulation::new(paxos::cluster(n), cfg, 21);
    sim.run_until(200_000);
    for i in 0..5u64 {
        sim.inject(1, 1, PaxosMsg::request(Command::new(i, "a")), sim.now() + 1 + i);
    }
    assert!(sim.run_until_pred(3_000_000, |nodes| nodes[1].decided().len() >= 5));
    let leader = (0..n).find(|&i| sim.node(i).is_leader()).expect("leader");
    sim.crash(leader);
    let survivor = (leader + 1) % n;
    for i in 5..10u64 {
        sim.inject(
            survivor,
            survivor,
            PaxosMsg::request(Command::new(i, "b")),
            sim.now() + 1000 + i,
        );
    }
    let ok = sim.run_until_pred(10_000_000, move |nodes| {
        (0..n).filter(|&i| i != leader).all(|i| {
            let ids: std::collections::HashSet<u64> =
                nodes[i].decided_ids().into_iter().collect();
            (0..10).all(|c| ids.contains(&c))
        })
    });
    assert!(ok, "survivors failed under crash + loss");
}
