//! Property-based integration tests: the reference pipeline's safety
//! invariants hold for arbitrary update streams.

use prever_constraints::{Constraint, ConstraintScope};
use prever_core::{Pipeline, Update};
use prever_storage::{Column, ColumnType, Row, Schema, Value};
use proptest::prelude::*;

const WEEK: u64 = 604_800;

fn pipeline(bound: u64) -> Pipeline {
    let mut p = Pipeline::new();
    p.create_table(
        "tasks",
        Schema::new(
            vec![
                Column::new("id", ColumnType::Uint),
                Column::new("worker", ColumnType::Str),
                Column::new("hours", ColumnType::Uint),
                Column::new("ts", ColumnType::Timestamp),
            ],
            &["id"],
        )
        .unwrap(),
    )
    .unwrap();
    p.register_constraint(
        Constraint::parse(
            "bound",
            ConstraintScope::Regulation,
            &format!(
                "$hours <= {bound} AND (COUNT(tasks WHERE tasks.worker = $worker WITHIN {WEEK} OF tasks.ts) = 0 \
                 OR SUM(tasks.hours WHERE tasks.worker = $worker WITHIN {WEEK} OF tasks.ts) + $hours <= {bound})"
            ),
        )
        .unwrap(),
    );
    p
}

#[derive(Debug, Clone)]
struct Task {
    worker: u8,
    hours: u64,
    gap: u64,
}

fn arb_tasks() -> impl Strategy<Value = Vec<Task>> {
    proptest::collection::vec(
        (0u8..4, 1u64..20, 0u64..(WEEK / 2)).prop_map(|(worker, hours, gap)| Task {
            worker,
            hours,
            gap,
        }),
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The regulated aggregate never exceeds the bound in the accepted
    /// state, for any stream.
    #[test]
    fn accepted_state_always_satisfies_regulation(tasks in arb_tasks()) {
        let bound = 40u64;
        let mut p = pipeline(bound);
        let mut ts = 0u64;
        let mut accepted: Vec<(u8, u64, u64)> = Vec::new(); // (worker, hours, ts)
        for (i, t) in tasks.iter().enumerate() {
            ts += t.gap;
            let row = Row::new(vec![
                Value::Uint(i as u64),
                Value::Str(format!("w{}", t.worker)),
                Value::Uint(t.hours),
                Value::Timestamp(ts),
            ]);
            let u = Update::new(i as u64, "tasks", row, ts, "p");
            if p.submit(&u).unwrap().is_accepted() {
                accepted.push((t.worker, t.hours, ts));
            }
            // Invariant: for every worker, the sliding-window sum of
            // accepted hours anchored at *this* timestamp is ≤ bound.
            for w in 0u8..4 {
                let sum: u64 = accepted
                    .iter()
                    .filter(|(aw, _, ats)| *aw == w && *ats > ts.saturating_sub(WEEK) && *ats <= ts)
                    .map(|(_, h, _)| h)
                    .sum();
                prop_assert!(sum <= bound, "worker {w} at {sum} > {bound}");
            }
        }
    }

    /// Journal length equals the number of accepted updates, and the
    /// journal always passes a full audit.
    #[test]
    fn journal_matches_accept_count(tasks in arb_tasks()) {
        let mut p = pipeline(40);
        let mut ts = 0u64;
        let mut accepted = 0u64;
        for (i, t) in tasks.iter().enumerate() {
            ts += t.gap;
            let row = Row::new(vec![
                Value::Uint(i as u64),
                Value::Str(format!("w{}", t.worker)),
                Value::Uint(t.hours),
                Value::Timestamp(ts),
            ]);
            let u = Update::new(i as u64, "tasks", row, ts, "p");
            if p.submit(&u).unwrap().is_accepted() {
                accepted += 1;
            }
        }
        prop_assert_eq!(p.journal().len() as u64, accepted);
        prop_assert_eq!(p.database().table("tasks").unwrap().len() as u64, accepted);
        p.audit().unwrap();
    }

    /// Incremental (maintained-aggregate) evaluation agrees with the
    /// reference evaluator decision-for-decision.
    #[test]
    fn incremental_agrees_with_reference(tasks in arb_tasks()) {
        use prever_constraints::{AggFunc, MaintainedAggregate};
        let bound = 40i64;
        let mut p = pipeline(bound as u64);
        // worker column index 1, hours 2, ts 3.
        let mut agg =
            MaintainedAggregate::new("tasks", AggFunc::Sum, 1, Some(2), Some((3, WEEK))).unwrap();
        let mut ts = 0u64;
        let mut applied_version = 0u64;
        for (i, t) in tasks.iter().enumerate() {
            ts += t.gap;
            let worker = format!("w{}", t.worker);
            // Incremental decision first (constraint also caps a single
            // task at `bound`, mirroring the text form).
            let inc_decision = t.hours as i64 <= bound
                && agg.check_upper_bound(
                    &Value::Str(worker.clone()),
                    t.hours as i128,
                    ts,
                    bound as i128,
                );
            let row = Row::new(vec![
                Value::Uint(i as u64),
                Value::Str(worker),
                Value::Uint(t.hours),
                Value::Timestamp(ts),
            ]);
            let u = Update::new(i as u64, "tasks", row, ts, "p");
            let ref_decision = p.submit(&u).unwrap().is_accepted();
            prop_assert_eq!(inc_decision, ref_decision, "task {}", i);
            // Feed accepted changes into the maintained aggregate.
            for c in p.database().changes_since(applied_version).to_vec() {
                agg.apply(&c).unwrap();
            }
            applied_version = p.database().version();
        }
    }
}
