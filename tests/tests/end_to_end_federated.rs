//! Integration: the federated deployment under both regulation
//! strategies must make identical accept/reject decisions on identical
//! workloads — tokens and MPC are interchangeable enforcement engines
//! for the same regulation (RC2).

use prever_core::federated::{FederatedDeployment, RegulationStrategy};
use prever_workloads::crowdworking::{CrowdworkingConfig, CrowdworkingWorkload};
use rand::{rngs::StdRng, SeedableRng};

const WEEK: u64 = 604_800;

fn decisions(strategy: RegulationStrategy, seed: u64) -> Vec<bool> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = FederatedDeployment::new(&["p0", "p1", "p2"], strategy, 40, WEEK, 96, &mut rng);
    // Workload must be generated identically: use a separate, fixed rng.
    let mut wrng = StdRng::seed_from_u64(4242);
    let mut workload = CrowdworkingWorkload::new(CrowdworkingConfig {
        workers: 6,
        platforms: 3,
        mean_interarrival: WEEK / 60,
        ..Default::default()
    });
    workload
        .batch(150, &mut wrng)
        .into_iter()
        .map(|t| {
            d.submit_task(t.platform, &t.worker, t.hours, t.ts, &mut rng)
                .unwrap()
                .is_accepted()
        })
        .collect()
}

#[test]
fn tokens_and_mpc_agree_on_every_decision() {
    let tokens = decisions(RegulationStrategy::Tokens, 1);
    let mpc = decisions(RegulationStrategy::Mpc, 2);
    assert_eq!(tokens.len(), mpc.len());
    for (i, (t, m)) in tokens.iter().zip(&mpc).enumerate() {
        assert_eq!(t, m, "strategies disagree on task {i}");
    }
    // The workload actually exercises both outcomes.
    assert!(tokens.iter().any(|&b| b), "no task accepted");
    assert!(tokens.iter().any(|&b| !b), "no task rejected — bound never hit");
}

#[test]
fn global_bound_holds_under_either_strategy() {
    for strategy in [RegulationStrategy::Tokens, RegulationStrategy::Mpc] {
        let mut rng = StdRng::seed_from_u64(9);
        let mut d = FederatedDeployment::new(&["a", "b"], strategy, 40, WEEK, 96, &mut rng);
        let mut wrng = StdRng::seed_from_u64(77);
        let mut workload = CrowdworkingWorkload::new(CrowdworkingConfig {
            workers: 4,
            platforms: 2,
            mean_interarrival: WEEK / 80,
            ..Default::default()
        });
        let mut accepted_hours: std::collections::HashMap<(String, u64), u64> = Default::default();
        for t in workload.batch(200, &mut wrng) {
            let window = d.window_of(t.ts);
            if d.submit_task(t.platform, &t.worker, t.hours, t.ts, &mut rng)
                .unwrap()
                .is_accepted()
            {
                *accepted_hours.entry((t.worker.clone(), window)).or_default() += t.hours;
            }
        }
        // Invariant: no (worker, window) ever exceeds 40 accepted hours.
        for ((worker, window), hours) in &accepted_hours {
            assert!(
                *hours <= 40,
                "{strategy:?}: {worker} window {window} accumulated {hours}h"
            );
        }
        // Cross-platform sum matches the deployment's own accounting.
        for ((worker, window), hours) in &accepted_hours {
            let total: i64 =
                (0..2).map(|p| d.platform_total(p, worker, *window)).sum();
            assert_eq!(total as u64, *hours);
        }
        d.audit_all().unwrap();
    }
}
